//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io. This vendored crate implements exactly the API
//! surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_bool, gen_range}` over integer ranges — with the same
//! contract the callers rely on: deterministic per seed, uniform enough for
//! the statistical tests in `bioseq`.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA 2014): a 64-bit counter hashed through two
//! xor-shift-multiply rounds. It passes BigCrush when used this way and is
//! more than adequate for workload synthesis.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw random-word source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly over its whole domain by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)` by rejection, avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // rem = 2^64 mod span; zone = 2^64 - rem is the largest multiple of
    // `span` representable, so accepting only v < zone keeps the draw exact.
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    if rem == 0 {
        return rng.next_u64() % span;
    }
    let zone = rem.wrapping_neg();
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every word source.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0,1)`, integers over their full domain, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a half-open or inclusive integer range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic per seed; two different seeds produce uncorrelated
    /// streams because the increment constant is odd and the output hash
    /// is a bijection.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so seed 0 does not emit the zero hash first.
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_is_close() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
