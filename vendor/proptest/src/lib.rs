//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from crates.io. This vendored crate implements the
//! subset this workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, integer
//!   range strategies, tuple strategies (arity 1–8), [`Just`](strategy::Just),
//!   [`any`](arbitrary::any), [`collection::vec`](collection::vec), and
//!   [`Union`](strategy::Union) (backing `prop_oneof!`);
//! * the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`, and
//!   `prop_assert_eq!` macros;
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Semantics differences from real proptest, deliberate for a hermetic
//! build: no shrinking (a failing case reports its inputs verbatim), no
//! persistence of regression files (`*.proptest-regressions` files are
//! ignored), and generation is driven by a fixed per-test seed so runs are
//! fully deterministic.

#![forbid(unsafe_code)]

/// Test-case driving machinery: the RNG, config, and failure type.
pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 stream used to generate test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`, so every
        /// run of a given test sees the same cases (no flaky CI).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)` by rejection (no modulo bias).
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty span");
            let rem = (u64::MAX % span).wrapping_add(1) % span;
            if rem == 0 {
                return self.next_u64() % span;
            }
            let zone = rem.wrapping_neg();
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }

    /// Why a single test case failed (carried out of `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite quick while
            // still exploring the space (runs are deterministic anyway).
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let gen = move |rng: &mut TestRng| self.generate(rng);
            BoxedStrategy { gen: Rc::new(gen) }
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        #[allow(clippy::type_complexity)]
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Picks one of several strategies uniformly per case
    /// (the engine behind `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// `any::<T>()` — the whole-domain strategy for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the entire domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The customary glob import for tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Define property tests. Each `fn` runs `config.cases` random cases; a
/// `prop_assert!`/`prop_assert_eq!` failure reports the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs before the body runs: the body may consume them.
                let rendered_inputs = ::std::string::String::new()
                    $(+ &format!("\n  {} = {:?}", stringify!($arg), &$arg))+;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        rendered_inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; on failure the case's inputs are shown.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(-5i16..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::deterministic("union");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    prop_compose! {
        fn quadrupled()(w in 0i32..100) -> i32 { w * 4 }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composed_strategy_maps(v in quadrupled()) {
            prop_assert_eq!(v % 4, 0);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b)),) {
            prop_assert!(pair.0 < 10 && pair.1 < 10, "pair {:?}", pair);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u16>()) {
            prop_assert!(u32::from(x) <= u32::from(u16::MAX));
        }
    }
}
