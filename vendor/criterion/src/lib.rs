//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched from crates.io. This vendored crate keeps the same
//! API shape the workspace's benches use (`Criterion`, `benchmark_group`,
//! `Throughput`, `BatchSize`, `Bencher::{iter, iter_batched}`, and the
//! `criterion_group!`/`criterion_main!` macros) but implements a simple,
//! dependency-free harness: warm up briefly, run timed batches until a
//! wall-clock budget is spent, and report the median per-iteration time
//! (plus throughput when configured).
//!
//! Output format (one line per benchmark, stable for scripting):
//!
//! ```text
//! bench: simulator/timed-clustalw ... 1.234 ms/iter (median of 31, min 1.201 ms) 12.3 Melem/s
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// How a batched benchmark's setup output is sized (accepted, not used —
/// this harness always materializes one setup product per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Work-per-iteration declaration used to derive a throughput figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements (e.g. instructions).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Measurement budget shared by all benchmarks in this harness.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
    min_samples: usize,
}

impl Budget {
    fn from_env() -> Self {
        // CRITERION_QUICK=1 shrinks budgets for smoke runs.
        let quick = std::env::var("CRITERION_QUICK").is_ok();
        Budget {
            warmup: Duration::from_millis(if quick { 20 } else { 150 }),
            measure: Duration::from_millis(if quick { 80 } else { 600 }),
            min_samples: if quick { 5 } else { 15 },
        }
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    budget: Budget,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(budget: Budget) -> Self {
        Bencher { budget, samples: Vec::new() }
    }

    /// Time `routine` repeatedly; each call is one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warmup {
            black_box(routine());
        }
        let run_start = Instant::now();
        while run_start.elapsed() < self.budget.measure
            || self.samples.len() < self.budget.min_samples
        {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed, never the setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let run_start = Instant::now();
        while run_start.elapsed() < self.budget.measure
            || self.samples.len() < self.budget.min_samples
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("bench: {id} ... no samples");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let rate = throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!(" {}elem/s", si(per_sec(n))),
                Throughput::Bytes(n) => format!(" {}B/s", si(per_sec(n))),
            }
        });
        println!(
            "bench: {id} ... {}/iter (median of {}, min {}){}",
            fmt_dur(median),
            self.samples.len(),
            fmt_dur(min),
            rate.unwrap_or_default()
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// A named group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    budget: Budget,
    // Ties the group's lifetime to the Criterion it came from, matching the
    // real API (which flushes group reports on drop/finish).
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed by one iteration of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Finish the group (reports are already flushed per-bench).
    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    budget: Budget,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Budget::from_env() }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            budget: self.budget,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(id, None);
        self
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; this harness has no CLI options.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_dur(Duration::from_micros(1500)).ends_with("ms"));
    }
}
