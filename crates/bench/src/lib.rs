//! Shared scaffolding for the benchmark harness.
//!
//! Each `cargo bench -p bioarch-bench --bench <target>` regenerates one
//! table or figure of the paper at benchmark (`ClassC`) scale and prints
//! it; see `DESIGN.md` §4 for the experiment index. The harness honours
//! two environment variables:
//!
//! * `BIOARCH_SCALE=test` — run at test scale (seconds instead of
//!   minutes; used by CI smoke runs);
//! * `BIOARCH_SEED=<n>` — change the workload seed (default 42).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bioarch::apps::Scale;
use bioarch::experiments::Study;

/// The scale selected by `BIOARCH_SCALE` (default: `ClassC`).
pub fn scale() -> Scale {
    match std::env::var("BIOARCH_SCALE").as_deref() {
        Ok("test" | "Test" | "TEST") => Scale::Test,
        _ => Scale::ClassC,
    }
}

/// The seed selected by `BIOARCH_SEED` (default: 42).
pub fn seed() -> u64 {
    std::env::var("BIOARCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A study at the selected scale and seed.
pub fn study() -> Study {
    Study::new(scale(), seed())
}

/// Run one experiment-printing bench body: prints a header, runs `f`,
/// prints its rendered result and the wall time.
pub fn run_experiment(name: &str, f: impl FnOnce(&mut Study) -> String) {
    let mut study = study();
    println!("=== {name} (scale {:?}, seed {}) ===", study.scale(), study.seed());
    let start = std::time::Instant::now();
    let rendered = f(&mut study);
    println!("{rendered}");
    println!("[{name} regenerated in {:.1?}]", start.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_class_c() {
        // The env vars are not set under `cargo test`.
        if std::env::var("BIOARCH_SCALE").is_err() {
            assert_eq!(scale(), Scale::ClassC);
        }
        if std::env::var("BIOARCH_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }
}
