//! Shared scaffolding for the benchmark harness.
//!
//! Each `cargo bench -p bioarch-bench --bench <target>` regenerates one
//! table or figure of the paper at benchmark (`ClassC`) scale and prints
//! it; see `DESIGN.md` §4 for the experiment index. The harness honours
//! two environment variables:
//!
//! * `BIOARCH_SCALE=test` — run at test scale (seconds instead of
//!   minutes; used by CI smoke runs);
//! * `BIOARCH_SEED=<n>` — change the workload seed (default 42);
//! * `BIOARCH_REPORT_DIR=<dir>` — where experiment JSON reports are
//!   written (default `target/reports`); set empty to disable;
//! * `BIOARCH_TELEMETRY=1` — attach the runtime telemetry hub (guest
//!   sampling profiler, host phase spans, `bioarch-metrics/v1` output);
//! * `BIOARCH_PROGRESS=<path>` — stream JSONL job-lifecycle events and
//!   heartbeats to `<path>` while a suite runs (implies telemetry;
//!   watch live with `cargo run --example suite_top -- <path>`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bioarch::apps::Scale;
use bioarch::experiments::Study;
use bioarch::report::{write_atomic, Report};
use bioarch::telemetry::{TelemetryConfig, TelemetryHub};
use std::path::PathBuf;

/// The scale selected by `BIOARCH_SCALE` (default: `ClassC`).
pub fn scale() -> Scale {
    match std::env::var("BIOARCH_SCALE").as_deref() {
        Ok("test" | "Test" | "TEST") => Scale::Test,
        _ => Scale::ClassC,
    }
}

/// The seed selected by `BIOARCH_SEED` (default: 42).
pub fn seed() -> u64 {
    std::env::var("BIOARCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// A study at the selected scale and seed.
pub fn study() -> Study {
    Study::new(scale(), seed())
}

/// Run one experiment-printing bench body: prints a header, runs `f`,
/// prints its rendered result and the wall time.
pub fn run_experiment(name: &str, f: impl FnOnce(&mut Study) -> String) {
    let mut study = study();
    println!("=== {name} (scale {:?}, seed {}) ===", study.scale(), study.seed());
    let start = std::time::Instant::now();
    let rendered = f(&mut study);
    println!("{rendered}");
    println!("[{name} regenerated in {:.1?}]", start.elapsed());
}

/// The directory experiment reports are written to: `BIOARCH_REPORT_DIR`,
/// defaulting to `target/reports`. `None` when set but empty (reports
/// disabled).
pub fn report_dir() -> Option<PathBuf> {
    match std::env::var("BIOARCH_REPORT_DIR") {
        Ok(dir) if dir.is_empty() => None,
        Ok(dir) => Some(PathBuf::from(dir)),
        Err(_) => Some(PathBuf::from("target/reports")),
    }
}

/// Like [`run_experiment`], for experiments that also emit a
/// machine-readable [`Report`]: the text table is printed and the JSON
/// document is written to [`report_dir`]`/<experiment>.json` (stamped
/// with the study's scale and seed), ready for `examples/compare_runs.rs`.
pub fn run_reported(name: &str, f: impl FnOnce(&mut Study) -> (String, Report)) {
    let mut study = study();
    println!("=== {name} (scale {:?}, seed {}) ===", study.scale(), study.seed());
    let start = std::time::Instant::now();
    let (rendered, report) = f(&mut study);
    println!("{rendered}");
    println!("[{name} regenerated in {:.1?}]", start.elapsed());
    let report =
        report.context("scale", format!("{:?}", study.scale())).context("seed", study.seed());
    if let Some(dir) = report_dir() {
        let path = dir.join(format!("{}.json", report.experiment));
        let write =
            std::fs::create_dir_all(&dir).and_then(|()| write_atomic(&path, &report.render_json()));
        match write {
            Ok(()) => println!("[report written to {}]", path.display()),
            Err(e) => eprintln!("[report NOT written to {}: {e}]", path.display()),
        }
    }
}

/// Build the telemetry hub selected by the environment, or `None`.
///
/// * `BIOARCH_TELEMETRY=1` — attach a hub (guest sampling profiler plus
///   host phase spans); the caller writes the finished
///   `bioarch-metrics/v1` snapshot next to its report.
/// * `BIOARCH_PROGRESS=<path>` — additionally stream JSONL
///   job-lifecycle events and heartbeats to `<path>` while the suite
///   runs (implies telemetry).
pub fn telemetry_hub() -> Option<TelemetryHub> {
    let enabled = std::env::var("BIOARCH_TELEMETRY").is_ok_and(|v| !v.is_empty() && v != "0");
    let progress = std::env::var("BIOARCH_PROGRESS").ok().filter(|p| !p.is_empty());
    let config = TelemetryConfig::default();
    match progress {
        Some(path) => match std::fs::File::create(&path) {
            Ok(f) => Some(TelemetryHub::with_progress(config, Box::new(f))),
            Err(e) => {
                eprintln!("[progress sink NOT opened at {path}: {e}]");
                enabled.then(|| TelemetryHub::new(config))
            }
        },
        None => enabled.then(|| TelemetryHub::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_class_c() {
        // The env vars are not set under `cargo test`.
        if std::env::var("BIOARCH_SCALE").is_err() {
            assert_eq!(scale(), Scale::ClassC);
        }
        if std::env::var("BIOARCH_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }
}
