//! Host-throughput trajectory benchmark: how fast the *simulator itself*
//! runs, as opposed to what it models.
//!
//! Two layers are measured:
//!
//! * **interpreter MIPS** — millions of target instructions retired per
//!   host second, for functional and cycle-timed execution of a tight
//!   arithmetic/load loop (the same program `simulator_speed.rs` uses).
//!   The functional leg is measured three ways: at the default
//!   configuration, with the fused direct-threaded tier forced on
//!   (`host.functional_fused_mips`), and with it forced off
//!   (`host.functional_scalar_mips`), alongside `fusion.*` counters for
//!   the fraction of retired instructions covered by superinstructions;
//! * **suite wall-clock** — `Study::run_suite` end to end, once serial
//!   (`threads = 1`) and once at the configured worker count, plus the
//!   resulting speedup. The serial and parallel suites are also checked
//!   for byte-identical reports; a divergence degrades this report.
//!
//! The output is a normal `bioarch-report/v1` document
//! (`BENCH_sim_throughput.json`), so `examples/compare_runs.rs` can diff
//! it against the committed baseline in `baselines/` — the repo's
//! performance trajectory over time.

use bioarch::experiments::Study;
use bioarch::report::{write_atomic, Direction, Report};
use power5_sim::{run_batch_functional, CoreConfig, LaneStats, Machine};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Lane-gang width for the batch leg (`lanes.mips`): the number of
/// independent copies of the loop stepped per shared dispatch.
const LANES: usize = 8;

/// Worker count for the parallel suite leg: `BIOARCH_THREADS` when set,
/// else the host's available parallelism. Resolved explicitly here (and
/// pinned on the study) so the recorded `suite.threads`/`suite.speedup`
/// always reflect a real parallel run on multi-core hosts, instead of
/// silently comparing serial against serial.
fn parallel_threads() -> usize {
    std::env::var("BIOARCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

const LOOP_PROGRAM: &str = "
entry:
    li r3, 0
    lis r4, 1
    mtctr r4
loop:
    addi r3, r3, 1
    xor r5, r3, r4
    add r6, r5, r3
    lwz r7, 0(r1)
    cmpwi cr0, r3, 0
    bdnz loop
    trap
";

fn machine() -> Machine {
    let prog = ppc_asm::assemble(LOOP_PROGRAM, 0x1000).expect("program assembles");
    let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20);
    m.cpu_mut().gpr[1] = 0x8_0000;
    m
}

/// Best-of-N million-instructions-per-second for one run mode, with
/// `prep` applied to each fresh machine before the clock starts.
fn mips_prepped(
    reps: usize,
    prep: impl Fn(&mut Machine),
    run: impl Fn(&mut Machine) -> u64,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut m = machine();
        prep(&mut m);
        let start = Instant::now();
        let executed = run(&mut m);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(executed as f64 / secs / 1e6);
    }
    best
}

/// Best-of-N million-instructions-per-second for one run mode.
fn mips(reps: usize, run: impl Fn(&mut Machine) -> u64) -> f64 {
    mips_prepped(reps, |_| {}, run)
}

fn suite_json(suite: &bioarch::experiments::Suite) -> String {
    suite.reports.iter().map(Report::render_json).collect::<Vec<_>>().join("\n")
}

fn main() {
    bioarch_bench::run_reported("sim-throughput", |study| {
        let reps = 3;
        let functional = mips(reps, |m| m.run_functional(u64::MAX).expect("runs").executed);
        // Explicit fused/scalar legs bracket the default above: the fused
        // tier is on by default, so `functional` and `fused` should track
        // each other, while `scalar` is the old per-instruction dispatch.
        let fused = mips_prepped(
            reps,
            |m| m.set_fusion(true),
            |m| m.run_functional(u64::MAX).expect("runs").executed,
        );
        let scalar = mips_prepped(
            reps,
            |m| m.set_fusion(false),
            |m| m.run_functional(u64::MAX).expect("runs").executed,
        );
        let timed = mips(reps, |m| m.run_timed(u64::MAX).expect("runs").executed);

        // Lane-gang leg: LANES identical copies of the loop stepped
        // through shared decode/fused-block dispatch (DESIGN §18).
        // Aggregate MIPS counts all lanes' retired instructions against
        // one wall clock; the per-lane results must stay bit-identical
        // to the scalar reference or the report degrades.
        let scalar_reference = {
            let mut m = machine();
            let r = m.run_functional(u64::MAX).expect("runs");
            (r.executed, r.halted)
        };
        let mut lane_stats = LaneStats::default();
        let mut lanes_identical = true;
        let mut lanes_mips = 0.0f64;
        for _ in 0..reps {
            let gang: Vec<Machine> = (0..LANES).map(|_| machine()).collect();
            let start = Instant::now();
            let (results, stats) = run_batch_functional(gang, u64::MAX);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let total: u64 = results.iter().map(|(_, r)| r.as_ref().expect("runs").executed).sum();
            let this = total as f64 / secs / 1e6;
            if this > lanes_mips {
                lanes_mips = this;
                lane_stats = stats;
            }
            for (_, r) in &results {
                let r = r.as_ref().expect("runs");
                if (r.executed, r.halted) != scalar_reference {
                    lanes_identical = false;
                }
            }
        }

        // Fusion-rate counters from one complete fused run of the loop.
        let fusion = {
            let mut m = machine();
            m.run_functional(u64::MAX).expect("runs");
            m.fusion_stats()
        };

        let mut serial_study = Study::new(study.scale(), study.seed());
        serial_study.set_threads(1);
        let start = Instant::now();
        let serial_suite = serial_study.run_suite();
        let serial_s = start.elapsed().as_secs_f64();

        let threads = parallel_threads();
        study.set_threads(threads);
        // Telemetry rides on the parallel leg only; the MIPS micro-loops
        // above and the serial leg stay uninstrumented so the recorded
        // trajectory numbers are never measured with the hub attached.
        if let Some(hub) = bioarch_bench::telemetry_hub() {
            study.set_telemetry(hub);
        }
        let start = Instant::now();
        let parallel_suite = study.run_suite();
        let parallel_s = start.elapsed().as_secs_f64();
        if let Some(hub) = study.take_telemetry() {
            // Mirror the fusion-rate counters into the bioarch-metrics/v1
            // snapshot so the telemetry trajectory carries them too.
            hub.count_host("fusion.fused_insns", fusion.fused_insns);
            hub.count_host("fusion.fused_ops", fusion.fused_ops);
            hub.count_host("fusion.pair_insns", fusion.pair_insns);
            hub.count_host("fusion.cmp_branch", fusion.cmp_branch);
            hub.count_host("fusion.load_alu", fusion.load_alu);
            hub.count_host("fusion.alu_store", fusion.alu_store);
            hub.count_host("fusion.cmp_select", fusion.cmp_select);
            hub.count_host("fusion.hammock", fusion.hammock);
            hub.count_host("lanes.gang_blocks", lane_stats.gang_blocks);
            hub.count_host("lanes.lane_blocks", lane_stats.lane_blocks);
            hub.count_host("lanes.lane_insns", lane_stats.insns);
            hub.count_host("lanes.occupancy_permille", (lane_stats.occupancy() * 1000.0) as u64);
            hub.count_host("lanes.exit_divergence", lane_stats.exit_divergence);
            hub.count_host("lanes.exit_halt", lane_stats.exit_halt);
            hub.count_host("lanes.exit_fault", lane_stats.exit_fault);
            hub.count_host("lanes.exit_smc", lane_stats.exit_smc);
            hub.count_host("lanes.exit_cut", lane_stats.exit_cut);
            hub.count_host("lanes.exit_refetch", lane_stats.exit_refetch);
            let mut snapshot = hub.finish();
            snapshot.context.push(("scale".into(), format!("{:?}", study.scale())));
            snapshot.context.push(("seed".into(), study.seed().to_string()));
            snapshot.context.push(("threads".into(), threads.to_string()));
            if let Some(dir) = bioarch_bench::report_dir() {
                let path = dir.join("BENCH_sim_throughput.metrics.json");
                let write = std::fs::create_dir_all(&dir)
                    .and_then(|()| write_atomic(&path, &snapshot.render_json()));
                match write {
                    Ok(()) => println!("[metrics written to {}]", path.display()),
                    Err(e) => eprintln!("[metrics NOT written to {}: {e}]", path.display()),
                }
            }
        }

        let speedup = serial_s / parallel_s.max(1e-9);

        let mut report = Report::new("BENCH_sim_throughput");
        report.push("host.functional_mips", functional, Direction::Higher);
        report.push("host.functional_fused_mips", fused, Direction::Higher);
        report.push("host.functional_scalar_mips", scalar, Direction::Higher);
        report.push("host.timed_mips", timed, Direction::Higher);
        report.push("lanes.mips", lanes_mips, Direction::Higher);
        report.push("lanes.lanes", LANES as f64, Direction::Neutral);
        report.push("lanes.occupancy", lane_stats.occupancy(), Direction::Higher);
        report.push(
            "lanes.speedup_vs_functional",
            lanes_mips / functional.max(1e-9),
            Direction::Higher,
        );
        report.push("lanes.exit_divergence", lane_stats.exit_divergence as f64, Direction::Neutral);
        report.push("lanes.exit_halt", lane_stats.exit_halt as f64, Direction::Neutral);
        report.push("lanes.exit_fault", lane_stats.exit_fault as f64, Direction::Neutral);
        report.push("lanes.exit_smc", lane_stats.exit_smc as f64, Direction::Neutral);
        report.push("lanes.exit_cut", lane_stats.exit_cut as f64, Direction::Neutral);
        report.push("lanes.exit_refetch", lane_stats.exit_refetch as f64, Direction::Neutral);
        report.push("fusion.fused_insn_ratio", fusion.fused_insn_ratio(), Direction::Higher);
        report.push("fusion.pair_insns", fusion.pair_insns as f64, Direction::Neutral);
        report.push("fusion.cmp_branch", fusion.cmp_branch as f64, Direction::Neutral);
        report.push("fusion.load_alu", fusion.load_alu as f64, Direction::Neutral);
        report.push("fusion.alu_store", fusion.alu_store as f64, Direction::Neutral);
        report.push("fusion.cmp_select", fusion.cmp_select as f64, Direction::Neutral);
        report.push("fusion.hammock", fusion.hammock as f64, Direction::Neutral);
        report.push("suite.serial_seconds", serial_s, Direction::Lower);
        report.push("suite.parallel_seconds", parallel_s, Direction::Lower);
        report.push("suite.speedup", speedup, Direction::Higher);
        report.push("suite.threads", threads as f64, Direction::Neutral);
        if suite_json(&serial_suite) != suite_json(&parallel_suite) {
            report.degrade("parallel suite output diverged from serial");
        }
        if !lanes_identical {
            report.degrade("lane gang results diverged from the scalar reference");
        }
        if !lane_stats.ganged {
            report.degrade("lane gang fell back to scalar execution");
        }
        if serial_suite.is_degraded() {
            for failure in serial_suite.failures() {
                report.degrade(failure);
            }
        }

        let rendered = format!(
            "interpreter: functional {functional:.2} MIPS (fused {fused:.2}, scalar {scalar:.2}), \
             timed {timed:.2} MIPS\n\
             lanes: {lanes_mips:.2} aggregate MIPS at width {LANES} \
             ({:.2}x functional, occupancy {:.1}%)\n\
             fusion: {:.1}% of retired insns inside superinstructions\n\
             suite: serial {serial_s:.2}s, parallel {parallel_s:.2}s \
             ({speedup:.2}x on {threads} thread(s))",
            lanes_mips / functional.max(1e-9),
            lane_stats.occupancy() * 100.0,
            fusion.fused_insn_ratio() * 100.0,
        );
        (rendered, report)
    });
}
