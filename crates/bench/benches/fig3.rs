//! Regenerates Figure 3: IPC with max and isel instructions.
fn main() {
    bioarch_bench::run_reported("Figure 3", |s| {
        let r = s.fig3().expect("fig3 runs");
        (r.render(), r.report())
    });
}
