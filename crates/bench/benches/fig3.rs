//! Regenerates Figure 3: IPC with max and isel instructions.
fn main() {
    bioarch_bench::run_experiment("Figure 3", |s| s.fig3().expect("fig3 runs").render());
}
