//! Regenerates Figure 4: the effect of the eight-entry BTAC.
fn main() {
    bioarch_bench::run_experiment("Figure 4", |s| s.fig4().expect("fig4 runs").render());
}
