//! Regenerates Figure 4: the effect of the eight-entry BTAC.
fn main() {
    bioarch_bench::run_reported("Figure 4", |s| {
        let r = s.fig4().expect("fig4 runs");
        (r.render(), r.report())
    });
}
