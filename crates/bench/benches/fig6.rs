//! Regenerates Figure 6: combined gains and the residual.
fn main() {
    bioarch_bench::run_reported("Figure 6", |s| {
        let r = s.fig6().expect("fig6 runs");
        (r.render(), r.report())
    });
}
