//! Regenerates Figure 6: combined gains and the residual.
fn main() {
    bioarch_bench::run_experiment("Figure 6", |s| s.fig6().expect("fig6 runs").render());
}
