//! Ablations beyond the paper (DESIGN.md §8): BTAC geometry sweep,
//! direction-predictor sweep, predicated-instruction latency sensitivity,
//! and L1D size sensitivity — each on the Clustalw workload, the paper's
//! own deep-dive application.

use bioarch::apps::{App, Variant, Workload};
use bioarch::report::{pct, Table};
use power5_sim::config::{BtacConfig, CoreConfig};
use power5_sim::predictor::PredictorKind;

fn cycles(wl: &Workload, variant: Variant, cfg: &CoreConfig) -> u64 {
    let run = wl.run(variant, cfg).expect("run succeeds");
    assert!(run.validated, "ablation run failed validation");
    run.counters.cycles
}

fn main() {
    let scale = bioarch_bench::scale();
    let seed = bioarch_bench::seed();
    println!("=== Ablations (scale {scale:?}, seed {seed}) ===");
    let wl = Workload::new(App::Clustalw, scale, seed);
    let base = cycles(&wl, Variant::Baseline, &CoreConfig::power5());

    // BTAC size / threshold sweep.
    let mut t = Table::new(vec!["BTAC entries".into(), "threshold".into(), "gain".into()]);
    for entries in [2usize, 4, 8, 16, 64] {
        for threshold in [0i8, 1, 2] {
            let cfg = CoreConfig::power5().with_btac(BtacConfig {
                entries,
                score_threshold: threshold,
                ..BtacConfig::default()
            });
            let c = cycles(&wl, Variant::Baseline, &cfg);
            t.row(vec![
                entries.to_string(),
                threshold.to_string(),
                pct(base as f64 / c as f64 - 1.0),
            ]);
        }
    }
    println!("BTAC geometry sweep (Clustalw, baseline binaries)\n{}", t.render());

    // Direction predictor sweep — the paper's claim: these branches defeat
    // any predictor, so the choice barely matters.
    let mut t = Table::new(vec!["predictor".into(), "mispredict rate".into(), "gain".into()]);
    for (name, kind) in [
        ("static-taken", PredictorKind::StaticTaken),
        ("bimodal-4k", PredictorKind::Bimodal { bits: 12 }),
        ("gshare-4k", PredictorKind::Gshare { bits: 12, history_bits: 11 }),
        (
            "tournament",
            PredictorKind::Tournament {
                bimodal_bits: 12,
                gshare_bits: 12,
                history_bits: 11,
                selector_bits: 12,
            },
        ),
    ] {
        let cfg = CoreConfig::power5().with_predictor(kind);
        let run = wl.run(Variant::Baseline, &cfg).expect("run succeeds");
        t.row(vec![
            name.into(),
            format!("{:.1}%", 100.0 * run.counters.branches.misprediction_rate()),
            pct(base as f64 / run.counters.cycles as f64 - 1.0),
        ]);
    }
    println!("Direction-predictor sweep (Clustalw, baseline binaries)\n{}", t.render());

    // Predicated-op latency sensitivity: how much of the max/isel win
    // survives if the new instructions took 2 or 3 cycles?
    let mut t = Table::new(vec!["extra latency".into(), "hand-max gain".into()]);
    for extra in [0u64, 1, 2] {
        let mut cfg = CoreConfig::power5();
        cfg.lat_predicated_extra = extra;
        let c = cycles(&wl, Variant::HandMax, &cfg);
        t.row(vec![format!("+{extra}"), pct(base as f64 / c as f64 - 1.0)]);
    }
    println!("Predicated-instruction latency sensitivity (Clustalw)\n{}", t.render());

    // SMT: the paper notes the taken-branch bubble grows from 2 to 3
    // cycles with SMT enabled; measure that single effect.
    let mut t = Table::new(vec!["SMT".into(), "gain vs baseline".into()]);
    for smt in [false, true] {
        let cfg = CoreConfig::power5().with_smt(smt);
        let c = cycles(&wl, Variant::Baseline, &cfg);
        t.row(vec![
            if smt { "on (3-cycle bubble)" } else { "off (2-cycle bubble)" }.into(),
            pct(base as f64 / c as f64 - 1.0),
        ]);
    }
    println!("SMT taken-branch bubble (Clustalw, baseline binaries)\n{}", t.render());

    // L1D size sensitivity — the paper's point that caches are NOT the
    // bottleneck: shrinking the L1D fourfold should barely move Clustalw.
    let mut t = Table::new(vec!["L1D size".into(), "gain vs 32K".into()]);
    for kib in [8usize, 16, 32, 64] {
        let mut cfg = CoreConfig::power5();
        cfg.l1d.size = kib * 1024;
        let c = cycles(&wl, Variant::Baseline, &cfg);
        t.row(vec![format!("{kib} KiB"), pct(base as f64 / c as f64 - 1.0)]);
    }
    println!("L1D size sensitivity (Clustalw, baseline binaries)\n{}", t.render());
}
