//! Criterion microbenchmarks of the golden-model algorithms — the
//! host-side cost of the reference implementations used for validation.

use bioalign::blast::{blastp, BlastParams};
use bioalign::hmmsearch::viterbi_score;
use bioalign::msa::progressive_align;
use bioalign::pairwise::{needleman_wunsch_score, smith_waterman_score};
use bioseq::generate::SeqGen;
use bioseq::hmm::ProfileHmm;
use bioseq::{Alphabet, GapPenalties, SubstitutionMatrix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_pairwise(c: &mut Criterion) {
    let mut g = SeqGen::new(Alphabet::Protein, 1);
    let a = g.uniform(200);
    let b = g.homolog(&a, 0.3, 0.05);
    let m = SubstitutionMatrix::blosum62();
    let gp = GapPenalties::new(10, 2);
    let mut group = c.benchmark_group("pairwise");
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    group.bench_function("smith_waterman", |bch| {
        bch.iter(|| smith_waterman_score(black_box(a.codes()), black_box(b.codes()), &m, gp))
    });
    group.bench_function("needleman_wunsch", |bch| {
        bch.iter(|| needleman_wunsch_score(black_box(a.codes()), black_box(b.codes()), &m, gp))
    });
    group.finish();
}

fn bench_blast(c: &mut Criterion) {
    let mut g = SeqGen::new(Alphabet::Protein, 2);
    let query = g.uniform(150);
    let db = g.database(&query, 30, 4, 100..200);
    let m = SubstitutionMatrix::blosum62();
    let params = BlastParams::default();
    c.bench_function("blastp_scan", |bch| {
        bch.iter(|| blastp(black_box(&query), black_box(&db), &m, &params))
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let hmm = ProfileHmm::random(60, 3);
    let mut g = SeqGen::new(Alphabet::Protein, 4);
    let seq = g.uniform(150);
    let mut group = c.benchmark_group("hmm");
    group.throughput(Throughput::Elements((hmm.len() * seq.len()) as u64));
    group.bench_function("p7viterbi", |bch| {
        bch.iter(|| viterbi_score(black_box(&hmm), black_box(&seq)))
    });
    group.finish();
}

fn bench_msa(c: &mut Criterion) {
    let mut g = SeqGen::new(Alphabet::Protein, 5);
    let fam = g.family(6, 80, 0.2, 0.05);
    let m = SubstitutionMatrix::blosum62();
    let gp = GapPenalties::new(10, 2);
    c.bench_function("progressive_align", |bch| {
        bch.iter(|| progressive_align(black_box(&fam), &m, gp))
    });
}

criterion_group!(benches, bench_pairwise, bench_blast, bench_viterbi, bench_msa);
criterion_main!(benches);
