//! Criterion microbenchmarks of the POWER5 timing model itself:
//! functional vs. timed simulation throughput, and the cost of the
//! front-end structures (predictor, BTAC).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use power5_sim::config::BtacConfig;
use power5_sim::{CoreConfig, Machine};

const LOOP_PROGRAM: &str = "
entry:
    li r3, 0
    lis r4, 1
    mtctr r4
loop:
    addi r3, r3, 1
    xor r5, r3, r4
    add r6, r5, r3
    lwz r7, 0(r1)
    cmpwi cr0, r3, 0
    bdnz loop
    trap
";

fn machine(cfg: CoreConfig) -> Machine {
    let prog = ppc_asm::assemble(LOOP_PROGRAM, 0x1000).expect("program assembles");
    let mut m = Machine::new(cfg, &prog.bytes, 0x1000, 0x1000, 1 << 20);
    m.cpu_mut().gpr[1] = 0x8_0000;
    m
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    // ~65k iterations x 6 instructions + prologue.
    let insns = 65536 * 6 + 4;
    group.throughput(Throughput::Elements(insns));
    group.bench_function("functional", |b| {
        b.iter_batched(
            || machine(CoreConfig::power5()),
            |mut m| m.run_functional(u64::MAX).expect("runs"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("timed", |b| {
        b.iter_batched(
            || machine(CoreConfig::power5()),
            |mut m| m.run_timed(u64::MAX).expect("runs"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("timed_with_btac", |b| {
        b.iter_batched(
            || machine(CoreConfig::power5().with_btac(BtacConfig::default())),
            |mut m| m.run_timed(u64::MAX).expect("runs"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
