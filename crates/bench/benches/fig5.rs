//! Regenerates Figure 5: the effect of additional fixed-point units.
fn main() {
    bioarch_bench::run_reported("Figure 5", |s| {
        let r = s.fig5().expect("fig5 runs");
        (r.render(), r.report())
    });
}
