//! Regenerates Figure 5: the effect of additional fixed-point units.
fn main() {
    bioarch_bench::run_experiment("Figure 5", |s| s.fig5().expect("fig5 runs").render());
}
