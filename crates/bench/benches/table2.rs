//! Regenerates Table II: branch statistics per application and variant.
fn main() {
    bioarch_bench::run_reported("Table II", |s| {
        let r = s.table2().expect("table2 runs");
        (r.render(), r.report())
    });
}
