//! Regenerates Table II: branch statistics per application and variant.
fn main() {
    bioarch_bench::run_experiment("Table II", |s| s.table2().expect("table2 runs").render());
}
