//! Regenerates the paper's Table I: baseline hardware-counter data.
fn main() {
    bioarch_bench::run_reported("Table I", |s| {
        let r = s.table1().expect("table1 runs");
        (r.render(), r.report())
    });
}
