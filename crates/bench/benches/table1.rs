//! Regenerates the paper's Table I: baseline hardware-counter data.
fn main() {
    bioarch_bench::run_experiment("Table I", |s| s.table1().expect("table1 runs").render());
}
