//! Regenerates Figure 2: Clustalw IPC / misprediction-rate time series.
fn main() {
    bioarch_bench::run_reported("Figure 2", |s| {
        let r = s.fig2().expect("fig2 runs");
        (r.render(), r.report())
    });
}
