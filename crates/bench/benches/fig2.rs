//! Regenerates Figure 2: Clustalw IPC / misprediction-rate time series.
fn main() {
    bioarch_bench::run_experiment("Figure 2", |s| s.fig2().expect("fig2 runs").render());
}
