//! Regenerates Figure 1: function-wise breakdown per application.
fn main() {
    bioarch_bench::run_experiment("Figure 1", |s| s.fig1().expect("fig1 runs").render());
}
