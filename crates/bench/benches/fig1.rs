//! Regenerates Figure 1: function-wise breakdown per application.
fn main() {
    bioarch_bench::run_reported("Figure 1", |s| {
        let r = s.fig1().expect("fig1 runs");
        (r.render(), r.report())
    });
}
