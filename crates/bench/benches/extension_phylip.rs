//! Extension beyond the paper: Sankoff parsimony (the Phylip workload the
//! paper's conclusion predicts its results extend to). Regenerates a
//! Figure-3-style variant comparison for the min-plus DP kernel.

use bioarch::apps::Variant;
use bioarch::extra::PhylipWorkload;
use bioarch::report::{pct, Table};
use power5_sim::CoreConfig;

fn main() {
    let scale = bioarch_bench::scale();
    let seed = bioarch_bench::seed();
    println!("=== Extension: Phylip-style Sankoff parsimony (scale {scale:?}, seed {seed}) ===");
    let wl = PhylipWorkload::new(scale, seed);
    let cfg = CoreConfig::power5();
    let base = wl.run(Variant::Baseline, &cfg).expect("baseline runs");
    assert!(base.validated);
    let mut t = Table::new(vec![
        "Variant".into(),
        "IPC".into(),
        "Improvement".into(),
        "Branches/Instrs".into(),
        "conv/rej".into(),
    ]);
    for v in Variant::all() {
        let run = wl.run(v, &cfg).expect("variant runs");
        assert!(run.validated, "{v:?} failed validation");
        t.row(vec![
            v.label().into(),
            format!("{:.2}", run.counters.ipc()),
            pct(base.counters.cycles as f64 / run.counters.cycles as f64 - 1.0),
            format!("{:.1}%", 100.0 * run.counters.branch_fraction()),
            format!("{}/{}", run.converted_hammocks, run.rejected_hammocks),
        ]);
    }
    println!("{}", t.render());
    println!(
        "baseline: {} instructions, mispredict rate {:.1}% — the min-plus mirror image of the alignment kernels.",
        base.counters.instructions,
        100.0 * base.counters.branches.misprediction_rate()
    );
}
