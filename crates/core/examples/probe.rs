use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::CoreConfig;

fn main() {
    for app in App::all() {
        let wl = Workload::new(app, Scale::ClassC, 42);
        print!("{:9}", app.name());
        let base = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        let bipc = base.counters.ipc();
        print!(" base ipc {:.2} (insns {:>5.1}M, br {:.1}%, mispred {:.1}%, taken {:.0}%, l1d {:.2}%, fxu-stall {:.1}%, dirfrac {:.3}) val={}",
            bipc, base.counters.instructions as f64/1e6,
            100.0*base.counters.branch_fraction(),
            100.0*base.counters.branches.misprediction_rate(),
            100.0*base.counters.branches.taken_fraction(),
            100.0*base.counters.l1d.miss_rate(),
            100.0*base.counters.fxu_stall_fraction(),
            base.counters.branches.direction_fraction(),
            base.validated);
        println!();
        for v in [
            Variant::HandIsel,
            Variant::HandMax,
            Variant::CompilerIsel,
            Variant::CompilerMax,
            Variant::Combination,
        ] {
            let r = wl.run(v, &CoreConfig::power5()).unwrap();
            let speedup = base.counters.cycles as f64 / r.counters.cycles as f64;
            println!("   {:12} ipc {:.2} (+{:>5.1}%) speedup {:>5.1}% conv {} rej {} val={} predfrac {:.1}% cmp {:.1}% br {:.1}%",
                v.label(), r.counters.ipc(), 100.0*(r.counters.ipc()/bipc - 1.0), 100.0*(speedup-1.0),
                r.converted_hammocks, r.rejected_hammocks, r.validated,
                100.0*r.counters.predicated_fraction(),
                100.0*r.counters.compare_fraction(),
                100.0*r.counters.branch_fraction());
        }
    }
}
