//! End-to-end observability checks on a real workload: the Clustalw
//! kernel traced through the JSONL sink replays to the exact
//! committed-instruction count, and the all-stall-class heatmap is
//! symbolized through the program's own symbol table.

use bioarch::apps::{App, Scale, Variant, Workload};
use power5_sim::trace::{replay_jsonl, JsonlSink};
use power5_sim::{CoreConfig, Tracer};
use std::cell::RefCell;
use std::io::{self, BufReader, Write};
use std::rc::Rc;

#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn clustalw_jsonl_trace_replays_to_committed_count() {
    let workload = Workload::new(App::Clustalw, Scale::Test, 42);
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()) as Box<dyn Write>);
    let (run, mut tracer) = workload
        .run_traced(Variant::Baseline, &CoreConfig::power5(), Tracer::Jsonl(sink))
        .expect("traced Clustalw run");
    assert!(run.validated, "mismatches: {:?}", run.mismatches);
    tracer.finish().expect("flush trace");
    let bytes = buf.0.borrow().clone();
    let replay = replay_jsonl(BufReader::new(&bytes[..])).expect("trace replays");
    assert_eq!(replay.instructions, run.counters.instructions);
    assert_eq!(replay.final_commit, run.counters.cycles);
}

#[test]
fn clustalw_stall_heatmap_is_symbolized_and_partitions_stalls() {
    let workload = Workload::new(App::Clustalw, Scale::Test, 42);
    let run = workload
        .run_with_stall_sites(Variant::Baseline, &CoreConfig::power5())
        .expect("stall-site run");
    assert!(run.validated);
    assert!(!run.stall_sites.is_empty());
    // Attribution partitions the aggregate CPI stack.
    let attributed: u64 = run.stall_sites.iter().map(|s| s.breakdown.total()).sum();
    assert_eq!(attributed, run.counters.stalls.total());
    // Hottest sites live in the DP kernel and are labelled with it.
    assert_eq!(run.stall_sites[0].function, "forward_pass");
    assert!(run.stall_heatmap.contains("forward_pass+0x"), "{}", run.stall_heatmap);
}
