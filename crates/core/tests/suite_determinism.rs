//! The parallel suite runner must be invisible in the output: running
//! `Study::run_suite` across N worker threads has to produce the exact
//! same `bioarch-report/v1` documents, byte for byte, as the serial
//! path. The merge back into the run cache is ordered by the job plan
//! (not by thread completion), and the reports are built solely from
//! cache lookups, so this holds for any thread count.

use bioarch::apps::Scale;
use bioarch::experiments::Study;

/// Every suite report rendered to JSON, concatenated in paper order.
fn suite_json(threads: usize) -> String {
    let mut study = Study::new(Scale::Test, 42);
    study.set_threads(threads);
    let suite = study.run_suite();
    assert!(!suite.is_degraded(), "suite failed: {:?}", suite.failures());
    suite.reports.iter().map(|r| r.render_json()).collect::<Vec<_>>().join("\n")
}

#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let serial = suite_json(1);
    let four_way = suite_json(4);
    assert_eq!(serial, four_way, "4-thread suite diverged from serial");
}

#[test]
fn thread_count_does_not_leak_into_reports() {
    // The report context records scale and seed only; a report produced
    // on an 8-core box must match one from a laptop.
    let json = suite_json(2);
    assert!(!json.contains("thread"), "reports must not mention threads");
}
