//! `bioarch` — the end-to-end reproduction of *Characterizing and
//! Improving the Performance of Bioinformatics Workloads on the POWER5
//! Architecture* (IISWC 2007).
//!
//! This crate ties the substrates together into the paper's study:
//!
//! * [`kernels`] — the four applications' dynamic-programming kernels and
//!   drivers written in the [`kernelc`] kernel language, in two source
//!   flavours: *branchy* (the original code) and *hand-predicated*
//!   (the paper's hand-inserted `max()` sites);
//! * [`apps`] — workload builders: synthetic class-C-scaled inputs
//!   ([`bioseq`]), memory layout and serialization, compilation with any
//!   [`Variant`], execution on a configured
//!   [`power5_sim::Machine`], per-function profiling, and validation of
//!   every simulated result against the [`bioalign`] golden models;
//! * [`experiments`] — one runner per table/figure of the paper
//!   (Table I, Table II, Figures 1–6), producing typed results and
//!   rendered text tables.
//!
//! # Example
//!
//! ```no_run
//! use bioarch::apps::{App, Scale, Variant, Workload};
//! use power5_sim::CoreConfig;
//!
//! let wl = Workload::new(App::Fasta, Scale::Test, 42);
//! let run = wl.run(Variant::Baseline, &CoreConfig::power5())?;
//! assert!(run.validated);
//! println!("Fasta baseline IPC = {:.2}", run.counters.ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod campaign;
pub mod checkpoint;
pub mod experiments;
pub mod extra;
pub mod json;
pub mod kernels;
pub mod report;
pub mod schema;
pub mod telemetry;

pub use apps::{App, Scale, Variant, Workload};
