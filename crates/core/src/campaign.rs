//! Crash-safe campaign service: a durable job queue, a content-addressed
//! run cache, and preempt/resume worker shards.
//!
//! The suite runner in [`crate::experiments`] drives one fixed study in
//! one process: a crash loses the whole run. This module promotes it
//! into a long-running *campaign* service built around one contract,
//! enforced by test: **kill the process at any byte boundary, restart
//! it, and the final merged report is byte-identical to an uninterrupted
//! run.**
//!
//! The pieces:
//!
//! * **Durable submission queue** — every job is keyed by a
//!   content-addressed digest of `(app, variant, hw, scale, seed,
//!   code-image digest)` and recorded in an append-only JSONL journal
//!   (schema [`JOURNAL_SCHEMA`]). Each record is a single compact line;
//!   a torn final line (crash mid-`write`) is healed on reopen by
//!   truncating to the last newline, so replay always reaches a
//!   prefix-consistent state. Compaction rewrites the journal through
//!   the same atomic-rename path as every other document
//!   ([`crate::report::write_atomic`]) and bumps the segment counter.
//! * **Content-addressed run cache** — a completed job's
//!   `bioarch-report/v1` document lives in `cache/<digest>.json`.
//!   Resubmitting an identical job is served entirely from the cache:
//!   zero simulation work, visible in telemetry as zero execute-phase
//!   nanoseconds.
//! * **Preempt/resume workers** — workers lease jobs with
//!   heartbeat-stamped leases and checkpoint long jobs on an
//!   instruction-cadence via the `bioarch-checkpoint/v1` machinery.
//!   A lease whose heartbeat goes stale (worker died, process was
//!   killed) is claimable by any other worker, which resumes from the
//!   last checkpoint — preemption and migration for free.
//! * **Retry policy** — Timeout with an exhausted budget resumes from
//!   its own checkpoint under a seeded exponentially-widened budget
//!   (recomputed from the attempt *index*, so an interrupted retry
//!   schedule replays identically); Trap/Divergence restart from
//!   scratch; both quarantine into a `degraded` report with the
//!   existing `failure_class` taxonomy after the attempt limit.
//!   [`Campaign::drain`] stops workers at the next checkpoint boundary
//!   and releases their leases — finish-or-checkpoint, never abandon.
//!
//! # Why the contract holds
//!
//! Simulation is deterministic and checkpoint/resume is bit-exact, so a
//! job's result depends only on its spec — not on which worker ran it,
//! how many times it was preempted, or where it crashed. Checkpoints
//! are cut on a fixed instruction grid (multiples of the configured
//! chunk), so interrupted and uninterrupted runs traverse the same
//! slice boundaries. The journal loses at most one (torn) record at a
//! crash, and every lost-record case converges: a lost `submitted` is
//! resubmitted identically; a lost `lease`/`progress` re-runs or
//! resumes a deterministic job; a lost `completed` re-runs the job and
//! rewrites the identical cache bytes (the cache file is written
//! *before* the `completed` record). The merged report is derived from
//! cache contents in submission order and contains no wall-clock or
//! scheduling data, so its bytes depend only on the submitted set.

pub mod remote;

use crate::apps::{App, RunError, Scale, Variant, Workload};
use crate::checkpoint;
use crate::experiments::Hw;
use crate::json::Json;
use crate::kernels;
use crate::report::{write_atomic, Direction, Report};
use crate::schema::check_schema;
use crate::telemetry::{JobSpan, TelemetryHub};
use power5_sim::{Checkpoint, LockstepMode, Watchdog, XorShift64};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Schema identifier embedded in every journal header record.
pub const JOURNAL_SCHEMA: &str = "bioarch-journal/v1";

/// Milliseconds since the Unix epoch (heartbeat stamps).
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Fold `bytes` into a 64-bit FNV-1a state.
fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Content-address a set of string fields, independent of field order.
///
/// The pairs are sorted by key before hashing and separated by bytes
/// that cannot appear in the values (0x1f between key and value, 0x1e
/// between pairs), so the digest is stable across serialization order
/// and — being pure integer arithmetic — across platforms.
pub fn digest_fields(fields: &[(String, String)]) -> u64 {
    let mut sorted: Vec<&(String, String)> = fields.iter().collect();
    sorted.sort();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (k, v) in sorted {
        h = fnv64(h, k.as_bytes());
        h = fnv64(h, &[0x1f]);
        h = fnv64(h, v.as_bytes());
        h = fnv64(h, &[0x1e]);
    }
    h
}

/// Lowercase slug for an [`App`].
fn app_slug(app: App) -> String {
    app.name().to_lowercase()
}

fn app_from_slug(s: &str) -> Option<App> {
    App::all().into_iter().find(|a| app_slug(*a) == s)
}

/// Machine-readable slug for a [`Scale`].
fn scale_slug(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::ClassC => "classc",
    }
}

fn scale_from_slug(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "classc" => Some(Scale::ClassC),
        _ => None,
    }
}

/// One campaign job: everything that determines a simulation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Which application.
    pub app: App,
    /// Which code variant.
    pub variant: Variant,
    /// Which hardware configuration.
    pub hw: Hw,
    /// Input scale.
    pub scale: Scale,
    /// Input-generation seed.
    pub seed: u64,
}

impl JobSpec {
    /// Digest of the kernel source this job compiles (the "code image"
    /// component of the content address): a new compiler or kernel
    /// revision changes the digest, so stale cached results are never
    /// served for new code.
    pub fn code_digest(self) -> u64 {
        let source = match self.app {
            App::Fasta => kernels::fasta(self.variant.flavor()),
            App::Clustalw => kernels::clustalw(self.variant.flavor()),
            App::Hmmer => kernels::hmmer(self.variant.flavor()),
            App::Blast => kernels::blast(self.variant.flavor()),
        };
        let h = fnv64(0xcbf2_9ce4_8422_2325, source.as_bytes());
        fnv64(h, self.variant.slug().as_bytes())
    }

    /// The canonical `(key, value)` pairs the content address hashes.
    pub fn canonical_fields(self) -> Vec<(String, String)> {
        vec![
            ("app".to_string(), app_slug(self.app)),
            ("code".to_string(), format!("{:016x}", self.code_digest())),
            ("hw".to_string(), self.hw.slug()),
            ("scale".to_string(), scale_slug(self.scale).to_string()),
            ("seed".to_string(), self.seed.to_string()),
            ("variant".to_string(), self.variant.slug().to_string()),
        ]
    }

    /// The content-address digest keying this job in queue and cache.
    pub fn digest(self) -> u64 {
        digest_fields(&self.canonical_fields())
    }

    /// The digest as the 16-hex-digit job id used in journal records
    /// and cache file names.
    pub fn id(self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Human-readable label (`app/variant/hw/s<seed>`) used in metric
    /// names and telemetry spans.
    pub fn label(self) -> String {
        format!("{}/{}/{}/s{}", app_slug(self.app), self.variant.slug(), self.hw.slug(), self.seed)
    }

    /// Serialize for a `submitted` journal record. The seed is a
    /// decimal string (JSON numbers are doubles; a u64 seed must not be
    /// rounded) and the code digest rides along for humans reading the
    /// journal — [`JobSpec::from_json`] recomputes it from source.
    pub fn to_json(self) -> Json {
        Json::obj()
            .set("app", Json::Str(app_slug(self.app)))
            .set("variant", Json::Str(self.variant.slug().to_string()))
            .set("hw", Json::Str(self.hw.slug()))
            .set("scale", Json::Str(scale_slug(self.scale).to_string()))
            .set("seed", Json::Str(self.seed.to_string()))
            .set("code", Json::Str(format!("{:016x}", self.code_digest())))
    }

    /// Deserialize a `submitted` journal record's spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job spec missing field {k:?}"))
        };
        let app = field("app")?;
        let app = app_from_slug(&app).ok_or_else(|| format!("unknown app {app:?}"))?;
        let variant = field("variant")?;
        let variant = Variant::all()
            .into_iter()
            .find(|v| v.slug() == variant)
            .ok_or_else(|| format!("unknown variant {variant:?}"))?;
        let hw = field("hw")?;
        let hw = Hw::from_slug(&hw).ok_or_else(|| format!("unknown hw {hw:?}"))?;
        let scale = field("scale")?;
        let scale = scale_from_slug(&scale).ok_or_else(|| format!("unknown scale {scale:?}"))?;
        let seed = field("seed")?;
        let seed = seed.parse::<u64>().map_err(|_| format!("bad seed {seed:?}"))?;
        Ok(JobSpec { app, variant, hw, scale, seed })
    }
}

/// Where a job stands in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, waiting for a worker (or released back by one).
    Pending,
    /// Leased by a worker shard.
    Leased {
        /// The leasing worker's shard id.
        worker: u64,
        /// Last heartbeat, in ms since the Unix epoch. A lease whose
        /// heartbeat is older than the configured timeout is claimable
        /// by any worker.
        hb: u64,
    },
    /// Finished; its report is in the run cache.
    Completed,
    /// Gave up after the attempt limit (or a non-retryable failure).
    Quarantined {
        /// `failure_class` taxonomy value (`trap`, `timeout`, …).
        class: String,
        /// Human-readable description of the final failure.
        message: String,
    },
}

/// One job's state as reconstructed by [`replay_journal`] (and carried
/// live by [`Campaign`]).
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle position.
    pub status: JobStatus,
    /// Failed attempts so far (the retry policy's input).
    pub attempts: u32,
    /// Instructions retired at the last recorded checkpoint.
    pub insns: u64,
}

/// The state a journal replays to.
#[derive(Debug)]
pub struct JournalReplay {
    /// Job state by 16-hex-digit id.
    pub jobs: HashMap<String, ReplayedJob>,
    /// Job ids in submission order (the merged report's order).
    pub order: Vec<String>,
    /// Segment counter from the header (bumped by compaction).
    pub segment: u64,
    /// Complete records replayed.
    pub records: u64,
    /// Whether the final line was torn (unparseable) and dropped.
    pub truncated_tail: bool,
}

/// Replay a journal text to a consistent state.
///
/// Every complete line is applied in order. An unparseable *final* line
/// is a torn write from a crash: it is dropped and reported via
/// [`JournalReplay::truncated_tail`]. An unparseable line anywhere else
/// is corruption and errors.
///
/// # Errors
///
/// Returns a message for an empty journal, a missing or unsupported
/// header, corruption before the final line, or a record referencing an
/// unsubmitted job.
pub fn replay_journal(text: &str) -> Result<JournalReplay, String> {
    let lines: Vec<&str> = text.lines().map(str::trim_end).filter(|l| !l.is_empty()).collect();
    if lines.is_empty() {
        return Err("empty journal".to_string());
    }
    let mut replay = JournalReplay {
        jobs: HashMap::new(),
        order: Vec::new(),
        segment: 0,
        records: 0,
        truncated_tail: false,
    };
    for (i, line) in lines.iter().enumerate() {
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                if i + 1 == lines.len() {
                    replay.truncated_tail = true;
                    break;
                }
                return Err(format!("journal line {}: {e}", i + 1));
            }
        };
        let rec = doc.get("rec").and_then(Json::as_str).unwrap_or("");
        if i == 0 {
            if rec != "header" {
                return Err(format!("journal line 1: expected header record, got {rec:?}"));
            }
            check_schema(&doc, JOURNAL_SCHEMA).map_err(|e| e.to_string())?;
            replay.segment = doc.get("segment").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            replay.records += 1;
            continue;
        }
        let job_id = || {
            doc.get("job")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("journal line {}: record missing job id", i + 1))
        };
        match rec {
            "header" => {
                // A header after line 1 would mean a botched compaction;
                // the atomic rename makes that unreachable, so reject.
                return Err(format!("journal line {}: unexpected header record", i + 1));
            }
            "submitted" => {
                let id = job_id()?;
                let spec = doc
                    .get("spec")
                    .ok_or_else(|| format!("journal line {}: submitted without spec", i + 1))
                    .and_then(|s| {
                        JobSpec::from_json(s).map_err(|e| format!("journal line {}: {e}", i + 1))
                    })?;
                // Duplicate submissions are idempotent: a crash between
                // a torn `submitted` tail and the resubmission on
                // restart must not double-queue the job.
                if !replay.jobs.contains_key(&id) {
                    replay.jobs.insert(
                        id.clone(),
                        ReplayedJob { spec, status: JobStatus::Pending, attempts: 0, insns: 0 },
                    );
                    replay.order.push(id);
                }
            }
            "lease" => {
                let id = job_id()?;
                let job = replay
                    .jobs
                    .get_mut(&id)
                    .ok_or_else(|| format!("journal line {}: lease of unknown job {id}", i + 1))?;
                job.status = JobStatus::Leased {
                    worker: doc.get("worker").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    hb: doc.get("hb").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                };
            }
            "progress" => {
                let id = job_id()?;
                let job = replay.jobs.get_mut(&id).ok_or_else(|| {
                    format!("journal line {}: progress of unknown job {id}", i + 1)
                })?;
                job.insns = doc.get("insns").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let hb = doc.get("hb").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                if let JobStatus::Leased { hb: stamp, .. } = &mut job.status {
                    *stamp = hb;
                }
            }
            "retry" => {
                let id = job_id()?;
                let job = replay
                    .jobs
                    .get_mut(&id)
                    .ok_or_else(|| format!("journal line {}: retry of unknown job {id}", i + 1))?;
                // The record's attempt count is authoritative (not an
                // increment), so replaying a journal twice — or a
                // compacted journal — lands on the same count.
                job.attempts = doc.get("attempt").and_then(Json::as_f64).unwrap_or(0.0) as u32;
            }
            "completed" => {
                let id = job_id()?;
                let job = replay.jobs.get_mut(&id).ok_or_else(|| {
                    format!("journal line {}: completion of unknown job {id}", i + 1)
                })?;
                job.status = JobStatus::Completed;
            }
            "quarantined" => {
                let id = job_id()?;
                let job = replay.jobs.get_mut(&id).ok_or_else(|| {
                    format!("journal line {}: quarantine of unknown job {id}", i + 1)
                })?;
                job.status = JobStatus::Quarantined {
                    class: doc.get("class").and_then(Json::as_str).unwrap_or("error").to_string(),
                    message: doc.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
                };
            }
            "released" => {
                let id = job_id()?;
                let job = replay.jobs.get_mut(&id).ok_or_else(|| {
                    format!("journal line {}: release of unknown job {id}", i + 1)
                })?;
                job.status = JobStatus::Pending;
            }
            other => {
                return Err(format!("journal line {}: unknown record kind {other:?}", i + 1));
            }
        }
        replay.records += 1;
    }
    Ok(replay)
}

/// Campaign service configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign directory: holds `journal.jsonl`, `cache/`, `state/`.
    pub dir: PathBuf,
    /// Worker shards [`Campaign::run`] spawns (min 1).
    pub workers: usize,
    /// Checkpoint cadence in instructions; 0 runs jobs unchunked.
    /// Checkpoints are cut on multiples of this grid, which is what
    /// makes interrupted and uninterrupted runs byte-identical.
    pub chunk: u64,
    /// Per-attempt instruction budget; `None` means unbudgeted. A job
    /// that exhausts its (seeded, exponentially widened) budget retries
    /// from its own checkpoint, then quarantines.
    pub budget: Option<u64>,
    /// Attempts before quarantine.
    pub max_attempts: u32,
    /// A lease whose heartbeat is older than this is claimable.
    pub lease_timeout_ms: u64,
    /// Compact the journal when it exceeds this many records; 0 never
    /// compacts.
    pub compact_threshold: u64,
    /// Batch width for lane-parallel claiming (min 1). Above 1, each
    /// in-process worker claims up to this many *compatible* jobs —
    /// same app/variant/hw/scale, differing seed — per dispatch
    /// ([`Campaign::claim_batch_for`]), and remote workers claiming
    /// through [`Campaign::claim_for`] get compatibility affinity:
    /// consecutive claims prefer jobs matching the worker's previous
    /// one. Claim interleaving never affects the merged report (it is
    /// built in submission order), so any width yields byte-identical
    /// reports.
    pub lanes: usize,
}

impl CampaignConfig {
    /// Defaults: 1 worker, unchunked, unbudgeted, 3 attempts, 60 s
    /// lease timeout, no compaction, no lane batching.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CampaignConfig {
            dir: dir.into(),
            workers: 1,
            chunk: 0,
            budget: None,
            max_attempts: 3,
            lease_timeout_ms: 60_000,
            compact_threshold: 0,
            lanes: 1,
        }
    }
}

/// What [`Campaign::submit`] did with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// New job, queued.
    Accepted,
    /// Already queued or running; deduped.
    Duplicate,
    /// Already finished; the result is served from the run cache with
    /// zero simulation work.
    CacheHit,
}

/// A job leased to a worker shard — everything the worker (in-process
/// thread or remote process) needs to start executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeasedJob {
    /// 16-hex-digit content-address id.
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Failed attempts so far (input to the seeded budget widening).
    pub attempts: u32,
}

/// What a claim attempt produced (shared by the in-process worker loop
/// and the remote lease protocol in [`remote`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// A job was leased to the asking worker.
    Job(LeasedJob),
    /// Nothing claimable right now, but live leases exist — the asking
    /// worker should retry shortly (another shard may die or release).
    Busy,
    /// The campaign is draining: stop claiming.
    Drained,
    /// Every job is terminal, or the incarnation crashed: stop.
    Finished,
}

/// What a batch claim attempt produced ([`Campaign::claim_batch_for`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchClaim {
    /// One or more compatible jobs leased to the asking worker (the
    /// first is the anchor; the rest share its app/variant/hw/scale).
    Jobs(Vec<LeasedJob>),
    /// Nothing claimable right now, but live leases exist.
    Busy,
    /// The campaign is draining: stop claiming.
    Drained,
    /// Every job is terminal, or the incarnation crashed: stop.
    Finished,
}

/// Whether two jobs may share a lane batch: everything but the seed
/// (and thus the generated input data) must match, which is exactly
/// the compatibility class the lane gang requires — one code image,
/// one hardware configuration, one scale.
fn lane_compatible(a: JobSpec, b: JobSpec) -> bool {
    a.app == b.app && a.variant == b.variant && a.hw == b.hw && a.scale == b.scale
}

/// What [`Campaign`] did with a remotely retired result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireOutcome {
    /// First completion: cache written, `completed` record appended.
    Recorded,
    /// The job was already terminal — a re-delivery after a reconnect
    /// or an expired-lease re-run. Served as a cache hit, never
    /// double-counted.
    Duplicate,
    /// The incarnation crashed or the cache write failed.
    Failed,
}

/// Terminal-state counts after [`Campaign::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Jobs completed (including cache hits from earlier incarnations).
    pub completed: u64,
    /// Jobs quarantined.
    pub quarantined: u64,
    /// Whether the (simulated) crash tripped; real incarnations never
    /// set this.
    pub crashed: bool,
}

/// Mutable campaign state behind the service lock.
struct Inner {
    jobs: HashMap<String, ReplayedJob>,
    order: Vec<String>,
    file: Option<std::fs::File>,
    segment: u64,
    records: u64,
    /// Journal appends performed by this incarnation (the crash-point
    /// coordinate used by [`Campaign::crash_after_appends`]).
    appends: u64,
    crash_after: Option<u64>,
    crashed: bool,
    truncated_tail: bool,
    /// Last spec each worker claimed — the compatibility-affinity hint
    /// used when `config.lanes > 1`. In-memory only (not journaled):
    /// affinity is a scheduling preference, never a correctness input.
    affinity: HashMap<u64, JobSpec>,
}

/// The campaign service: open (replaying the journal), submit jobs, run
/// worker shards, and merge a deterministic report.
pub struct Campaign {
    config: CampaignConfig,
    inner: Mutex<Inner>,
    draining: AtomicBool,
    telemetry: Option<TelemetryHub>,
}

fn lock(inner: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Campaign {
    /// Open (or create) the campaign at `config.dir`, replaying the
    /// journal to a consistent state.
    ///
    /// Recovery on open: a torn final journal line is healed by
    /// truncating to the last newline; stale leases from a dead
    /// incarnation revert to pending; a `completed` job whose cache
    /// file is missing (crash between cache write and record — the
    /// other order is impossible) reverts to pending and will re-run
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory or journal cannot be
    /// created/read, or the journal is corrupt beyond a torn tail.
    pub fn open(config: CampaignConfig) -> Result<Campaign, String> {
        let dir = &config.dir;
        std::fs::create_dir_all(dir.join("cache"))
            .map_err(|e| format!("create {}/cache: {e}", dir.display()))?;
        std::fs::create_dir_all(dir.join("state"))
            .map_err(|e| format!("create {}/state: {e}", dir.display()))?;
        let journal = dir.join("journal.jsonl");
        let mut inner = Inner {
            jobs: HashMap::new(),
            order: Vec::new(),
            file: None,
            segment: 0,
            records: 0,
            appends: 0,
            crash_after: None,
            crashed: false,
            truncated_tail: false,
            affinity: HashMap::new(),
        };
        let text = match std::fs::read_to_string(&journal) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("read {}: {e}", journal.display())),
        };
        let fresh = text.trim().is_empty();
        if !fresh {
            let replay = replay_journal(&text)?;
            if replay.truncated_tail {
                let healed = match text.rfind('\n') {
                    Some(nl) => &text[..=nl],
                    None => "",
                };
                write_atomic(&journal, healed)
                    .map_err(|e| format!("heal {}: {e}", journal.display()))?;
                inner.truncated_tail = true;
            } else if !text.ends_with('\n') {
                // The final record is complete but its newline was torn
                // off; restore it so the next append starts a new line
                // instead of concatenating onto this one.
                write_atomic(&journal, &format!("{text}\n"))
                    .map_err(|e| format!("heal {}: {e}", journal.display()))?;
                inner.truncated_tail = true;
            }
            inner.segment = replay.segment;
            inner.records = replay.records;
            inner.order = replay.order;
            inner.jobs = replay.jobs;
            for job in inner.jobs.values_mut() {
                // Any lease recorded by a previous incarnation is dead:
                // its worker no longer exists.
                let stale_lease = matches!(job.status, JobStatus::Leased { .. });
                // A `completed` job without its cache file means the
                // crash landed between the cache write and the record's
                // append — impossible the other way round. Re-running
                // it rewrites the identical bytes.
                let orphaned = matches!(job.status, JobStatus::Completed)
                    && !dir.join("cache").join(format!("{}.json", job.spec.id())).is_file();
                if stale_lease || orphaned {
                    job.status = JobStatus::Pending;
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&journal)
            .map_err(|e| format!("open {}: {e}", journal.display()))?;
        inner.file = Some(file);
        let campaign = Campaign {
            config,
            inner: Mutex::new(inner),
            draining: AtomicBool::new(false),
            telemetry: None,
        };
        if fresh {
            let mut st = lock(&campaign.inner);
            let header = Json::obj()
                .set("rec", Json::Str("header".to_string()))
                .set("schema", Json::Str(JOURNAL_SCHEMA.to_string()))
                .set("segment", Json::Num(0.0));
            if !campaign.append(&mut st, &header) {
                return Err("journal header write failed".to_string());
            }
        }
        Ok(campaign)
    }

    /// Attach a telemetry hub: workers record job spans and lease/
    /// cache/journal phase nanoseconds through it.
    pub fn set_telemetry(&mut self, hub: TelemetryHub) {
        self.telemetry = Some(hub);
    }

    /// Detach the telemetry hub (to `finish()` it into a snapshot).
    pub fn take_telemetry(&mut self) -> Option<TelemetryHub> {
        self.telemetry.take()
    }

    /// Arrange for the simulated crash: the `n+1`-th journal append of
    /// this incarnation is refused and every later disk write is
    /// suppressed — equivalent to SIGKILL at that boundary, since all
    /// earlier appends were flushed.
    pub fn crash_after_appends(&self, n: u64) {
        lock(&self.inner).crash_after = Some(n);
    }

    /// Journal appends performed by this incarnation.
    pub fn journal_appends(&self) -> u64 {
        lock(&self.inner).appends
    }

    /// Whether the simulated crash tripped.
    pub fn crashed(&self) -> bool {
        lock(&self.inner).crashed
    }

    /// Whether opening healed a torn final journal line.
    pub fn truncated_tail(&self) -> bool {
        lock(&self.inner).truncated_tail
    }

    /// Job ids in submission order.
    pub fn job_ids(&self) -> Vec<String> {
        lock(&self.inner).order.clone()
    }

    /// A job's current status.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        lock(&self.inner).jobs.get(id).map(|j| j.status.clone())
    }

    /// Terminal-state counts.
    pub fn summary(&self) -> CampaignSummary {
        let st = lock(&self.inner);
        let mut s = CampaignSummary { completed: 0, quarantined: 0, crashed: st.crashed };
        for job in st.jobs.values() {
            match job.status {
                JobStatus::Completed => s.completed += 1,
                JobStatus::Quarantined { .. } => s.quarantined += 1,
                _ => {}
            }
        }
        s
    }

    fn cache_path(&self, id: &str) -> PathBuf {
        self.config.dir.join("cache").join(format!("{id}.json"))
    }

    fn ck_path(&self, id: &str) -> PathBuf {
        self.config.dir.join("state").join(format!("{id}.ck.json"))
    }

    /// Append one record to the journal. Returns `false` when the
    /// incarnation has (simulated-)crashed — the caller must stop, as a
    /// killed process would.
    fn append(&self, st: &mut Inner, doc: &Json) -> bool {
        if st.crashed {
            return false;
        }
        if let Some(n) = st.crash_after {
            if st.appends >= n {
                st.crashed = true;
                return false;
            }
        }
        st.appends += 1;
        let started = Instant::now();
        let Some(file) = st.file.as_mut() else {
            st.crashed = true;
            return false;
        };
        let line = format!("{}\n", doc.render_compact());
        if file.write_all(line.as_bytes()).and_then(|()| file.flush()).is_err() {
            st.crashed = true;
            return false;
        }
        if let Some(hub) = &self.telemetry {
            hub.phase_host("journal", started.elapsed().as_nanos() as u64);
        }
        st.records += 1;
        if self.config.compact_threshold > 0 && st.records > self.config.compact_threshold {
            self.compact(st);
        }
        true
    }

    /// Rewrite the journal from in-memory state (atomic rename), bump
    /// the segment, and reopen the append handle. Compaction lines are
    /// not "appends" for [`Campaign::crash_after_appends`] purposes.
    ///
    /// The superseded journal file is archived (not deleted) into
    /// `segments/<segment>.jsonl` under its own segment number first, so
    /// a campaign that outlives one journal incarnation remains
    /// replayable end-to-end: the archive plus the live journal form the
    /// complete record history. The archive is a *copy* made before the
    /// atomic rename — a crash between the two leaves the live journal
    /// intact and at worst re-archives the same segment (idempotent, the
    /// re-archived copy is a superset prefix of the same records).
    fn compact(&self, st: &mut Inner) {
        let journal = self.config.dir.join("journal.jsonl");
        let seg_dir = self.config.dir.join("segments");
        let archived = seg_dir.join(format!("{:06}.jsonl", st.segment));
        if std::fs::create_dir_all(&seg_dir).is_err() || std::fs::copy(&journal, &archived).is_err()
        {
            st.crashed = true;
            return;
        }
        st.segment += 1;
        let mut out = String::new();
        let header = Json::obj()
            .set("rec", Json::Str("header".to_string()))
            .set("schema", Json::Str(JOURNAL_SCHEMA.to_string()))
            .set("segment", Json::Num(st.segment as f64));
        out.push_str(&header.render_compact());
        out.push('\n');
        let mut records = 1u64;
        for id in &st.order {
            let Some(job) = st.jobs.get(id) else { continue };
            let sub = Json::obj()
                .set("rec", Json::Str("submitted".to_string()))
                .set("job", Json::Str(id.clone()))
                .set("spec", job.spec.to_json());
            out.push_str(&sub.render_compact());
            out.push('\n');
            records += 1;
            if job.attempts > 0 {
                let retry = Json::obj()
                    .set("rec", Json::Str("retry".to_string()))
                    .set("job", Json::Str(id.clone()))
                    .set("attempt", Json::Num(f64::from(job.attempts)))
                    .set("class", Json::Str("carried".to_string()));
                out.push_str(&retry.render_compact());
                out.push('\n');
                records += 1;
            }
            if job.insns > 0 {
                let progress = Json::obj()
                    .set("rec", Json::Str("progress".to_string()))
                    .set("job", Json::Str(id.clone()))
                    .set("insns", Json::Num(job.insns as f64))
                    .set("hb", Json::Num(0.0));
                out.push_str(&progress.render_compact());
                out.push('\n');
                records += 1;
            }
            let status = match &job.status {
                JobStatus::Pending => None,
                JobStatus::Leased { worker, hb } => Some(
                    Json::obj()
                        .set("rec", Json::Str("lease".to_string()))
                        .set("job", Json::Str(id.clone()))
                        .set("worker", Json::Num(*worker as f64))
                        .set("hb", Json::Num(*hb as f64)),
                ),
                JobStatus::Completed => Some(
                    Json::obj()
                        .set("rec", Json::Str("completed".to_string()))
                        .set("job", Json::Str(id.clone())),
                ),
                JobStatus::Quarantined { class, message } => Some(
                    Json::obj()
                        .set("rec", Json::Str("quarantined".to_string()))
                        .set("job", Json::Str(id.clone()))
                        .set("class", Json::Str(class.clone()))
                        .set("message", Json::Str(message.clone())),
                ),
            };
            if let Some(doc) = status {
                out.push_str(&doc.render_compact());
                out.push('\n');
                records += 1;
            }
        }
        if write_atomic(&journal, &out).is_err() {
            st.crashed = true;
            return;
        }
        match std::fs::OpenOptions::new().append(true).open(&journal) {
            Ok(file) => {
                st.file = Some(file);
                st.records = records;
            }
            Err(_) => st.crashed = true,
        }
    }

    /// Submit a job: dedupe against the queue and serve finished
    /// results from the run cache.
    ///
    /// # Errors
    ///
    /// Returns a message when the journal append fails (the incarnation
    /// crashed).
    pub fn submit(&self, spec: JobSpec) -> Result<SubmitOutcome, String> {
        let id = spec.id();
        let mut st = lock(&self.inner);
        if let Some(job) = st.jobs.get(&id) {
            return Ok(match job.status {
                JobStatus::Completed | JobStatus::Quarantined { .. } => {
                    if let Some(hub) = &self.telemetry {
                        hub.count_host("campaign.cache_hits", 1);
                    }
                    SubmitOutcome::CacheHit
                }
                _ => SubmitOutcome::Duplicate,
            });
        }
        // State first, then the journal record: compaction (triggered
        // from inside `append`) rebuilds the journal from state, so the
        // state must already reflect the record being appended.
        st.jobs.insert(
            id.clone(),
            ReplayedJob { spec, status: JobStatus::Pending, attempts: 0, insns: 0 },
        );
        st.order.push(id.clone());
        let doc = Json::obj()
            .set("rec", Json::Str("submitted".to_string()))
            .set("job", Json::Str(id))
            .set("spec", spec.to_json());
        if !self.append(&mut st, &doc) {
            return Err(format!("journal append failed submitting {}", spec.label()));
        }
        Ok(SubmitOutcome::Accepted)
    }

    /// Request graceful drain: workers stop claiming jobs, finish or
    /// checkpoint their current slice, release their leases, and
    /// return. Never abandons a lease.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Run worker shards until every job is terminal, the campaign is
    /// drained, or the (simulated) crash trips.
    pub fn run(&self) -> CampaignSummary {
        let shards = self.config.workers.max(1);
        std::thread::scope(|scope| {
            for w in 0..shards {
                scope.spawn(move || self.worker(w as u64));
            }
        });
        self.summary()
    }

    /// One worker shard: claim pending (or lease-expired) jobs and
    /// execute them until nothing is claimable. With `config.lanes > 1`
    /// the shard claims whole compatible batches per dispatch and
    /// retires them back to back, keeping sibling leases warm while
    /// earlier batch members execute.
    fn worker(&self, w: u64) {
        let lanes = self.config.lanes.max(1);
        if lanes <= 1 {
            loop {
                match self.claim_for(w) {
                    Claim::Job(job) => self.execute(w, &job.id, job.spec, job.attempts),
                    Claim::Busy => std::thread::sleep(std::time::Duration::from_millis(2)),
                    Claim::Drained | Claim::Finished => return,
                }
            }
        }
        loop {
            match self.claim_batch_for(w, lanes) {
                BatchClaim::Jobs(jobs) => {
                    for (k, job) in jobs.iter().enumerate() {
                        for other in &jobs[k + 1..] {
                            self.touch_lease(&other.id, w);
                        }
                        self.execute(w, &job.id, job.spec, job.attempts);
                    }
                }
                BatchClaim::Busy => std::thread::sleep(std::time::Duration::from_millis(2)),
                BatchClaim::Drained | BatchClaim::Finished => return,
            }
        }
    }

    /// Claim the first claimable job — pending, or leased with an
    /// expired heartbeat — for worker `w`, appending the `lease`
    /// record. This is the single lease path: the in-process worker
    /// loop and the remote `serve` protocol both claim through it, so
    /// expired remote leases are reclaimed exactly as in-process ones.
    pub fn claim_for(&self, w: u64) -> Claim {
        if self.draining.load(Ordering::SeqCst) {
            return Claim::Drained;
        }
        let mut st = lock(&self.inner);
        if st.crashed {
            return Claim::Finished;
        }
        let now = now_ms();
        let timeout = self.config.lease_timeout_ms;
        // With lane batching enabled, prefer a claimable job compatible
        // with this worker's previous claim: remote workers (which batch
        // through repeated single claims over the unchanged wire
        // protocol) then stream compatible jobs back to back. With
        // `lanes <= 1` the scan is the original first-claimable walk.
        let affinity = if self.config.lanes > 1 { st.affinity.get(&w).copied() } else { None };
        let mut first: Option<(String, bool)> = None;
        let mut affine: Option<(String, bool)> = None;
        let mut live = false;
        for id in &st.order {
            let Some(job) = st.jobs.get(id) else { continue };
            let reclaimed = match &job.status {
                JobStatus::Pending => false,
                JobStatus::Leased { hb, .. } => {
                    if now.saturating_sub(*hb) > timeout {
                        true
                    } else {
                        live = true;
                        continue;
                    }
                }
                _ => continue,
            };
            if first.is_none() {
                first = Some((id.clone(), reclaimed));
                if affinity.is_none() {
                    break;
                }
            }
            if affinity.is_some_and(|a| lane_compatible(a, job.spec)) {
                affine = Some((id.clone(), reclaimed));
                break;
            }
        }
        match affine.or(first) {
            Some((id, reclaimed)) => {
                let started = Instant::now();
                let job = st.jobs.get_mut(&id).expect("claimed job exists");
                job.status = JobStatus::Leased { worker: w, hb: now };
                let (spec, attempts) = (job.spec, job.attempts);
                let doc = Json::obj()
                    .set("rec", Json::Str("lease".to_string()))
                    .set("job", Json::Str(id.clone()))
                    .set("worker", Json::Num(w as f64))
                    .set("hb", Json::Num(now as f64));
                if !self.append(&mut st, &doc) {
                    return Claim::Finished;
                }
                if self.config.lanes > 1 {
                    st.affinity.insert(w, spec);
                }
                if let Some(hub) = &self.telemetry {
                    hub.phase_host("lease", started.elapsed().as_nanos() as u64);
                    if reclaimed {
                        hub.count_host("campaign.lease_reclaims", 1);
                    }
                }
                Claim::Job(LeasedJob { id, spec, attempts })
            }
            None if live => Claim::Busy,
            None => Claim::Finished,
        }
    }

    /// Claim up to `max` *compatible* jobs — same app/variant/hw/scale,
    /// differing seed — for worker `w` in one locked pass, appending a
    /// `lease` record per job. The anchor job is chosen exactly like
    /// [`Campaign::claim_for`] (first claimable, with affinity to the
    /// worker's previous claim); the rest are the next claimable jobs
    /// in submission order that share the anchor's compatibility class.
    /// The merged report is built in submission order from terminal
    /// states, so batch claiming cannot change its bytes.
    pub fn claim_batch_for(&self, w: u64, max: usize) -> BatchClaim {
        let max = max.max(1);
        if self.draining.load(Ordering::SeqCst) {
            return BatchClaim::Drained;
        }
        let mut st = lock(&self.inner);
        if st.crashed {
            return BatchClaim::Finished;
        }
        let now = now_ms();
        let timeout = self.config.lease_timeout_ms;
        let mut claimable: Vec<(String, bool)> = Vec::new();
        let mut live = false;
        for id in &st.order {
            match st.jobs.get(id).map(|j| &j.status) {
                Some(JobStatus::Pending) => claimable.push((id.clone(), false)),
                Some(JobStatus::Leased { hb, .. }) => {
                    if now.saturating_sub(*hb) > timeout {
                        claimable.push((id.clone(), true));
                    } else {
                        live = true;
                    }
                }
                _ => {}
            }
        }
        if claimable.is_empty() {
            return if live { BatchClaim::Busy } else { BatchClaim::Finished };
        }
        let spec_of = |st: &Inner, id: &str| st.jobs.get(id).expect("claimable job exists").spec;
        let anchor = st
            .affinity
            .get(&w)
            .copied()
            .and_then(|a| claimable.iter().position(|(id, _)| lane_compatible(a, spec_of(&st, id))))
            .unwrap_or(0);
        let anchor_spec = spec_of(&st, &claimable[anchor].0);
        let mut picks: Vec<(String, bool)> = vec![claimable[anchor].clone()];
        for (k, entry) in claimable.iter().enumerate() {
            if picks.len() >= max {
                break;
            }
            if k != anchor && lane_compatible(anchor_spec, spec_of(&st, &entry.0)) {
                picks.push(entry.clone());
            }
        }
        let started = Instant::now();
        let mut jobs = Vec::with_capacity(picks.len());
        let mut reclaims = 0u64;
        for (id, reclaimed) in picks {
            let job = st.jobs.get_mut(&id).expect("claimed job exists");
            job.status = JobStatus::Leased { worker: w, hb: now };
            let (spec, attempts) = (job.spec, job.attempts);
            let doc = Json::obj()
                .set("rec", Json::Str("lease".to_string()))
                .set("job", Json::Str(id.clone()))
                .set("worker", Json::Num(w as f64))
                .set("hb", Json::Num(now as f64));
            if !self.append(&mut st, &doc) {
                return BatchClaim::Finished;
            }
            reclaims += u64::from(reclaimed);
            jobs.push(LeasedJob { id, spec, attempts });
        }
        st.affinity.insert(w, anchor_spec);
        if let Some(hub) = &self.telemetry {
            hub.phase_host("lease", started.elapsed().as_nanos() as u64);
            hub.count_host("campaign.batch_claims", 1);
            hub.count_host("campaign.batch_jobs", jobs.len() as u64);
            if reclaims > 0 {
                hub.count_host("campaign.lease_reclaims", reclaims);
            }
        }
        BatchClaim::Jobs(jobs)
    }

    /// Refresh the heartbeat on a lease held by worker `w`. A heartbeat
    /// for a job leased to a *different* worker (the lease expired and
    /// was reclaimed while this worker was disconnected) is ignored —
    /// the stale worker must not keep the new lease alive.
    pub fn touch_lease(&self, id: &str, w: u64) {
        let mut st = lock(&self.inner);
        if let Some(job) = st.jobs.get_mut(id) {
            if let JobStatus::Leased { worker, hb } = &mut job.status {
                if *worker == w {
                    *hb = now_ms();
                }
            }
        }
    }

    /// The job currently leased to worker `w`, if any. The remote
    /// protocol re-delivers this on `fetch` — idempotent re-delivery
    /// keyed by the content-addressed id — so a worker that lost the
    /// original `job` frame resumes the same work instead of waiting
    /// out its own lease.
    pub fn leased_to(&self, w: u64) -> Option<LeasedJob> {
        let st = lock(&self.inner);
        for id in &st.order {
            if let Some(job) = st.jobs.get(id) {
                if matches!(job.status, JobStatus::Leased { worker, .. } if worker == w) {
                    return Some(LeasedJob {
                        id: id.clone(),
                        spec: job.spec,
                        attempts: job.attempts,
                    });
                }
            }
        }
        None
    }

    /// Jobs not yet terminal (pending or leased).
    pub fn outstanding(&self) -> u64 {
        let st = lock(&self.inner);
        st.jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Pending | JobStatus::Leased { .. }))
            .count() as u64
    }

    /// Leases whose heartbeat is still within the timeout.
    pub fn live_leases(&self) -> u64 {
        let st = lock(&self.inner);
        let now = now_ms();
        st.jobs
            .values()
            .filter(|j| match j.status {
                JobStatus::Leased { hb, .. } => {
                    now.saturating_sub(hb) <= self.config.lease_timeout_ms
                }
                _ => false,
            })
            .count() as u64
    }

    /// Whether graceful drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The service configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// A job's submitted spec.
    pub fn spec(&self, id: &str) -> Option<JobSpec> {
        lock(&self.inner).jobs.get(id).map(|j| j.spec)
    }

    /// The rendered resume checkpoint for a job, if one is on disk.
    fn resume_text(&self, id: &str) -> Option<String> {
        std::fs::read_to_string(self.ck_path(id)).ok()
    }

    /// Record a remote worker's chunk-boundary checkpoint: validate and
    /// persist the rendered checkpoint, then append the `progress`
    /// record (which doubles as the lease heartbeat).
    fn remote_progress(&self, id: &str, insns: u64, ck_text: &str) -> bool {
        if lock(&self.inner).crashed {
            return false;
        }
        if checkpoint::parse(ck_text).is_err() {
            return false;
        }
        self.store_checkpoint(id, ck_text) && self.append_progress(id, insns)
    }

    /// Record a remote worker's failed attempt: persist (budget retry)
    /// or remove (scratch retry) the checkpoint, then journal the
    /// authoritative attempt count. Mirrors [`Campaign::retry`].
    fn remote_retry(
        &self,
        id: &str,
        label: &str,
        attempt: u32,
        class: &str,
        ck_text: Option<&str>,
    ) -> bool {
        if lock(&self.inner).crashed {
            return false;
        }
        match ck_text {
            Some(text) => {
                if checkpoint::parse(text).is_err() || !self.store_checkpoint(id, text) {
                    return false;
                }
            }
            None => {
                let _ = std::fs::remove_file(self.ck_path(id));
            }
        }
        self.record_retry(id, label, attempt, class)
    }

    /// Retire a job remotely: write the worker-rendered report into the
    /// run cache (before the `completed` record, preserving the crash
    /// ordering invariant) and mark the job completed. A job that is
    /// already terminal — the worker reconnected and re-delivered, or
    /// an expired lease was re-run by another shard — is a
    /// [`RetireOutcome::Duplicate`]: a cache hit, never a double-count.
    fn remote_retire(&self, id: &str, insns: u64, report_text: &str) -> RetireOutcome {
        {
            let st = lock(&self.inner);
            if st.crashed {
                return RetireOutcome::Failed;
            }
            match st.jobs.get(id).map(|j| &j.status) {
                Some(JobStatus::Completed | JobStatus::Quarantined { .. }) => {
                    drop(st);
                    if let Some(hub) = &self.telemetry {
                        hub.count_host("campaign.remote.dup_retires", 1);
                    }
                    return RetireOutcome::Duplicate;
                }
                Some(_) => {}
                None => return RetireOutcome::Failed,
            }
        }
        let started = Instant::now();
        if write_atomic(self.cache_path(id), report_text).is_err() {
            return RetireOutcome::Failed;
        }
        if let Some(hub) = &self.telemetry {
            hub.phase_host("cache", started.elapsed().as_nanos() as u64);
        }
        let mut st = lock(&self.inner);
        // Recheck under the lock: another connection may have retired
        // the same job between the peek above and the cache write (both
        // writes carry identical bytes, so the race is benign).
        if matches!(
            st.jobs.get(id).map(|j| &j.status),
            Some(JobStatus::Completed | JobStatus::Quarantined { .. })
        ) {
            drop(st);
            if let Some(hub) = &self.telemetry {
                hub.count_host("campaign.remote.dup_retires", 1);
            }
            return RetireOutcome::Duplicate;
        }
        if let Some(job) = st.jobs.get_mut(id) {
            job.status = JobStatus::Completed;
            job.insns = insns;
        }
        let doc = Json::obj()
            .set("rec", Json::Str("completed".to_string()))
            .set("job", Json::Str(id.to_string()));
        if !self.append(&mut st, &doc) {
            return RetireOutcome::Failed;
        }
        drop(st);
        let _ = std::fs::remove_file(self.ck_path(id));
        RetireOutcome::Recorded
    }

    /// Quarantine a job on a remote worker's behalf. Idempotent: a job
    /// that is already terminal is left untouched, so a stale worker's
    /// verdict can never overwrite a recorded completion.
    fn remote_quarantine(&self, id: &str, class: &str, message: &str) -> bool {
        let spec = {
            let st = lock(&self.inner);
            if st.crashed {
                return false;
            }
            match st.jobs.get(id) {
                Some(job) => {
                    if matches!(job.status, JobStatus::Completed | JobStatus::Quarantined { .. }) {
                        drop(st);
                        if let Some(hub) = &self.telemetry {
                            hub.count_host("campaign.remote.dup_retires", 1);
                        }
                        return true;
                    }
                    job.spec
                }
                None => return false,
            }
        };
        self.quarantine(id, &spec.label(), spec, class, message);
        true
    }

    /// Release a lease held by worker `w` (remote graceful drain). A
    /// release for a lease the worker no longer holds is a no-op.
    fn remote_release(&self, id: &str, w: u64) {
        let holds = matches!(
            lock(&self.inner).jobs.get(id).map(|j| &j.status),
            Some(JobStatus::Leased { worker, .. }) if *worker == w
        );
        if holds {
            self.release(id);
        }
    }

    /// Execute one leased job to a terminal state (or checkpoint +
    /// release on drain, or stop on crash).
    fn execute(&self, _w: u64, id: &str, spec: JobSpec, mut attempts: u32) {
        let label = spec.label();
        let digest = spec.digest();
        let wall0 = Instant::now();
        if let Some(hub) = &self.telemetry {
            hub.job_started(&label);
        }
        let workload = Workload::new(spec.app, spec.scale, spec.seed);
        let profiler = self.telemetry.as_ref().and_then(TelemetryHub::profiler_period);
        let cfg = spec.hw.config();
        let mut resume: Option<Checkpoint> = std::fs::read_to_string(self.ck_path(id))
            .ok()
            .and_then(|text| checkpoint::parse(&text).ok());
        if resume.is_some() {
            if let Some(hub) = &self.telemetry {
                hub.job_resumed(&label, attempts + 1);
            }
        }
        loop {
            let done = resume.as_ref().map_or(0, |c| c.insns_total);
            let budget = self.config.budget.map(|b| widened_budget(digest, b, attempts));
            let slice_end = match (self.config.chunk, budget) {
                (0, None) => None,
                (0, Some(b)) => Some(b),
                (c, None) => Some((done / c + 1) * c),
                (c, Some(b)) => Some(((done / c + 1) * c).min(b)),
            };
            let watchdog =
                slice_end.map(|e| Watchdog { max_cycles: None, max_instructions: Some(e) });
            let result = match (&resume, watchdog) {
                (Some(ck), Some(wd)) => {
                    workload.resume_instrumented(spec.variant, &cfg, ck, wd, profiler)
                }
                _ => workload.run_full_instrumented(
                    spec.variant,
                    &cfg,
                    None,
                    watchdog,
                    LockstepMode::Off,
                    profiler,
                ),
            };
            match result {
                Ok(run) => {
                    if run.validated {
                        self.complete(id, &label, spec, attempts, &run, wall0);
                    } else {
                        let what = format!(
                            "{label}: output mismatch: {}",
                            run.mismatches.first().map(String::as_str).unwrap_or("?")
                        );
                        self.quarantine(id, &label, spec, "validation", &what);
                    }
                    return;
                }
                Err(RunError::Timeout { checkpoint, .. }) => {
                    let hit_budget = budget.is_some_and(|b| checkpoint.insns_total >= b);
                    if hit_budget {
                        attempts += 1;
                        if attempts >= self.config.max_attempts {
                            let msg = format!(
                                "{label}: budget exhausted after {} attempts ({} insns)",
                                attempts, checkpoint.insns_total
                            );
                            self.quarantine(id, &label, spec, "timeout", &msg);
                            return;
                        }
                        if !self.retry(id, &label, attempts, "timeout", Some(&checkpoint)) {
                            return;
                        }
                        resume = Some(*checkpoint);
                    } else {
                        // Routine chunk boundary: persist and continue.
                        if !self.progress(id, &label, &checkpoint) {
                            return;
                        }
                        resume = Some(*checkpoint);
                        if self.draining.load(Ordering::SeqCst) {
                            self.release(id);
                            return;
                        }
                    }
                }
                Err(err @ (RunError::Trap(_) | RunError::Divergence { .. })) => {
                    attempts += 1;
                    let class = err.class();
                    let msg = format!("{label}: {err}");
                    if attempts >= self.config.max_attempts {
                        self.quarantine(id, &label, spec, class, &msg);
                        return;
                    }
                    // Restart from scratch: the checkpoint (if any) is
                    // tainted. Remove it *before* the retry record so a
                    // crash between the two never resumes stale state.
                    if !self.retry(id, &label, attempts, class, None) {
                        return;
                    }
                    resume = None;
                }
                Err(err) => {
                    let msg = format!("{label}: {err}");
                    self.quarantine(id, &label, spec, err.class(), &msg);
                    return;
                }
            }
        }
    }

    /// Persist a routine checkpoint and its `progress` record.
    fn progress(&self, id: &str, _label: &str, ck: &Checkpoint) -> bool {
        if lock(&self.inner).crashed {
            return false;
        }
        self.store_checkpoint(id, &checkpoint::render(ck))
            && self.append_progress(id, ck.insns_total)
    }

    /// Atomically persist a rendered checkpoint for `id`.
    fn store_checkpoint(&self, id: &str, text: &str) -> bool {
        let started = Instant::now();
        if write_atomic(self.ck_path(id), text).is_err() {
            return false;
        }
        if let Some(hub) = &self.telemetry {
            hub.phase_host("checkpoint", started.elapsed().as_nanos() as u64);
        }
        true
    }

    /// Append the `progress` record for `id`, bumping the lease
    /// heartbeat and the in-memory instruction high-water mark.
    fn append_progress(&self, id: &str, insns: u64) -> bool {
        let mut st = lock(&self.inner);
        let now = now_ms();
        if let Some(job) = st.jobs.get_mut(id) {
            job.insns = insns;
            if let JobStatus::Leased { hb, .. } = &mut job.status {
                *hb = now;
            }
        }
        let doc = Json::obj()
            .set("rec", Json::Str("progress".to_string()))
            .set("job", Json::Str(id.to_string()))
            .set("insns", Json::Num(insns as f64))
            .set("hb", Json::Num(now as f64));
        self.append(&mut st, &doc)
    }

    /// Record a failed attempt; persist (budget retry) or remove
    /// (scratch retry) the checkpoint first, so a crash between the
    /// two converges.
    fn retry(
        &self,
        id: &str,
        label: &str,
        attempt: u32,
        class: &str,
        ck: Option<&Checkpoint>,
    ) -> bool {
        if lock(&self.inner).crashed {
            return false;
        }
        match ck {
            Some(ck) => {
                if !self.store_checkpoint(id, &checkpoint::render(ck)) {
                    return false;
                }
            }
            None => {
                let _ = std::fs::remove_file(self.ck_path(id));
            }
        }
        self.record_retry(id, label, attempt, class)
    }

    /// Append the `retry` record for `id` (the checkpoint, if any, must
    /// already be persisted or removed by the caller).
    fn record_retry(&self, id: &str, label: &str, attempt: u32, class: &str) -> bool {
        let mut st = lock(&self.inner);
        if let Some(job) = st.jobs.get_mut(id) {
            job.attempts = attempt;
        }
        let doc = Json::obj()
            .set("rec", Json::Str("retry".to_string()))
            .set("job", Json::Str(id.to_string()))
            .set("attempt", Json::Num(f64::from(attempt)))
            .set("class", Json::Str(class.to_string()));
        if !self.append(&mut st, &doc) {
            return false;
        }
        drop(st);
        if let Some(hub) = &self.telemetry {
            hub.job_retried(label, attempt, class);
        }
        true
    }

    /// Release a lease on drain: the job stays resumable.
    fn release(&self, id: &str) {
        let mut st = lock(&self.inner);
        if let Some(job) = st.jobs.get_mut(id) {
            job.status = JobStatus::Pending;
        }
        let doc = Json::obj()
            .set("rec", Json::Str("released".to_string()))
            .set("job", Json::Str(id.to_string()));
        self.append(&mut st, &doc);
    }

    /// Finish a validated run: write the cache report (before the
    /// `completed` record — a crash between the two re-runs the job and
    /// rewrites identical bytes), mark completed, drop the checkpoint.
    fn complete(
        &self,
        id: &str,
        label: &str,
        spec: JobSpec,
        attempts: u32,
        run: &crate::apps::AppRun,
        wall0: Instant,
    ) {
        if lock(&self.inner).crashed {
            return;
        }
        let report = job_report(label, spec, run);
        let started = Instant::now();
        if write_atomic(self.cache_path(id), &report.render_json()).is_err() {
            return;
        }
        if let Some(hub) = &self.telemetry {
            hub.phase_host("cache", started.elapsed().as_nanos() as u64);
        }
        let mut st = lock(&self.inner);
        if matches!(st.jobs.get(id).map(|j| &j.status), Some(JobStatus::Completed)) {
            return;
        }
        if let Some(job) = st.jobs.get_mut(id) {
            job.status = JobStatus::Completed;
            job.insns = run.counters.instructions;
        }
        let doc = Json::obj()
            .set("rec", Json::Str("completed".to_string()))
            .set("job", Json::Str(id.to_string()));
        if !self.append(&mut st, &doc) {
            return;
        }
        drop(st);
        let _ = std::fs::remove_file(self.ck_path(id));
        if let Some(hub) = &self.telemetry {
            hub.job_retired(
                JobSpan {
                    job: label.to_string(),
                    wall_ms: wall0.elapsed().as_secs_f64() * 1e3,
                    instructions: run.counters.instructions,
                    attempts: attempts + 1,
                    phases: run.phases,
                },
                run.guest_profile.as_deref(),
            );
        }
    }

    /// Quarantine a job: cache its degraded report (so resubmission is
    /// still a cache hit), record, drop the checkpoint.
    fn quarantine(&self, id: &str, label: &str, spec: JobSpec, class: &str, message: &str) {
        if lock(&self.inner).crashed {
            return;
        }
        let mut report = job_report_shell(label, spec);
        report.degrade_classified(class, message);
        let started = Instant::now();
        if write_atomic(self.cache_path(id), &report.render_json()).is_err() {
            return;
        }
        if let Some(hub) = &self.telemetry {
            hub.phase_host("cache", started.elapsed().as_nanos() as u64);
        }
        let mut st = lock(&self.inner);
        if let Some(job) = st.jobs.get_mut(id) {
            job.status =
                JobStatus::Quarantined { class: class.to_string(), message: message.to_string() };
        }
        let doc = Json::obj()
            .set("rec", Json::Str("quarantined".to_string()))
            .set("job", Json::Str(id.to_string()))
            .set("class", Json::Str(class.to_string()))
            .set("message", Json::Str(message.to_string()));
        if !self.append(&mut st, &doc) {
            return;
        }
        drop(st);
        let _ = std::fs::remove_file(self.ck_path(id));
        if let Some(hub) = &self.telemetry {
            hub.job_quarantined(label, class);
        }
    }

    /// Merge every terminal job into one deterministic report, in
    /// submission order. Contains no wall-clock, lease, or scheduling
    /// data — its bytes depend only on the submitted set, which is what
    /// the kill-and-restart byte-identity contract needs.
    ///
    /// # Errors
    ///
    /// Returns a message when a completed job's cache file is missing
    /// or unparseable.
    pub fn merged_report(&self) -> Result<Report, String> {
        let st = lock(&self.inner);
        let mut merged = Report::new("campaign");
        let mut completed = 0u64;
        let mut quarantined = 0u64;
        for id in &st.order {
            match st.jobs.get(id).map(|j| &j.status) {
                Some(JobStatus::Completed) => completed += 1,
                Some(JobStatus::Quarantined { .. }) => quarantined += 1,
                _ => {}
            }
        }
        merged.push("campaign.jobs", st.order.len() as f64, Direction::Neutral);
        merged.push("campaign.completed", completed as f64, Direction::Higher);
        merged.push("campaign.quarantined", quarantined as f64, Direction::Lower);
        for id in &st.order {
            let Some(job) = st.jobs.get(id) else { continue };
            let label = job.spec.label();
            match &job.status {
                JobStatus::Completed => {
                    let path = self.cache_path(id);
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    let report = Report::parse(&text)
                        .map_err(|e| format!("parse {}: {e}", path.display()))?;
                    for metric in &report.metrics {
                        merged.push(
                            format!("{label}.{}", metric.name),
                            metric.value,
                            metric.direction,
                        );
                    }
                }
                JobStatus::Quarantined { class, message } => {
                    merged.degrade_classified(class.clone(), format!("{label}: {message}"));
                }
                _ => {
                    merged.degrade_classified("incomplete", format!("{label}: not terminal"));
                }
            }
        }
        Ok(merged)
    }
}

/// The seeded exponential backoff budget for attempt `retries` of the
/// job with content address `digest`. Recomputed from the attempt index
/// each time (never carried across restarts), so an interrupted retry
/// schedule replays identically.
fn widened_budget(digest: u64, base: u64, retries: u32) -> u64 {
    let mut rng = XorShift64::new(digest ^ 0x5EED_F00D_BA5E_BA11);
    let mut b = base.max(1);
    for _ in 0..retries {
        b = b + b / 2 + rng.below(b / 4 + 1);
    }
    b
}

/// A completed job's cache report: deterministic counters only.
fn job_report(label: &str, spec: JobSpec, run: &crate::apps::AppRun) -> Report {
    let mut report = job_report_shell(label, spec);
    let c = &run.counters;
    report.push("instructions", c.instructions as f64, Direction::Neutral);
    report.push("cycles", c.cycles as f64, Direction::Lower);
    report.push("ipc", c.ipc(), Direction::Higher);
    report.push("mispredict_rate", c.branches.misprediction_rate(), Direction::Lower);
    report
}

/// Archived journal segments under `dir/segments/`, sorted by segment
/// number (the monotonically numbered file names compaction leaves
/// behind). Concatenating every archived segment in order with the live
/// `journal.jsonl` replays the campaign's full history end-to-end.
pub fn archived_segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir.join("segments"))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// The context-only shell shared by completed and quarantined reports.
fn job_report_shell(label: &str, spec: JobSpec) -> Report {
    Report::new(label)
        .context("app", app_slug(spec.app))
        .context("variant", spec.variant.slug())
        .context("hw", spec.hw.slug())
        .context("scale", scale_slug(spec.scale))
        .context("seed", spec.seed)
        .context("job", spec.id())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            app: App::Fasta,
            variant: Variant::Baseline,
            hw: Hw::Stock,
            scale: Scale::Test,
            seed: 42,
        }
    }

    #[test]
    fn digest_ignores_field_order() {
        let fields = spec().canonical_fields();
        let mut reversed = fields.clone();
        reversed.reverse();
        assert_eq!(digest_fields(&fields), digest_fields(&reversed));
        let mut tweaked = fields.clone();
        tweaked[0].1 = "hmmer".to_string();
        assert_ne!(digest_fields(&fields), digest_fields(&tweaked));
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec {
            app: App::Hmmer,
            variant: Variant::HandMax,
            hw: Hw::BtacFxus(4),
            scale: Scale::ClassC,
            seed: u64::MAX,
        };
        let doc = spec.to_json();
        assert_eq!(JobSpec::from_json(&doc).unwrap(), spec);
    }

    #[test]
    fn replay_reconstructs_lifecycle() {
        let spec = spec();
        let id = spec.id();
        let header = Json::obj()
            .set("rec", Json::Str("header".into()))
            .set("schema", Json::Str(JOURNAL_SCHEMA.into()))
            .set("segment", Json::Num(0.0));
        let sub = Json::obj()
            .set("rec", Json::Str("submitted".into()))
            .set("job", Json::Str(id.clone()))
            .set("spec", spec.to_json());
        let lease = Json::obj()
            .set("rec", Json::Str("lease".into()))
            .set("job", Json::Str(id.clone()))
            .set("worker", Json::Num(3.0))
            .set("hb", Json::Num(7.0));
        let progress = Json::obj()
            .set("rec", Json::Str("progress".into()))
            .set("job", Json::Str(id.clone()))
            .set("insns", Json::Num(20000.0))
            .set("hb", Json::Num(9.0));
        let done =
            Json::obj().set("rec", Json::Str("completed".into())).set("job", Json::Str(id.clone()));
        let text = [&header, &sub, &lease, &progress, &done]
            .iter()
            .map(|d| d.render_compact())
            .collect::<Vec<_>>()
            .join("\n");

        let mid = replay_journal(&text[..text.rfind('\n').unwrap() + 1]).unwrap();
        let job = &mid.jobs[&id];
        assert_eq!(job.status, JobStatus::Leased { worker: 3, hb: 9 });
        assert_eq!(job.insns, 20000);

        let full = replay_journal(&text).unwrap();
        assert_eq!(full.jobs[&id].status, JobStatus::Completed);
        assert_eq!(full.order, vec![id.clone()]);
        assert!(!full.truncated_tail);

        // Torn final line: dropped, flagged, prefix state preserved.
        let torn = format!("{}\n{}", text, &done.render_compact()[..10]);
        let replay = replay_journal(&torn).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.jobs[&id].status, JobStatus::Completed);

        // Torn line anywhere else is corruption.
        let corrupt =
            format!("{}\n{}\n{}", header.render_compact(), "{oops", done.render_compact());
        assert!(replay_journal(&corrupt).is_err());
    }

    #[test]
    fn replay_rejects_wrong_schema() {
        let text = r#"{"rec":"header","schema":"bioarch-journal/v9","segment":0}"#;
        let err = replay_journal(text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(err.contains("bioarch-journal/v1"), "{err}");
    }

    #[test]
    fn widened_budget_is_deterministic_and_monotone() {
        let d = spec().digest();
        assert_eq!(widened_budget(d, 10_000, 0), 10_000);
        let one = widened_budget(d, 10_000, 1);
        let two = widened_budget(d, 10_000, 2);
        assert!(one >= 15_000, "{one}");
        assert!(two > one, "{two} vs {one}");
        assert_eq!(one, widened_budget(d, 10_000, 1));
    }

    #[test]
    fn submit_dedupes_and_journal_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("bioarch-campaign-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::open(CampaignConfig::new(&dir)).unwrap();
        assert_eq!(campaign.submit(spec()).unwrap(), SubmitOutcome::Accepted);
        assert_eq!(campaign.submit(spec()).unwrap(), SubmitOutcome::Duplicate);
        assert_eq!(campaign.job_ids().len(), 1);
        drop(campaign);
        let reopened = Campaign::open(CampaignConfig::new(&dir)).unwrap();
        assert_eq!(reopened.status(&spec().id()), Some(JobStatus::Pending));
        assert_eq!(reopened.submit(spec()).unwrap(), SubmitOutcome::Duplicate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_state() {
        let dir =
            std::env::temp_dir().join(format!("bioarch-campaign-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = CampaignConfig::new(&dir);
        config.compact_threshold = 3;
        let campaign = Campaign::open(config).unwrap();
        for seed in 0..4u64 {
            let s = JobSpec { seed, ..spec() };
            assert_eq!(campaign.submit(s).unwrap(), SubmitOutcome::Accepted);
        }
        let order = campaign.job_ids();
        drop(campaign);
        let text = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let replay = replay_journal(&text).unwrap();
        assert!(replay.segment >= 1, "compaction should bump the segment");
        assert_eq!(replay.order, order, "compaction must preserve submission order");

        // Superseded journals are archived, not deleted: one
        // monotonically numbered segment file per compaction, each a
        // valid journal whose replay is a prefix of the final state.
        let segments = archived_segments(&dir);
        assert_eq!(segments.len() as u64, replay.segment, "one archive per compaction");
        for (i, seg) in segments.iter().enumerate() {
            assert_eq!(
                seg.file_name().unwrap().to_str().unwrap(),
                format!("{:06}.jsonl", i),
                "segment names are monotonically numbered"
            );
            let seg_text = std::fs::read_to_string(seg).unwrap();
            let seg_replay = replay_journal(&seg_text).unwrap();
            assert_eq!(seg_replay.segment, i as u64);
            for id in &seg_replay.order {
                assert!(replay.jobs.contains_key(id), "archived job survives compaction");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_claim_groups_compatible_jobs() {
        let dir =
            std::env::temp_dir().join(format!("bioarch-campaign-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = CampaignConfig::new(&dir);
        config.lanes = 3;
        let campaign = Campaign::open(config).unwrap();
        // Interleave two compatibility classes: seeds of the base spec
        // and one job on different hardware in the middle.
        for seed in 0..2u64 {
            campaign.submit(JobSpec { seed, ..spec() }).unwrap();
        }
        campaign.submit(JobSpec { hw: Hw::Btac, ..spec() }).unwrap();
        for seed in 2..4u64 {
            campaign.submit(JobSpec { seed, ..spec() }).unwrap();
        }

        // First batch: the three compatible seeds, skipping the
        // incompatible middle job; submission order preserved.
        let BatchClaim::Jobs(batch) = campaign.claim_batch_for(7, 3) else {
            panic!("expected jobs");
        };
        let seeds: Vec<u64> = batch.iter().map(|j| j.spec.seed).collect();
        assert_eq!(seeds, vec![0, 1, 2]);
        assert!(batch.iter().all(|j| lane_compatible(j.spec, spec())));

        // Next batch: affinity keeps the worker on the same class while
        // one remains, then the other class is picked up.
        let BatchClaim::Jobs(batch2) = campaign.claim_batch_for(7, 3) else {
            panic!("expected jobs");
        };
        assert_eq!(batch2.len(), 1);
        assert_eq!(batch2[0].spec.seed, 3);
        let BatchClaim::Jobs(batch3) = campaign.claim_batch_for(7, 3) else {
            panic!("expected jobs");
        };
        assert_eq!(batch3.len(), 1);
        assert_eq!(batch3[0].spec.hw, Hw::Btac);
        // Everything is leased now.
        assert!(matches!(campaign.claim_batch_for(7, 3), BatchClaim::Busy));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_claims_follow_affinity_when_lanes_enabled() {
        let dir =
            std::env::temp_dir().join(format!("bioarch-campaign-affinity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = CampaignConfig::new(&dir);
        config.lanes = 2;
        let campaign = Campaign::open(config).unwrap();
        campaign.submit(JobSpec { seed: 0, ..spec() }).unwrap();
        campaign.submit(JobSpec { hw: Hw::Btac, ..spec() }).unwrap();
        campaign.submit(JobSpec { seed: 1, ..spec() }).unwrap();

        // A remote-style worker claiming one job at a time streams the
        // compatible pair back to back, deferring the odd one out.
        let Claim::Job(first) = campaign.claim_for(1) else { panic!("expected job") };
        assert_eq!(first.spec.seed, 0);
        assert_eq!(first.spec.hw, spec().hw);
        let Claim::Job(second) = campaign.claim_for(1) else { panic!("expected job") };
        assert_eq!(second.spec.seed, 1, "affinity should skip the incompatible job");
        let Claim::Job(third) = campaign.claim_for(1) else { panic!("expected job") };
        assert_eq!(third.spec.hw, Hw::Btac);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
