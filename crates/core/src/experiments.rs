//! The paper's experiments: one runner per table and figure.
//!
//! All experiments hang off a [`Study`], which caches application runs so
//! that e.g. Figure 3 and Table II (which analyse the same binaries) pay
//! for each simulation once.
//!
//! ## Metrics
//!
//! The paper reports IPC improvements; its binaries keep nearly identical
//! instruction counts across variants, so IPC improvement and speedup
//! coincide there. Our compiled variants shrink the instruction stream
//! when branches are deleted, so raw IPC understates the benefit. Where an
//! experiment compares *different binaries* we therefore report
//! **work-normalized IPC**: `baseline_instructions / cycles`, which equals
//! plain IPC for the baseline binary and speedup × baseline-IPC otherwise.
//! Plain IPC is also retained in every result for reference.

use crate::apps::{App, AppRun, RunError, Scale, Variant, Workload};
use crate::report::{frac, pct, Direction, Report, Table};
use crate::telemetry::{JobSpan, TelemetryHub};
use power5_sim::config::BtacConfig;
use power5_sim::counters::IntervalSample;
use power5_sim::CoreConfig;
use power5_sim::Watchdog;
use power5_sim::{Checkpoint, LockstepMode, XorShift64};
use std::collections::HashMap;
use std::time::Instant;

/// Attempts the suite supervisor makes per simulation before
/// quarantining the experiment into a degraded report.
const MAX_ATTEMPTS: u32 = 3;

/// Deterministic per-job seed for the supervisor's backoff generator, so
/// the serial and parallel paths retry with identical widened budgets.
fn job_seed(study_seed: u64, app: App, variant: Variant, hw: Hw) -> u64 {
    let mut h = study_seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in format!("{app:?}/{variant:?}/{hw:?}").bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Human-readable job label for telemetry events and per-job spans.
/// Matches the `job_seed` identity (plus the sampling interval for
/// Figure-2 style runs, which are cached — and supervised — separately).
fn job_label(app: App, variant: Variant, hw: Hw, interval: Option<u64>) -> String {
    match interval {
        Some(i) => format!("{app:?}/{variant:?}/{hw:?}@{i}"),
        None => format!("{app:?}/{variant:?}/{hw:?}"),
    }
}

/// Seeded deterministic backoff: the resource that ran out is the budget,
/// not wall-clock time, so "backing off" means widening each budget by
/// 50% plus a seeded jitter of up to 25% before the next attempt.
fn widen_watchdog(w: Watchdog, rng: &mut XorShift64) -> Watchdog {
    let mut widen = |b: Option<u64>| b.map(|v| v + v / 2 + rng.below(v / 4 + 1));
    Watchdog { max_cycles: widen(w.max_cycles), max_instructions: widen(w.max_instructions) }
}

/// One supervised simulation: run, and on a retryable failure (trap,
/// watchdog timeout, lockstep divergence) retry up to [`MAX_ATTEMPTS`]
/// times. A timed-out plain run resumes from the checkpoint carried by
/// [`RunError::Timeout`] under a widened budget instead of restarting;
/// interval-sampling and lockstep runs restart from scratch (a resumed
/// machine would lose its sample series / checking window). Everything
/// here is deterministic, so the serial path and the parallel prefetch
/// workers converge on identical results and identical final errors.
#[allow(clippy::too_many_arguments)]
fn supervised_run(
    workload: &Workload,
    variant: Variant,
    config: &CoreConfig,
    interval: Option<u64>,
    watchdog: Option<Watchdog>,
    lockstep: LockstepMode,
    seed: u64,
    telemetry: Option<&TelemetryHub>,
    job: &str,
) -> Result<AppRun, RunError> {
    let wall_started = Instant::now();
    if let Some(hub) = telemetry {
        hub.job_started(job);
    }
    let profiler = telemetry.and_then(TelemetryHub::profiler_period);
    let mut rng = XorShift64::new(seed);
    let mut budget = watchdog;
    let mut resume: Option<Box<Checkpoint>> = None;
    let mut last_err: Option<RunError> = None;
    let mut attempts = 0u32;
    for _attempt in 0..MAX_ATTEMPTS {
        attempts += 1;
        let can_resume = interval.is_none() && lockstep == LockstepMode::Off;
        let result = match (&resume, budget) {
            (Some(ck), Some(w)) if can_resume => {
                if let Some(hub) = telemetry {
                    hub.job_resumed(job, attempts);
                }
                workload.resume_instrumented(variant, config, ck, w, profiler)
            }
            _ => workload
                .run_full_instrumented(variant, config, interval, budget, lockstep, profiler),
        };
        match result {
            Ok(run) => {
                if let Some(hub) = telemetry {
                    hub.job_retired(
                        JobSpan {
                            job: job.to_string(),
                            wall_ms: wall_started.elapsed().as_secs_f64() * 1e3,
                            instructions: run.counters.instructions,
                            attempts,
                            phases: run.phases,
                        },
                        run.guest_profile.as_deref(),
                    );
                }
                return Ok(run);
            }
            Err(err) => {
                match &err {
                    RunError::Timeout { checkpoint, .. } => {
                        resume = Some(checkpoint.clone());
                        budget = budget.map(|w| widen_watchdog(w, &mut rng));
                    }
                    RunError::Trap(_) | RunError::Divergence { .. } => {
                        resume = None;
                    }
                    // Build, layout, budget, and validation failures are
                    // deterministic dead ends — no point retrying.
                    _ => {
                        if let Some(hub) = telemetry {
                            hub.job_quarantined(job, err.class());
                        }
                        return Err(err);
                    }
                }
                if let Some(hub) = telemetry {
                    hub.job_retried(job, attempts, err.class());
                }
                last_err = Some(err);
            }
        }
    }
    let err = last_err.expect("supervisor made at least one attempt");
    if let Some(hub) = telemetry {
        hub.job_quarantined(job, err.class());
    }
    Err(err)
}

/// Hardware configurations the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hw {
    /// Stock POWER5 (2 FXUs, no BTAC).
    Stock,
    /// Stock plus the 8-entry BTAC.
    Btac,
    /// Stock with `n` FXUs.
    Fxus(usize),
    /// BTAC plus `n` FXUs (the paper's fully enhanced core).
    BtacFxus(usize),
}

impl Hw {
    /// Materialize the configuration.
    pub fn config(self) -> CoreConfig {
        match self {
            Hw::Stock => CoreConfig::power5(),
            Hw::Btac => CoreConfig::power5().with_btac(BtacConfig::default()),
            Hw::Fxus(n) => CoreConfig::power5().with_fxus(n),
            Hw::BtacFxus(n) => CoreConfig::power5().with_btac(BtacConfig::default()).with_fxus(n),
        }
    }

    /// Machine-readable slug, used in campaign content addresses and
    /// metric names. Round-trips through [`Hw::from_slug`].
    pub fn slug(self) -> String {
        match self {
            Hw::Stock => "stock".to_string(),
            Hw::Btac => "btac".to_string(),
            Hw::Fxus(n) => format!("fxus{n}"),
            Hw::BtacFxus(n) => format!("btac-fxus{n}"),
        }
    }

    /// Parse a [`Hw::slug`] back; `None` for anything else.
    pub fn from_slug(s: &str) -> Option<Hw> {
        match s {
            "stock" => Some(Hw::Stock),
            "btac" => Some(Hw::Btac),
            _ => {
                if let Some(n) = s.strip_prefix("btac-fxus") {
                    n.parse().ok().map(Hw::BtacFxus)
                } else if let Some(n) = s.strip_prefix("fxus") {
                    n.parse().ok().map(Hw::Fxus)
                } else {
                    None
                }
            }
        }
    }
}

/// One unit of simulation work the parallel runner can fan out: a plain
/// cached run, or the Figure-2 interval-sampling run (cached separately
/// because its counters carry the interval series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    Plain(App, Variant, Hw),
    Interval(App, Variant, Hw, u64),
}

/// A study: workload set plus a cache of completed runs.
pub struct Study {
    scale: Scale,
    seed: u64,
    workloads: Vec<Workload>,
    cache: HashMap<(App, Variant, Hw), AppRun>,
    interval_cache: HashMap<(App, Variant, Hw, u64), AppRun>,
    watchdog: Option<Watchdog>,
    lockstep: LockstepMode,
    threads_override: Option<usize>,
    lanes_override: Option<usize>,
    telemetry: Option<TelemetryHub>,
}

impl Study {
    /// Prepare workloads for all four applications.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let workloads = App::all().into_iter().map(|app| Workload::new(app, scale, seed)).collect();
        Study {
            scale,
            seed,
            workloads,
            cache: HashMap::new(),
            interval_cache: HashMap::new(),
            watchdog: None,
            lockstep: LockstepMode::Off,
            threads_override: None,
            lanes_override: None,
            telemetry: None,
        }
    }

    /// Attach a telemetry hub: every supervised simulation from now on
    /// emits lifecycle events, host phase spans, and (when the hub's
    /// profiler period is non-zero) a guest sampling profile. Detach
    /// with [`Study::take_telemetry`] to harvest the snapshot.
    /// Simulation *results* are unaffected — reports built with
    /// telemetry attached are byte-identical to reports built without.
    pub fn set_telemetry(&mut self, hub: TelemetryHub) {
        self.telemetry = Some(hub);
    }

    /// Detach the telemetry hub (if any) so the caller can
    /// [`TelemetryHub::finish`] it into a snapshot.
    pub fn take_telemetry(&mut self) -> Option<TelemetryHub> {
        self.telemetry.take()
    }

    /// Pin the worker-thread count for this study, overriding the
    /// `BIOARCH_THREADS` environment variable. `1` forces the serial
    /// path; results are byte-identical either way.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads_override = Some(threads.max(1));
    }

    /// Worker threads the experiment runners fan simulations across: the
    /// [`Study::set_threads`] override, else `BIOARCH_THREADS`, else the
    /// host's available parallelism.
    pub fn threads(&self) -> usize {
        if let Some(n) = self.threads_override {
            return n;
        }
        if let Some(n) =
            std::env::var("BIOARCH_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Pin the lane-batch width for the parallel prefetcher, overriding
    /// the `BIOARCH_LANES` environment variable. Above 1, each worker
    /// thread claims a contiguous chunk of up to this many *compatible*
    /// jobs (grouped by application, so consecutive claims share one
    /// code image and workload) per dispatch instead of one job at a
    /// time. Results are merged in fixed job order either way, so
    /// reports are byte-identical for every width.
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes_override = Some(lanes.max(1));
    }

    /// Lane-batch width the parallel prefetcher claims per dispatch:
    /// the [`Study::set_lanes`] override, else `BIOARCH_LANES`, else 1
    /// (per-job claiming, the historical behavior).
    pub fn lanes(&self) -> usize {
        if let Some(n) = self.lanes_override {
            return n;
        }
        std::env::var("BIOARCH_LANES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map_or(1, |n| n.max(1))
    }

    /// Install cycle/instruction budgets for every run in the study.
    ///
    /// A kernel that exceeds a budget returns [`RunError::Timeout`] with
    /// its partial counters instead of running forever; under
    /// [`Study::run_suite`] that experiment's report comes back marked
    /// `degraded` while the rest of the suite completes.
    pub fn set_watchdog(&mut self, watchdog: Watchdog) {
        self.watchdog = Some(watchdog);
    }

    /// Enable golden-model lockstep checking for every run in the study.
    /// A divergence fails the experiment with
    /// [`RunError::Divergence`]; under [`Study::run_suite`] the
    /// supervisor retries and then quarantines it as a degraded report
    /// with `failure_class: "divergence"`.
    pub fn set_lockstep(&mut self, mode: LockstepMode) {
        self.lockstep = mode;
    }

    /// The study's input scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The study's workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total target instructions retired across every cached run so far —
    /// divide by wall-clock for an honest host-MIPS figure.
    pub fn simulated_instructions(&self) -> u64 {
        self.cache
            .values()
            .chain(self.interval_cache.values())
            .map(|r| r.counters.instructions)
            .sum()
    }

    fn workload(&self, app: App) -> &Workload {
        self.workloads.iter().find(|w| w.app() == app).expect("all apps present")
    }

    /// Run (or fetch from cache) one `(app, variant, hw)` combination.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`]; also fails if the simulated outputs did
    /// not validate against the golden models (an experiment must never
    /// report numbers from an incorrect simulation).
    pub fn run(&mut self, app: App, variant: Variant, hw: Hw) -> Result<AppRun, RunError> {
        if let Some(r) = self.cache.get(&(app, variant, hw)) {
            return Ok(r.clone());
        }
        let label = job_label(app, variant, hw, None);
        let run = supervised_run(
            self.workload(app),
            variant,
            &hw.config(),
            None,
            self.watchdog,
            self.lockstep,
            job_seed(self.seed, app, variant, hw),
            self.telemetry.as_ref(),
            &label,
        )?;
        if !run.validated {
            return Err(RunError::Validation {
                what: format!(
                    "{app} {variant} on {hw:?} produced wrong results: {:?}",
                    run.mismatches
                ),
            });
        }
        let merge_started = Instant::now();
        self.cache.insert((app, variant, hw), run.clone());
        if let Some(hub) = &self.telemetry {
            hub.phase_merge(&label, merge_started.elapsed().as_nanos() as u64);
        }
        Ok(run)
    }

    /// Run (or fetch from the interval cache) the Figure-2 style run of
    /// one combination with interval sampling enabled.
    fn run_interval(
        &mut self,
        app: App,
        variant: Variant,
        hw: Hw,
        interval: u64,
    ) -> Result<AppRun, RunError> {
        if let Some(r) = self.interval_cache.get(&(app, variant, hw, interval)) {
            return Ok(r.clone());
        }
        let label = job_label(app, variant, hw, Some(interval));
        let run = supervised_run(
            self.workload(app),
            variant,
            &hw.config(),
            Some(interval),
            self.watchdog,
            self.lockstep,
            job_seed(self.seed, app, variant, hw),
            self.telemetry.as_ref(),
            &label,
        )?;
        if !run.validated {
            return Err(RunError::Validation {
                what: format!("Fig.2 Clustalw run mismatched: {:?}", run.mismatches),
            });
        }
        let merge_started = Instant::now();
        self.interval_cache.insert((app, variant, hw, interval), run.clone());
        if let Some(hub) = &self.telemetry {
            hub.phase_merge(&label, merge_started.elapsed().as_nanos() as u64);
        }
        Ok(run)
    }

    /// Simulate the not-yet-cached jobs of `jobs` across the study's
    /// worker threads and merge the results into the run caches.
    ///
    /// Determinism: every job is an independent, deterministic
    /// simulation, and the merge order is the (fixed) job order, so the
    /// caches end up exactly as serial execution would leave them —
    /// reports built from them are byte-identical regardless of thread
    /// count. Only validated successes are cached; a failing job is left
    /// uncached so the experiment that needs it reproduces the identical
    /// error (message and all) on its own serial path.
    fn prefetch(&mut self, jobs: &[Job]) {
        let mut todo: Vec<Job> = Vec::new();
        for &job in jobs {
            let missing = match job {
                Job::Plain(a, v, h) => !self.cache.contains_key(&(a, v, h)),
                Job::Interval(a, v, h, i) => !self.interval_cache.contains_key(&(a, v, h, i)),
            };
            if missing && !todo.contains(&job) {
                todo.push(job);
            }
        }
        let threads = self.threads().min(todo.len());
        if threads <= 1 {
            return; // serial path: experiments run on demand, as always
        }
        let watchdog = self.watchdog;
        let lockstep = self.lockstep;
        let seed = self.seed;
        let telemetry = self.telemetry.as_ref();
        let workloads = &self.workloads;
        let worker_of =
            |app: App| workloads.iter().find(|w| w.app() == app).expect("all apps present");
        // Lane batching (DESIGN §18): with a lane width above 1, workers
        // claim contiguous chunks of a claim order grouped by
        // application, so each dispatch retires a batch of compatible
        // jobs sharing one code image and workload. Results still land
        // in per-job slots indexed by the original `todo` order, so the
        // merge below is untouched and reports stay byte-identical.
        let lanes = self.lanes().max(1);
        let mut order: Vec<usize> = (0..todo.len()).collect();
        if lanes > 1 {
            order.sort_by_key(|&i| match todo[i] {
                Job::Plain(a, ..) | Job::Interval(a, ..) => a as u8,
            });
        }
        let order = &order;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: std::sync::Mutex<Vec<Option<AppRun>>> =
            std::sync::Mutex::new(vec![None; todo.len()]);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let base = next.fetch_add(lanes, std::sync::atomic::Ordering::Relaxed);
                    if base >= order.len() {
                        break;
                    }
                    for &i in &order[base..(base + lanes).min(order.len())] {
                        let job = todo[i];
                        // The same supervised path as the serial
                        // `run`/`run_interval`; errors are dropped here
                        // (see above).
                        let run = match job {
                            Job::Plain(app, v, hw) => supervised_run(
                                worker_of(app),
                                v,
                                &hw.config(),
                                None,
                                watchdog,
                                lockstep,
                                job_seed(seed, app, v, hw),
                                telemetry,
                                &job_label(app, v, hw, None),
                            ),
                            Job::Interval(app, v, hw, interval) => supervised_run(
                                worker_of(app),
                                v,
                                &hw.config(),
                                Some(interval),
                                watchdog,
                                lockstep,
                                job_seed(seed, app, v, hw),
                                telemetry,
                                &job_label(app, v, hw, Some(interval)),
                            ),
                        };
                        if let Ok(run) = run {
                            if run.validated {
                                if let Ok(mut slots) = results.lock() {
                                    slots[i] = Some(run);
                                }
                            }
                        }
                    }
                });
            }
        });
        let slots = match results.into_inner() {
            Ok(slots) => slots,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (job, slot) in todo.into_iter().zip(slots) {
            if let Some(run) = slot {
                let merge_started = Instant::now();
                let label = match job {
                    Job::Plain(a, v, h) => {
                        self.cache.insert((a, v, h), run);
                        job_label(a, v, h, None)
                    }
                    Job::Interval(a, v, h, i) => {
                        self.interval_cache.insert((a, v, h, i), run);
                        job_label(a, v, h, Some(i))
                    }
                };
                if let Some(hub) = &self.telemetry {
                    hub.phase_merge(&label, merge_started.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    // The unique (app, variant, hw) combinations each experiment needs,
    // fed to `prefetch` so a multi-threaded study simulates them in
    // parallel before the (serial, cache-hitting) report construction.

    fn plan_baselines() -> Vec<Job> {
        App::all().into_iter().map(|a| Job::Plain(a, Variant::Baseline, Hw::Stock)).collect()
    }

    fn plan_fig2(scale: Scale) -> Vec<Job> {
        let interval = match scale {
            Scale::Test => 20_000,
            Scale::ClassC => 100_000,
        };
        vec![Job::Interval(App::Clustalw, Variant::Baseline, Hw::Stock, interval)]
    }

    fn plan_fig3() -> Vec<Job> {
        App::all()
            .into_iter()
            .flat_map(|a| Variant::all().into_iter().map(move |v| Job::Plain(a, v, Hw::Stock)))
            .collect()
    }

    fn plan_table2() -> Vec<Job> {
        App::all()
            .into_iter()
            .flat_map(|a| {
                [
                    Variant::HandIsel,
                    Variant::CompilerIsel,
                    Variant::HandMax,
                    Variant::CompilerMax,
                    Variant::Baseline,
                ]
                .into_iter()
                .map(move |v| Job::Plain(a, v, Hw::Stock))
            })
            .collect()
    }

    fn plan_fig4() -> Vec<Job> {
        App::all()
            .into_iter()
            .flat_map(|a| {
                [Variant::Baseline, Variant::Combination].into_iter().flat_map(move |v| {
                    [Hw::Stock, Hw::Btac].into_iter().map(move |h| Job::Plain(a, v, h))
                })
            })
            .collect()
    }

    fn plan_fig5() -> Vec<Job> {
        App::all()
            .into_iter()
            .flat_map(|a| {
                [
                    Job::Plain(a, Variant::Baseline, Hw::Stock),
                    Job::Plain(a, Variant::Baseline, Hw::Fxus(4)),
                    Job::Plain(a, Variant::Combination, Hw::Stock),
                    Job::Plain(a, Variant::Combination, Hw::Fxus(3)),
                    Job::Plain(a, Variant::Combination, Hw::Fxus(4)),
                ]
            })
            .collect()
    }

    fn plan_fig6() -> Vec<Job> {
        App::all()
            .into_iter()
            .flat_map(|a| {
                [
                    Job::Plain(a, Variant::Baseline, Hw::Stock),
                    Job::Plain(a, Variant::Combination, Hw::Stock),
                    Job::Plain(a, Variant::Baseline, Hw::Btac),
                    Job::Plain(a, Variant::Baseline, Hw::Fxus(4)),
                    Job::Plain(a, Variant::Combination, Hw::BtacFxus(4)),
                ]
            })
            .collect()
    }

    fn baseline(&mut self, app: App) -> Result<AppRun, RunError> {
        self.run(app, Variant::Baseline, Hw::Stock)
    }

    /// Work-normalized IPC of `run` relative to `base` (see module docs).
    fn norm_ipc(base: &AppRun, run: &AppRun) -> f64 {
        base.counters.instructions as f64 / run.counters.cycles as f64
    }

    // ------------------------------------------------------------------
    // Table I
    // ------------------------------------------------------------------

    /// Table I: baseline hardware-counter data per application.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn table1(&mut self) -> Result<Table1, RunError> {
        self.prefetch(&Self::plan_baselines());
        let mut rows = Vec::new();
        for app in App::all() {
            let run = self.baseline(app)?;
            let c = &run.counters;
            rows.push(Table1Row {
                app,
                ipc: c.ipc(),
                l1d_miss_rate: c.l1d.miss_rate(),
                direction_fraction: c.branches.direction_fraction(),
                fxu_stall_fraction: c.fxu_stall_fraction(),
                mispredict_rate: c.branches.misprediction_rate(),
            });
        }
        Ok(Table1 { rows })
    }

    // ------------------------------------------------------------------
    // Figure 1
    // ------------------------------------------------------------------

    /// Figure 1: function-wise cycle breakdown per application.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig1(&mut self) -> Result<Fig1, RunError> {
        self.prefetch(&Self::plan_baselines());
        let mut apps = Vec::new();
        for app in App::all() {
            let run = self.baseline(app)?;
            let total: u64 = run.profile.iter().map(|(_, _, c)| *c).sum();
            let mut functions: Vec<(String, f64)> = run
                .profile
                .iter()
                .filter(|(_, i, _)| *i > 0)
                .map(|(name, _, cycles)| (name.clone(), *cycles as f64 / total.max(1) as f64))
                .collect();
            functions.sort_by(|a, b| b.1.total_cmp(&a.1));
            apps.push(Fig1App { app, functions });
        }
        Ok(Fig1 { apps })
    }

    // ------------------------------------------------------------------
    // Figure 2
    // ------------------------------------------------------------------

    /// Figure 2: Clustalw IPC and branch-misprediction-rate time series
    /// (interval samples over the baseline run).
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig2(&mut self) -> Result<Fig2, RunError> {
        let interval = match self.scale {
            Scale::Test => 20_000,
            Scale::ClassC => 100_000,
        };
        let run = self.run_interval(App::Clustalw, Variant::Baseline, Hw::Stock, interval)?;
        Ok(Fig2 { interval, samples: run.counters.intervals.clone() })
    }

    // ------------------------------------------------------------------
    // Figure 3 / Table II
    // ------------------------------------------------------------------

    /// Figure 3: IPC with `max` and `isel`, hand- and compiler-inserted,
    /// plus the Combination, on the stock core.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig3(&mut self) -> Result<Fig3, RunError> {
        self.prefetch(&Self::plan_fig3());
        let mut apps = Vec::new();
        for app in App::all() {
            let base = self.baseline(app)?;
            let mut variants = Vec::new();
            for v in Variant::all() {
                let run = self.run(app, v, Hw::Stock)?;
                variants.push(Fig3Bar {
                    variant: v,
                    ipc: run.counters.ipc(),
                    norm_ipc: Self::norm_ipc(&base, &run),
                    speedup: base.counters.cycles as f64 / run.counters.cycles as f64,
                });
            }
            apps.push(Fig3App { app, baseline_ipc: base.counters.ipc(), variants });
        }
        Ok(Fig3 { apps })
    }

    /// Table II: branch statistics per application and variant.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn table2(&mut self) -> Result<Table2, RunError> {
        self.prefetch(&Self::plan_table2());
        let mut rows = Vec::new();
        for app in App::all() {
            // The paper's row order within each application.
            for v in [
                Variant::HandIsel,
                Variant::CompilerIsel,
                Variant::HandMax,
                Variant::CompilerMax,
                Variant::Baseline,
            ] {
                let run = self.run(app, v, Hw::Stock)?;
                let c = &run.counters;
                rows.push(Table2Row {
                    app,
                    variant: v,
                    branch_fraction: c.branch_fraction(),
                    mispredict_rate: c.branches.misprediction_rate(),
                    taken_fraction: c.branches.taken_fraction(),
                });
            }
        }
        Ok(Table2 { rows })
    }

    // ------------------------------------------------------------------
    // Figure 4
    // ------------------------------------------------------------------

    /// Figure 4: effect of the 8-entry BTAC on the baseline binaries and
    /// on the Combination binaries.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig4(&mut self) -> Result<Fig4, RunError> {
        self.prefetch(&Self::plan_fig4());
        let mut rows = Vec::new();
        for app in App::all() {
            for variant in [Variant::Baseline, Variant::Combination] {
                let without = self.run(app, variant, Hw::Stock)?;
                let with = self.run(app, variant, Hw::Btac)?;
                rows.push(Fig4Row {
                    app,
                    variant,
                    speedup: without.counters.cycles as f64 / with.counters.cycles as f64,
                    btac_mispredict_rate: with.counters.btac.misprediction_rate(),
                    btac_predictions: with.counters.btac.predictions,
                });
            }
        }
        Ok(Fig4 { rows })
    }

    // ------------------------------------------------------------------
    // Figure 5
    // ------------------------------------------------------------------

    /// Figure 5: effect of additional fixed-point units — 4 FXUs on the
    /// baseline binaries, then 3 and 4 FXUs on the Combination binaries,
    /// each relative to the same binaries on 2 FXUs.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig5(&mut self) -> Result<Fig5, RunError> {
        self.prefetch(&Self::plan_fig5());
        let mut rows = Vec::new();
        for app in App::all() {
            let base2 = self.run(app, Variant::Baseline, Hw::Stock)?;
            let base4 = self.run(app, Variant::Baseline, Hw::Fxus(4))?;
            let comb2 = self.run(app, Variant::Combination, Hw::Stock)?;
            let comb3 = self.run(app, Variant::Combination, Hw::Fxus(3))?;
            let comb4 = self.run(app, Variant::Combination, Hw::Fxus(4))?;
            rows.push(Fig5Row {
                app,
                baseline_4fxu: base2.counters.cycles as f64 / base4.counters.cycles as f64,
                combination_3fxu: comb2.counters.cycles as f64 / comb3.counters.cycles as f64,
                combination_4fxu: comb2.counters.cycles as f64 / comb4.counters.cycles as f64,
            });
        }
        Ok(Fig5 { rows })
    }

    // ------------------------------------------------------------------
    // Figure 6
    // ------------------------------------------------------------------

    /// Figure 6: the combined-gains waterfall. Each enhancement's IPC
    /// delta is measured alone against the baseline; the residual is the
    /// extra improvement the combination shows beyond the sum of parts.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`].
    pub fn fig6(&mut self) -> Result<Fig6, RunError> {
        self.prefetch(&Self::plan_fig6());
        let mut rows = Vec::new();
        for app in App::all() {
            let base = self.baseline(app)?;
            let base_ipc = base.counters.ipc();
            let pred = self.run(app, Variant::Combination, Hw::Stock)?;
            let btac = self.run(app, Variant::Baseline, Hw::Btac)?;
            let fxu = self.run(app, Variant::Baseline, Hw::Fxus(4))?;
            let all = self.run(app, Variant::Combination, Hw::BtacFxus(4))?;
            let d_pred = Self::norm_ipc(&base, &pred) - base_ipc;
            let d_btac = Self::norm_ipc(&base, &btac) - base_ipc;
            let d_fxu = Self::norm_ipc(&base, &fxu) - base_ipc;
            let combined = Self::norm_ipc(&base, &all);
            rows.push(Fig6Row {
                app,
                baseline_ipc: base_ipc,
                predication_delta: d_pred,
                btac_delta: d_btac,
                fxu_delta: d_fxu,
                combined_ipc: combined,
                residual: combined - base_ipc - d_pred - d_btac - d_fxu,
            });
        }
        Ok(Fig6 { rows })
    }

    // ------------------------------------------------------------------
    // Full suite
    // ------------------------------------------------------------------

    /// The suite's experiment slugs, in paper order. Each is accepted by
    /// [`Study::run_experiment`]; [`Study::run_suite`] runs them all.
    pub fn experiment_slugs() -> [&'static str; 8] {
        ["table1", "fig1", "fig2", "fig3", "table2", "fig4", "fig5", "fig6"]
    }

    /// The unique simulations `slug` needs (empty for unknown slugs).
    fn plan_for(&self, slug: &str) -> Vec<Job> {
        match slug {
            "table1" | "fig1" => Self::plan_baselines(),
            "fig2" => Self::plan_fig2(self.scale),
            "fig3" => Self::plan_fig3(),
            "table2" => Self::plan_table2(),
            "fig4" => Self::plan_fig4(),
            "fig5" => Self::plan_fig5(),
            "fig6" => Self::plan_fig6(),
            _ => Vec::new(),
        }
    }

    /// Run one experiment by slug and render its report, quarantining a
    /// failure (after the supervisor's retries) as a degraded report
    /// carrying a machine-readable `failure_class`. Unknown slugs yield a
    /// degraded report rather than a panic, so a resume driver fed a
    /// stale slug list cannot abort a suite.
    pub fn run_experiment(&mut self, slug: &str) -> Report {
        let result = match slug {
            "table1" => self.table1().map(|x| x.report()),
            "fig1" => self.fig1().map(|x| x.report()),
            "fig2" => self.fig2().map(|x| x.report()),
            "fig3" => self.fig3().map(|x| x.report()),
            "table2" => self.table2().map(|x| x.report()),
            "fig4" => self.fig4().map(|x| x.report()),
            "fig5" => self.fig5().map(|x| x.report()),
            "fig6" => self.fig6().map(|x| x.report()),
            other => Err(RunError::Validation { what: format!("unknown experiment `{other}`") }),
        };
        let mut report = match result {
            Ok(report) => report,
            Err(e) => {
                let mut report = Report::new(slug);
                report.degrade_classified(e.class(), format!("{slug}: {e}"));
                report
            }
        };
        report.context.push(("scale".into(), format!("{:?}", self.scale)));
        report.context.push(("seed".into(), self.seed.to_string()));
        report
    }

    /// Run every table and figure of the paper, catching per-experiment
    /// failures instead of aborting the suite.
    ///
    /// A failing experiment (trap, watchdog timeout, lockstep divergence,
    /// validation mismatch, …) is retried by the supervisor (see
    /// [`Study::set_watchdog`]) and, if still failing, contributes a
    /// schema-valid `bioarch-report/v1` document marked
    /// `"degraded": true` with a classified failure, so one broken
    /// workload still leaves the other experiments' reports usable.
    pub fn run_suite(&mut self) -> Suite {
        self.run_suite_from(Vec::new())
    }

    /// Resume a suite: take the reports an interrupted run already
    /// produced and run only the remaining experiments. With `done`
    /// empty this is exactly [`Study::run_suite`]; reports come back in
    /// paper order regardless of the done/todo split, so a resumed
    /// suite is byte-identical to an uninterrupted one.
    pub fn run_suite_from(&mut self, done: Vec<Report>) -> Suite {
        let todo: Vec<&'static str> = Self::experiment_slugs()
            .into_iter()
            .filter(|s| !done.iter().any(|r| r.experiment == *s))
            .collect();
        // Fan the union of the remaining experiments' simulations across
        // the worker threads up front; the per-experiment runners below
        // then hit the cache (their own prefetch calls become no-ops).
        let mut jobs = Vec::new();
        for slug in &todo {
            jobs.extend(self.plan_for(slug));
        }
        self.prefetch(&jobs);
        let mut reports = done;
        for slug in todo {
            reports.push(self.run_experiment(slug));
        }
        let order = Self::experiment_slugs();
        reports
            .sort_by_key(|r| order.iter().position(|s| *s == r.experiment).unwrap_or(order.len()));
        Suite { reports }
    }
}

/// The full study's documents: one report per table/figure, degraded
/// entries standing in for failed experiments (see [`Study::run_suite`]).
#[derive(Debug, Clone)]
pub struct Suite {
    /// One report per experiment, in paper order.
    pub reports: Vec<Report>,
}

impl Suite {
    /// Whether any experiment failed.
    pub fn is_degraded(&self) -> bool {
        self.reports.iter().any(Report::is_degraded)
    }

    /// Every failure description across the suite.
    pub fn failures(&self) -> Vec<&str> {
        self.reports.iter().flat_map(|r| r.failures.iter().map(|f| f.message.as_str())).collect()
    }

    /// Every `(failure_class, message)` pair across the suite.
    pub fn classified_failures(&self) -> Vec<(&str, &str)> {
        self.reports
            .iter()
            .flat_map(|r| r.failures.iter().map(|f| (f.class.as_str(), f.message.as_str())))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Result types
// ----------------------------------------------------------------------

/// Lower-case metric prefix for an application.
fn slug(app: App) -> String {
    app.name().to_lowercase()
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application.
    pub app: App,
    /// Baseline IPC.
    pub ipc: f64,
    /// L1D miss rate.
    pub l1d_miss_rate: f64,
    /// Fraction of mispredictions due to incorrect direction.
    pub direction_fraction: f64,
    /// Completion-stall cycles due to FXU, as a fraction of all cycles.
    pub fxu_stall_fraction: f64,
    /// Conditional-branch misprediction rate (not printed in the paper's
    /// Table I but discussed in its text).
    pub mispredict_rate: f64,
}

/// Table I results.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per application.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "IPC".into(),
            "L1D Miss Rate".into(),
            "% Mispred Due To Direction".into(),
            "Stalls due FXU".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                format!("{:.2}", r.ipc),
                frac(r.l1d_miss_rate),
                frac(r.direction_fraction),
                frac(r.fxu_stall_fraction),
            ]);
        }
        format!("Table I — Hardware counter data (baseline POWER5)\n{}", t.render())
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("table1");
        for row in &self.rows {
            let p = slug(row.app);
            r.push(format!("{p}.ipc"), row.ipc, Direction::Higher);
            r.push(format!("{p}.l1d_miss_rate"), row.l1d_miss_rate, Direction::Lower);
            r.push(format!("{p}.direction_fraction"), row.direction_fraction, Direction::Neutral);
            r.push(format!("{p}.fxu_stall_fraction"), row.fxu_stall_fraction, Direction::Lower);
            r.push(format!("{p}.mispredict_rate"), row.mispredict_rate, Direction::Lower);
        }
        r
    }
}

/// One application's function breakdown for Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1App {
    /// Application.
    pub app: App,
    /// `(function, fraction_of_cycles)`, largest first.
    pub functions: Vec<(String, f64)>,
}

/// Figure 1 results.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One entry per application.
    pub apps: Vec<Fig1App>,
}

impl Fig1 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 1 — Function-wise cycle breakdown\n");
        for a in &self.apps {
            out.push_str(&format!("{}:\n", a.app));
            for (name, share) in a.functions.iter().take(4) {
                out.push_str(&format!("    {:16} {}\n", name, frac(*share)));
            }
        }
        out
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig1");
        for a in &self.apps {
            if let Some((name, share)) = a.functions.first() {
                r.push(format!("{}.kernel_share.{name}", slug(a.app)), *share, Direction::Neutral);
            }
        }
        r
    }
}

/// Figure 2 results: the Clustalw time series.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Instructions per sample point.
    pub interval: u64,
    /// The series.
    pub samples: Vec<IntervalSample>,
}

impl Fig2 {
    /// Render as text (one line per sample, with bar charts mirroring the
    /// paper's dual-axis plot).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 2 — Clustalw IPC and branch misprediction rate over time ({}-instruction intervals)\n",
            self.interval
        );
        let max_ipc = self.samples.iter().map(|s| s.ipc).fold(0.1, f64::max);
        let max_mis = self.samples.iter().map(|s| s.mispredict_rate).fold(0.01, f64::max);
        out.push_str("  instret      IPC                        mispredict\n");
        for s in &self.samples {
            let ipc_bar = "#".repeat((s.ipc / max_ipc * 20.0).round() as usize);
            let mis_bar = "*".repeat((s.mispredict_rate / max_mis * 20.0).round() as usize);
            out.push_str(&format!(
                "{:9}    {:.2} {:20}   {:>6} {}\n",
                s.instructions,
                s.ipc,
                ipc_bar,
                frac(s.mispredict_rate),
                mis_bar,
            ));
        }
        out
    }

    /// Pearson correlation between IPC and misprediction rate across the
    /// samples (the paper's "IPC tracks the branch prediction rate" —
    /// strongly negative here).
    pub fn correlation(&self) -> f64 {
        let n = self.samples.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mx = self.samples.iter().map(|s| s.ipc).sum::<f64>() / n;
        let my = self.samples.iter().map(|s| s.mispredict_rate).sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for s in &self.samples {
            let dx = s.ipc - mx;
            let dy = s.mispredict_rate - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            0.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        }
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig2");
        let n = self.samples.len().max(1) as f64;
        r.push("clustalw.samples", self.samples.len() as f64, Direction::Neutral);
        r.push(
            "clustalw.mean_ipc",
            self.samples.iter().map(|s| s.ipc).sum::<f64>() / n,
            Direction::Higher,
        );
        r.push(
            "clustalw.mean_mispredict_rate",
            self.samples.iter().map(|s| s.mispredict_rate).sum::<f64>() / n,
            Direction::Lower,
        );
        r.push("clustalw.ipc_mispredict_correlation", self.correlation(), Direction::Neutral);
        r
    }
}

/// One variant bar of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Bar {
    /// The code variant.
    pub variant: Variant,
    /// Plain IPC of the variant binary.
    pub ipc: f64,
    /// Work-normalized IPC (baseline instructions / cycles).
    pub norm_ipc: f64,
    /// Speedup over the baseline binary (cycles ratio).
    pub speedup: f64,
}

/// One application's bars in Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3App {
    /// Application.
    pub app: App,
    /// Baseline IPC.
    pub baseline_ipc: f64,
    /// One bar per [`Variant`], in [`Variant::all`] order.
    pub variants: Vec<Fig3Bar>,
}

impl Fig3App {
    /// The bar for `v`.
    pub fn bar(&self, v: Variant) -> &Fig3Bar {
        self.variants.iter().find(|b| b.variant == v).expect("all variants present")
    }
}

/// Figure 3 results.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// One entry per application.
    pub apps: Vec<Fig3App>,
}

impl Fig3 {
    /// Average speedup (over apps) for a variant — the paper quotes the
    /// isel and max averages (29.8 % and 34.8 %).
    pub fn average_improvement(&self, v: Variant) -> f64 {
        let sum: f64 = self.apps.iter().map(|a| a.bar(v).speedup - 1.0).sum();
        sum / self.apps.len() as f64
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "Variant".into(),
            "IPC".into(),
            "norm. IPC".into(),
            "Improvement".into(),
        ]);
        for a in &self.apps {
            for b in &a.variants {
                t.row(vec![
                    a.app.name().into(),
                    b.variant.label().into(),
                    format!("{:.2}", b.ipc),
                    format!("{:.2}", b.norm_ipc),
                    pct(b.speedup - 1.0),
                ]);
            }
        }
        format!(
            "Figure 3 — IPC with max and isel instructions\n{}\nAverages: isel {} (hand), max {} (hand)\n",
            t.render(),
            pct(self.average_improvement(Variant::HandIsel)),
            pct(self.average_improvement(Variant::HandMax)),
        )
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig3");
        for a in &self.apps {
            let p = slug(a.app);
            for b in &a.variants {
                let v = b.variant.slug();
                r.push(format!("{p}.{v}.ipc"), b.ipc, Direction::Higher);
                r.push(format!("{p}.{v}.norm_ipc"), b.norm_ipc, Direction::Higher);
                r.push(format!("{p}.{v}.speedup"), b.speedup, Direction::Higher);
            }
        }
        for v in [Variant::HandIsel, Variant::HandMax] {
            r.push(
                format!("avg.{}_improvement", v.slug()),
                self.average_improvement(v),
                Direction::Higher,
            );
        }
        r
    }
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application.
    pub app: App,
    /// Code variant.
    pub variant: Variant,
    /// Branches as a fraction of committed instructions.
    pub branch_fraction: f64,
    /// Conditional-branch misprediction rate.
    pub mispredict_rate: f64,
    /// Taken branches as a fraction of all branches.
    pub taken_fraction: f64,
}

/// Table II results.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows grouped by application in the paper's variant order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "Variant".into(),
            "Branches/Instrs".into(),
            "Mispredict Rate".into(),
            "Taken/Branches".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                r.variant.label().into(),
                frac(r.branch_fraction),
                frac(r.mispredict_rate),
                frac(r.taken_fraction),
            ]);
        }
        format!("Table II — Branch performance with predicated instructions\n{}", t.render())
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("table2");
        for row in &self.rows {
            let p = format!("{}.{}", slug(row.app), row.variant.slug());
            r.push(format!("{p}.branch_fraction"), row.branch_fraction, Direction::Lower);
            r.push(format!("{p}.mispredict_rate"), row.mispredict_rate, Direction::Lower);
            r.push(format!("{p}.taken_fraction"), row.taken_fraction, Direction::Neutral);
        }
        r
    }
}

/// One row of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Application.
    pub app: App,
    /// Binaries the BTAC was added under.
    pub variant: Variant,
    /// Speedup from adding the BTAC.
    pub speedup: f64,
    /// The BTAC's own misprediction rate.
    pub btac_mispredict_rate: f64,
    /// Predictions the BTAC made.
    pub btac_predictions: u64,
}

/// Figure 4 results.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Two rows (baseline / combination binaries) per application.
    pub rows: Vec<Fig4Row>,
}

impl Fig4 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "Binaries".into(),
            "BTAC gain".into(),
            "BTAC mispredict rate".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                r.variant.label().into(),
                pct(r.speedup - 1.0),
                frac(r.btac_mispredict_rate),
            ]);
        }
        format!("Figure 4 — Effect of an eight-entry BTAC\n{}", t.render())
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig4");
        for row in &self.rows {
            let p = format!("{}.{}", slug(row.app), row.variant.slug());
            r.push(format!("{p}.btac_speedup"), row.speedup, Direction::Higher);
            r.push(format!("{p}.btac_mispredict_rate"), row.btac_mispredict_rate, Direction::Lower);
        }
        r
    }
}

/// One row of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Application.
    pub app: App,
    /// Speedup of baseline binaries from 2 → 4 FXUs.
    pub baseline_4fxu: f64,
    /// Speedup of Combination binaries from 2 → 3 FXUs.
    pub combination_3fxu: f64,
    /// Speedup of Combination binaries from 2 → 4 FXUs.
    pub combination_4fxu: f64,
}

/// Figure 5 results.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One row per application.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "base 4 FXU".into(),
            "comb 3 FXU".into(),
            "comb 4 FXU".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                pct(r.baseline_4fxu - 1.0),
                pct(r.combination_3fxu - 1.0),
                pct(r.combination_4fxu - 1.0),
            ]);
        }
        format!("Figure 5 — Effect of additional fixed-point units\n{}", t.render())
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig5");
        for row in &self.rows {
            let p = slug(row.app);
            r.push(format!("{p}.baseline_4fxu_speedup"), row.baseline_4fxu, Direction::Higher);
            r.push(
                format!("{p}.combination_3fxu_speedup"),
                row.combination_3fxu,
                Direction::Higher,
            );
            r.push(
                format!("{p}.combination_4fxu_speedup"),
                row.combination_4fxu,
                Direction::Higher,
            );
        }
        r
    }
}

/// One row of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Application.
    pub app: App,
    /// Baseline IPC.
    pub baseline_ipc: f64,
    /// IPC delta from predication alone (work-normalized).
    pub predication_delta: f64,
    /// IPC delta from the BTAC alone.
    pub btac_delta: f64,
    /// IPC delta from 4 FXUs alone.
    pub fxu_delta: f64,
    /// Work-normalized IPC with all three enhancements.
    pub combined_ipc: f64,
    /// Combined minus baseline minus the sum of individual deltas.
    pub residual: f64,
}

impl Fig6Row {
    /// Total improvement of the combined configuration.
    pub fn total_improvement(&self) -> f64 {
        self.combined_ipc / self.baseline_ipc - 1.0
    }
}

/// Figure 6 results.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// One row per application.
    pub rows: Vec<Fig6Row>,
}

impl Fig6 {
    /// Average total improvement across applications (the paper's
    /// headline 64 %).
    pub fn average_improvement(&self) -> f64 {
        self.rows.iter().map(Fig6Row::total_improvement).sum::<f64>() / self.rows.len() as f64
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Application".into(),
            "base IPC".into(),
            "+pred".into(),
            "+BTAC".into(),
            "+2 FXU".into(),
            "residual".into(),
            "combined IPC".into(),
            "total".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                format!("{:.2}", r.baseline_ipc),
                format!("{:+.2}", r.predication_delta),
                format!("{:+.2}", r.btac_delta),
                format!("{:+.2}", r.fxu_delta),
                format!("{:+.2}", r.residual),
                format!("{:.2}", r.combined_ipc),
                pct(r.total_improvement()),
            ]);
        }
        format!(
            "Figure 6 — Combined gains (work-normalized IPC)\n{}\nAverage improvement: {}\n",
            t.render(),
            pct(self.average_improvement())
        )
    }

    /// Machine-readable report (schema `bioarch-report/v1`).
    pub fn report(&self) -> Report {
        let mut r = Report::new("fig6");
        for row in &self.rows {
            let p = slug(row.app);
            r.push(format!("{p}.baseline_ipc"), row.baseline_ipc, Direction::Higher);
            r.push(format!("{p}.predication_delta"), row.predication_delta, Direction::Higher);
            r.push(format!("{p}.btac_delta"), row.btac_delta, Direction::Higher);
            r.push(format!("{p}.fxu_delta"), row.fxu_delta, Direction::Higher);
            r.push(format!("{p}.combined_ipc"), row.combined_ipc, Direction::Higher);
            r.push(format!("{p}.residual"), row.residual, Direction::Neutral);
            r.push(format!("{p}.total_improvement"), row.total_improvement(), Direction::Higher);
        }
        r.push("avg.total_improvement", self.average_improvement(), Direction::Higher);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Study {
        Study::new(Scale::Test, 42)
    }

    #[test]
    fn hw_slugs_roundtrip() {
        for hw in [Hw::Stock, Hw::Btac, Hw::Fxus(4), Hw::BtacFxus(8)] {
            assert_eq!(Hw::from_slug(&hw.slug()), Some(hw));
        }
        assert_eq!(Hw::from_slug("fxus"), None);
        assert_eq!(Hw::from_slug("btac-fxusx"), None);
        assert_eq!(Hw::from_slug("power6"), None);
    }

    #[test]
    fn table1_has_paper_shape() {
        let t1 = study().table1().unwrap();
        assert_eq!(t1.rows.len(), 4);
        for r in &t1.rows {
            assert!(r.ipc > 0.3 && r.ipc < 2.5, "{} IPC {}", r.app, r.ipc);
            assert!(r.l1d_miss_rate < 0.08, "{} misses {}", r.app, r.l1d_miss_rate);
            assert!(
                r.direction_fraction > 0.9,
                "{} direction fraction {}",
                r.app,
                r.direction_fraction
            );
        }
        let text = t1.render();
        assert!(text.contains("Clustalw"));
    }

    #[test]
    fn fig1_kernel_dominates() {
        let f1 = study().fig1().unwrap();
        for a in &f1.apps {
            let (top, share) = &a.functions[0];
            assert_eq!(top, a.app.kernel_name(), "{}: top fn {}", a.app, top);
            assert!(*share > 0.4, "{}: kernel share {}", a.app, share);
        }
        assert!(f1.render().contains("dropgsw"));
    }

    #[test]
    fn fig2_produces_anticorrelated_series() {
        let f2 = study().fig2().unwrap();
        assert!(f2.samples.len() >= 5, "only {} samples", f2.samples.len());
        assert!(f2.samples.iter().all(|s| s.ipc > 0.0));
        assert!(f2.render().lines().count() > 5);
        // The paper's Figure 2 point: IPC tracks mispredictions inversely.
        assert!(
            f2.correlation() < -0.5,
            "IPC/mispredict correlation {} not strongly negative",
            f2.correlation()
        );
    }

    #[test]
    fn fig3_and_table2_shapes() {
        let mut s = study();
        let f3 = s.fig3().unwrap();
        assert_eq!(f3.apps.len(), 4);
        for a in &f3.apps {
            // Predication never slows a workload down at Test scale by
            // more than noise; max beats isel on every app (the paper's
            // consistent finding).
            let isel = a.bar(Variant::HandIsel).speedup;
            let maxb = a.bar(Variant::HandMax).speedup;
            assert!(maxb >= isel * 0.98, "{}: max {} vs isel {}", a.app, maxb, isel);
        }
        let t2 = s.table2().unwrap();
        assert_eq!(t2.rows.len(), 20);
        // Predication reduces the branch fraction vs. the original.
        for app in App::all() {
            let orig =
                t2.rows.iter().find(|r| r.app == app && r.variant == Variant::Baseline).unwrap();
            let hand =
                t2.rows.iter().find(|r| r.app == app && r.variant == Variant::HandMax).unwrap();
            assert!(
                hand.branch_fraction < orig.branch_fraction,
                "{app}: {} !< {}",
                hand.branch_fraction,
                orig.branch_fraction
            );
        }
        assert!(t2.render().contains("Branches/Instrs"));
    }

    #[test]
    fn fig4_btac_never_hurts_much_and_mispredicts_rarely() {
        let f4 = study().fig4().unwrap();
        assert_eq!(f4.rows.len(), 8);
        for r in &f4.rows {
            assert!(r.speedup > 0.97, "{} {:?}: BTAC slowdown {}", r.app, r.variant, r.speedup);
            assert!(
                r.btac_mispredict_rate < 0.2,
                "{}: BTAC mispredict rate {}",
                r.app,
                r.btac_mispredict_rate
            );
        }
    }

    #[test]
    fn fig5_more_fxus_never_hurt() {
        let f5 = study().fig5().unwrap();
        for r in &f5.rows {
            assert!(r.baseline_4fxu > 0.99, "{}: {}", r.app, r.baseline_4fxu);
            assert!(r.combination_4fxu >= r.combination_3fxu * 0.99);
        }
    }

    #[test]
    fn fig6_combined_beats_parts() {
        let f6 = study().fig6().unwrap();
        for r in &f6.rows {
            assert!(
                r.combined_ipc > r.baseline_ipc,
                "{}: combined {} vs base {}",
                r.app,
                r.combined_ipc,
                r.baseline_ipc
            );
        }
        assert!(f6.average_improvement() > 0.05);
        assert!(f6.render().contains("combined IPC"));
    }

    #[test]
    fn experiment_reports_roundtrip_through_json() {
        let t1 = Table1 {
            rows: vec![Table1Row {
                app: App::Blast,
                ipc: 0.9,
                l1d_miss_rate: 0.012,
                direction_fraction: 0.95,
                fxu_stall_fraction: 0.2,
                mispredict_rate: 0.08,
            }],
        };
        let rep = t1.report();
        assert_eq!(rep.experiment, "table1");
        assert_eq!(rep.metrics.len(), 5);
        let back = Report::parse(&rep.render_json()).unwrap();
        assert_eq!(back.get("blast.ipc").unwrap().value, 0.9);
        assert_eq!(back.get("blast.ipc").unwrap().direction, Direction::Higher);
        assert_eq!(back.get("blast.l1d_miss_rate").unwrap().direction, Direction::Lower);

        let f5 = Fig5 {
            rows: vec![Fig5Row {
                app: App::Fasta,
                baseline_4fxu: 1.02,
                combination_3fxu: 1.10,
                combination_4fxu: 1.12,
            }],
        };
        let back = Report::parse(&f5.report().render_json()).unwrap();
        assert_eq!(back.get("fasta.combination_4fxu_speedup").unwrap().value, 1.12);
    }

    #[test]
    fn study_cache_reuses_runs() {
        let mut s = study();
        let a = s.run(App::Fasta, Variant::Baseline, Hw::Stock).unwrap();
        let b = s.run(App::Fasta, Variant::Baseline, Hw::Stock).unwrap();
        assert_eq!(a.counters.cycles, b.counters.cycles);
    }
}
