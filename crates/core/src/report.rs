//! Plain-text table rendering and machine-readable experiment reports.
//!
//! [`Table`] renders aligned text tables; [`Report`] serializes an
//! experiment's metrics to a stable JSON schema (`bioarch-report/v1`) so
//! runs can be archived and diffed — see [`compare_reports`] and
//! `examples/compare_runs.rs`.

use crate::json::Json;
use crate::schema::check_schema;
use std::fmt::Write as _;

/// A simple aligned text table: numeric columns right-aligned, text
/// columns left-aligned.
///
/// # Example
///
/// ```
/// use bioarch::report::Table;
///
/// let mut t = Table::new(vec!["App".into(), "IPC".into()]);
/// t.row(vec!["Fasta".into(), "0.93".into()]);
/// let text = t.render();
/// assert!(text.contains("Fasta"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table { header, rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    /// A column whose data cells are all numeric (including `%` and
    /// `+`/`-` decorations) is right-aligned; any other column is
    /// left-aligned. Every line has the same length.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let numeric: Vec<bool> = (0..ncols)
            .map(|i| !self.rows.is_empty() && self.rows.iter().all(|row| cell_is_numeric(&row[i])))
            .collect();
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if numeric[i] {
                    let _ = write!(out, "{cell:>width$}", width = widths[i]);
                } else {
                    let _ = write!(out, "{cell:<width$}", width = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Whether a rendered cell is numeric for alignment purposes: an
/// optionally signed number, optionally suffixed with `%`.
fn cell_is_numeric(cell: &str) -> bool {
    let body = cell.strip_suffix('%').unwrap_or(cell);
    let body = body.strip_prefix(['+', '-']).unwrap_or(body);
    !body.is_empty() && body.parse::<f64>().is_ok()
}

/// Which way a metric is "good" — used when comparing two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (IPC, speedup).
    Higher,
    /// Smaller values are better (miss rates, stall fractions).
    Lower,
    /// Informational; a change is reported but never a regression.
    Neutral,
}

impl Direction {
    /// Stable schema string.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Neutral => "neutral",
        }
    }

    /// Parse the schema string.
    pub fn from_name(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "neutral" => Some(Direction::Neutral),
            _ => None,
        }
    }
}

/// One recorded failure in a degraded [`Report`]: a machine-readable
/// class (for quarantine triage — `"trap"`, `"timeout"`,
/// `"divergence"`, …; see `RunError::class` in [`crate::apps`]) plus
/// the human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Machine-readable failure class.
    pub class: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class, self.message)
    }
}

/// One named metric in a [`Report`].
#[derive(Debug, Clone)]
pub struct Metric {
    /// Dotted path, e.g. `clustalw.baseline.ipc`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Which way is better.
    pub direction: Direction,
}

/// A machine-readable experiment report (schema `bioarch-report/v1`).
///
/// Every table/figure experiment can serialize its results through this
/// type; two serialized reports from different builds or configurations
/// can then be diffed with [`compare_reports`] (see
/// `examples/compare_runs.rs`).
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment slug, e.g. `table1`.
    pub experiment: String,
    /// Free-form context (`scale`, `seed`, …), serialized verbatim.
    pub context: Vec<(String, String)>,
    /// The metrics, in emission order.
    pub metrics: Vec<Metric>,
    /// Failure records. Non-empty means the run was *degraded*: some
    /// workload or experiment failed and its metrics are missing or
    /// partial. Serialized as a `"degraded": true` section.
    pub failures: Vec<Failure>,
}

/// Schema identifier embedded in every report document.
pub const REPORT_SCHEMA: &str = "bioarch-report/v1";

impl Report {
    /// An empty report for `experiment`.
    pub fn new(experiment: &str) -> Self {
        Report {
            experiment: experiment.to_string(),
            context: Vec::new(),
            metrics: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Record a failure with the generic `"error"` class, marking the
    /// report degraded. Use [`Report::degrade_classified`] when the
    /// failure class is known.
    pub fn degrade(&mut self, failure: impl Into<String>) {
        self.degrade_classified("error", failure);
    }

    /// Record a failure with a machine-readable class, marking the
    /// report degraded.
    pub fn degrade_classified(&mut self, class: impl Into<String>, failure: impl Into<String>) {
        self.failures.push(Failure { class: class.into(), message: failure.into() });
    }

    /// Whether any failure was recorded.
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Append a context key/value (builder style).
    pub fn context(mut self, key: &str, value: impl ToString) -> Self {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64, direction: Direction) {
        self.metrics.push(Metric { name: name.into(), value, direction });
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serialize to the JSON document model.
    pub fn to_json(&self) -> Json {
        let context = Json::Obj(
            self.context.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
        );
        let metrics = Json::Arr(
            self.metrics
                .iter()
                .map(|m| {
                    Json::obj()
                        .set("name", Json::Str(m.name.clone()))
                        .set("value", Json::Num(m.value))
                        .set("direction", Json::Str(m.direction.as_str().into()))
                })
                .collect(),
        );
        let mut doc = Json::obj()
            .set("schema", Json::Str(REPORT_SCHEMA.into()))
            .set("experiment", Json::Str(self.experiment.clone()))
            .set("context", context)
            .set("metrics", metrics);
        if self.is_degraded() {
            doc = doc.set("degraded", Json::Bool(true)).set(
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj()
                                .set("class", Json::Str(f.class.clone()))
                                .set("message", Json::Str(f.message.clone()))
                        })
                        .collect(),
                ),
            );
        }
        doc
    }

    /// Serialize to pretty-printed JSON text.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Parse a serialized report.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong/missing schema
    /// marker, or structurally invalid metrics.
    pub fn parse(text: &str) -> Result<Report, String> {
        let doc = Json::parse(text)?;
        check_schema(&doc, REPORT_SCHEMA).map_err(|e| e.to_string())?;
        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing experiment name")?
            .to_string();
        let context = match doc.get("context") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                .collect(),
            _ => Vec::new(),
        };
        let mut metrics = Vec::new();
        for m in doc.get("metrics").and_then(Json::as_array).ok_or("missing metrics")? {
            let name =
                m.get("name").and_then(Json::as_str).ok_or("metric missing name")?.to_string();
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name} missing value"))?;
            let direction = m
                .get("direction")
                .and_then(Json::as_str)
                .and_then(Direction::from_name)
                .ok_or_else(|| format!("metric {name} has a bad direction"))?;
            metrics.push(Metric { name, value, direction });
        }
        let degraded = matches!(doc.get("degraded"), Some(Json::Bool(true)));
        let mut failures: Vec<Failure> = match doc.get("failures") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|f| match f {
                    // Pre-classification documents recorded failures as
                    // plain strings; heal them with the generic class.
                    Json::Str(message) => {
                        Failure { class: "error".to_string(), message: message.clone() }
                    }
                    other => Failure {
                        class: other
                            .get("class")
                            .and_then(Json::as_str)
                            .unwrap_or("error")
                            .to_string(),
                        message: other
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    },
                })
                .collect(),
            _ => Vec::new(),
        };
        if degraded && failures.is_empty() {
            // A degraded marker without descriptions still round-trips as
            // degraded rather than silently healing.
            failures.push(Failure {
                class: "unknown".to_string(),
                message: "degraded (no failure details recorded)".to_string(),
            });
        }
        Ok(Report { experiment, context, metrics, failures })
    }
}

/// One metric's before/after delta in a [`Comparison`].
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value in the `before` report.
    pub before: f64,
    /// Value in the `after` report.
    pub after: f64,
    /// Relative change, `(after - before) / |before|` (0 when both zero).
    pub change: f64,
    /// Whether this change is a regression beyond the tolerance, given
    /// the metric's [`Direction`].
    pub regression: bool,
}

/// Result of [`compare_reports`].
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-metric deltas, in the `before` report's order.
    pub deltas: Vec<MetricDelta>,
    /// Metric names present in `before` but absent from `after`.
    pub missing: Vec<String>,
    /// Metric names present in `after` but absent from `before`.
    pub added: Vec<String>,
}

impl Comparison {
    /// The deltas flagged as regressions.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regression).collect()
    }

    /// Render a human-readable diff table (one row per metric, `!` marks
    /// regressions), followed by missing/added notes.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "".into(),
            "metric".into(),
            "before".into(),
            "after".into(),
            "change".into(),
        ]);
        for d in &self.deltas {
            t.row(vec![
                if d.regression { "!".into() } else { "".into() },
                d.name.clone(),
                format!("{:.4}", d.before),
                format!("{:.4}", d.after),
                pct(d.change),
            ]);
        }
        let mut out = t.render();
        for name in &self.missing {
            let _ = writeln!(out, "missing in after: {name}");
        }
        for name in &self.added {
            let _ = writeln!(out, "only in after:    {name}");
        }
        out
    }
}

/// Diff two reports metric-by-metric. A metric regresses when it moves
/// against its [`Direction`] by more than `tolerance` (relative, e.g.
/// `0.02` = 2 %). Directions are taken from the `before` report.
pub fn compare_reports(before: &Report, after: &Report, tolerance: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for m in &before.metrics {
        let Some(other) = after.get(&m.name) else {
            missing.push(m.name.clone());
            continue;
        };
        let change = if m.value == 0.0 && other.value == 0.0 {
            0.0
        } else if m.value == 0.0 {
            f64::INFINITY * other.value.signum()
        } else {
            (other.value - m.value) / m.value.abs()
        };
        let regression = match m.direction {
            Direction::Higher => change < -tolerance,
            Direction::Lower => change > tolerance,
            Direction::Neutral => false,
        };
        deltas.push(MetricDelta {
            name: m.name.clone(),
            before: m.value,
            after: other.value,
            change,
            regression,
        });
    }
    let added = after
        .metrics
        .iter()
        .filter(|m| before.get(&m.name).is_none())
        .map(|m| m.name.clone())
        .collect();
    Comparison { deltas, missing, added }
}

/// Write `contents` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed over the target, so a reader (or
/// a kill signal) can never observe a truncated document. Report and
/// `bioarch-metrics/v1` writers all flush through here.
///
/// # Errors
///
/// Returns the underlying I/O error from the write or the rename (the
/// temporary file is removed on a failed rename).
pub fn write_atomic(path: impl AsRef<std::path::Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Format a ratio as a signed percentage (`+12.3%`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", 100.0 * ratio)
}

/// Format a fraction (0–1) as a percentage (`12.3%`).
pub fn frac(f: f64) -> String {
    format!("{:.2}%", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn percent_helpers() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(frac(0.998), "99.80%");
    }

    #[test]
    fn numeric_columns_right_align_text_left_aligns() {
        let mut t = Table::new(vec!["App".into(), "IPC".into(), "gain".into()]);
        t.row(vec!["Fasta".into(), "0.93".into(), "+12.3%".into()]);
        t.row(vec!["Hmmer long".into(), "12.50".into(), "-5.0%".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        // Text column: names flush left.
        assert!(lines[2].starts_with("Fasta "));
        // Numeric columns: decorated values flush right, so the shorter
        // value is padded on the left.
        assert!(lines[2].contains("  0.93"));
        assert!(lines[3].contains("12.50"));
        // Every line renders at the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    fn sample_report() -> Report {
        let mut r = Report::new("table1").context("scale", "test").context("seed", 42);
        r.push("blast.ipc", 0.93, Direction::Higher);
        r.push("blast.l1d_miss_rate", 0.012, Direction::Lower);
        r.push("blast.direction_fraction", 0.97, Direction::Neutral);
        r
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample_report();
        let text = r.render_json();
        assert!(text.contains("bioarch-report/v1"));
        let back = Report::parse(&text).unwrap();
        assert_eq!(back.experiment, "table1");
        assert_eq!(back.context, r.context);
        assert_eq!(back.metrics.len(), 3);
        let m = back.get("blast.ipc").unwrap();
        assert_eq!(m.value, 0.93);
        assert_eq!(m.direction, Direction::Higher);
        // Wrong schema marker rejected.
        assert!(Report::parse(&text.replace("/v1", "/v9")).is_err());
    }

    #[test]
    fn degraded_section_roundtrips_and_healthy_reports_omit_it() {
        let healthy = sample_report();
        let text = healthy.render_json();
        assert!(!text.contains("degraded"));
        assert!(!Report::parse(&text).unwrap().is_degraded());

        let mut bad = sample_report();
        bad.degrade_classified("trap", "fasta: trap at pc 0x00001040, cycle 812: unmapped load");
        bad.degrade("hmmer: watchdog instruction budget expired");
        let text = bad.render_json();
        assert!(text.contains("\"degraded\": true"));
        let back = Report::parse(&text).unwrap();
        assert!(back.is_degraded());
        assert_eq!(back.failures, bad.failures);
        assert_eq!(back.failures[0].class, "trap");
        assert_eq!(back.failures[1].class, "error");
        assert!(format!("{}", back.failures[0]).starts_with("[trap] "));
        // Metrics survive alongside the failure records.
        assert_eq!(back.metrics.len(), 3);
    }

    #[test]
    fn legacy_plain_string_failures_still_parse() {
        // Reports written before failures were classified stored them as
        // plain strings; they heal into the generic class.
        let text = r#"{
            "schema": "bioarch-report/v1",
            "experiment": "table1",
            "context": {},
            "metrics": [],
            "degraded": true,
            "failures": ["fasta: something broke"]
        }"#;
        let back = Report::parse(text).unwrap();
        assert!(back.is_degraded());
        assert_eq!(
            back.failures,
            vec![Failure { class: "error".into(), message: "fasta: something broke".into() }]
        );
    }

    #[test]
    fn comparison_flags_directional_regressions_only() {
        let before = sample_report();
        let mut after = sample_report();
        after.metrics[0].value = 0.80; // ipc down 14 % — regression
        after.metrics[1].value = 0.02; // miss rate up 67 % — regression
        after.metrics[2].value = 0.50; // neutral — reported, not flagged
        let cmp = compare_reports(&before, &after, 0.02);
        let regs: Vec<&str> = cmp.regressions().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(regs, vec!["blast.ipc", "blast.l1d_miss_rate"]);
        assert!(cmp.render().contains("blast.ipc"));

        // Within tolerance: no regression either way.
        let mut close = sample_report();
        close.metrics[0].value = 0.925;
        let cmp = compare_reports(&before, &close, 0.02);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn comparison_reports_missing_and_added_metrics() {
        let before = sample_report();
        let mut after = Report::new("table1");
        after.push("blast.ipc", 0.93, Direction::Higher);
        after.push("novel.metric", 1.0, Direction::Neutral);
        let cmp = compare_reports(&before, &after, 0.02);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.missing, vec!["blast.l1d_miss_rate", "blast.direction_fraction"]);
        assert_eq!(cmp.added, vec!["novel.metric"]);
    }
}
