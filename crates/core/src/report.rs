//! Plain-text table rendering for experiment results.

use std::fmt::Write as _;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use bioarch::report::Table;
///
/// let mut t = Table::new(vec!["App".into(), "IPC".into()]);
/// t.row(vec!["Fasta".into(), "0.93".into()]);
/// let text = t.render();
/// assert!(text.contains("Fasta"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table { header, rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format a ratio as a signed percentage (`+12.3%`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", 100.0 * ratio)
}

/// Format a fraction (0–1) as a percentage (`12.3%`).
pub fn frac(f: f64) -> String {
    format!("{:.2}%", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn percent_helpers() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(frac(0.998), "99.80%");
    }
}
