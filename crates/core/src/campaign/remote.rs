//! Distributed campaign service: remote worker shards and result
//! subscribers over a chaos-tested TCP wire protocol.
//!
//! The in-process campaign core ([`super`]) proved one contract: kill
//! the process at any byte boundary, restart, and the merged report is
//! byte-identical to an uninterrupted run. This module extends that
//! contract across a real transport. Worker shards run in separate
//! processes (or hosts), speak a length-prefixed JSONL protocol
//! ([`WIRE_SCHEMA`]) over [`std::net::TcpStream`], and the server keeps
//! every durable state transition on its side of the wire — the journal,
//! the run cache, and the lease table never leave the campaign
//! directory. A worker is pure compute: it can die, hang, reconnect, or
//! replay any frame without perturbing the recorded outcome.
//!
//! # Wire format
//!
//! Every frame is `<8 lowercase hex digits><payload>\n`: the hex prefix
//! is the payload byte length, the payload is one compact JSON object
//! carrying `"schema": "bioarch-wire/v1"` (checked through
//! [`crate::schema::check_schema`]) and a `"frame"` discriminant. The
//! strict parser ([`decode_frame`]) rejects truncated, oversized, and
//! corrupted frames with typed [`WireError`]s — never a panic — which
//! is what lets the chaos proxy cut a frame anywhere and both endpoints
//! recover by reconnecting.
//!
//! # Why the contract survives the network
//!
//! * Every durable transition happens server-side and is idempotent:
//!   a re-delivered `retire` after a reconnect hits the terminal-state
//!   check and becomes a cache hit ([`super::RetireOutcome::Duplicate`]),
//!   never a double-count; duplicate `progress`/`fetch` frames converge
//!   the same way.
//! * Job results are deterministic functions of the spec (bit-exact
//!   checkpoint/resume on a fixed chunk grid), so it does not matter
//!   which worker finishes a job or how many times its connection died.
//! * Workers use at-least-once delivery: a strict request-reply
//!   exchange that reconnects (seeded exponential backoff) and resends
//!   on any wire error. The server tolerates replays; the worker
//!   tolerates duplicated or lost replies by treating an unexpected
//!   reply as a desync and reconnecting (a fresh connection flushes the
//!   stale stream).
//! * Expired leases are reclaimed through the same
//!   [`super::Campaign::claim_for`] path as in-process workers, so a
//!   kill -9'd worker's job is resumed from its last acknowledged
//!   checkpoint by whoever fetches next.
//!
//! The chaos proxy ([`ChaosProxy`]) makes the failure modes
//! deterministic: seeded per-connection frame drop, duplication, delay,
//! truncation, and byte corruption, plus a seeded hard sever, so tests
//! can prove byte-identity under any interleaving they can name.

use super::{
    job_report, widened_budget, Campaign, Claim, JobSpec, JobStatus, LeasedJob, RetireOutcome,
};
use crate::checkpoint;
use crate::json::Json;
use crate::schema::{check_schema, UnsupportedVersion};
use power5_sim::{Checkpoint, XorShift64};
use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier carried by every wire frame.
pub const WIRE_SCHEMA: &str = "bioarch-wire/v1";

/// Maximum accepted frame payload length in bytes. Larger prefixes are
/// rejected as [`WireError::Oversized`] before any allocation.
pub const MAX_FRAME: usize = 1 << 24;

/// Typed wire-protocol failure. Every decode or transport problem maps
/// to one of these — the strict parser never panics on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes buffered yet for a complete frame.
    Truncated {
        /// Bytes currently available.
        have: usize,
        /// Bytes needed for the next decode step.
        need: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The accepted maximum.
        max: usize,
    },
    /// The 8-byte length prefix is not lowercase hex.
    BadLength(String),
    /// The byte after the payload is not the `\n` terminator.
    Unterminated,
    /// The payload is not valid JSON (or not UTF-8).
    BadJson(String),
    /// The payload is missing a required field.
    MissingField(&'static str),
    /// The `frame` discriminant names no known frame type.
    UnknownFrame(String),
    /// The `role` field names no known connection role.
    UnknownRole(String),
    /// The frame declared a schema this build does not speak.
    Unsupported(UnsupportedVersion),
    /// Transport-level I/O failure.
    Io(String),
    /// A read or write deadline expired.
    TimedOut,
    /// The peer closed the connection.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (max {max})")
            }
            WireError::BadLength(s) => write!(f, "bad length prefix {s:?}"),
            WireError::Unterminated => write!(f, "frame not newline-terminated"),
            WireError::BadJson(e) => write!(f, "bad frame payload: {e}"),
            WireError::MissingField(name) => write!(f, "frame missing field {name:?}"),
            WireError::UnknownFrame(k) => write!(f, "unknown frame kind {k:?}"),
            WireError::UnknownRole(r) => write!(f, "unknown role {r:?}"),
            WireError::Unsupported(e) => write!(f, "{e}"),
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::TimedOut => write!(f, "deadline expired"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

/// What a connecting peer wants from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Lease jobs, execute them, report outcomes.
    Worker,
    /// Receive every retired `bioarch-report/v1` result as it lands.
    Subscriber,
}

impl Role {
    fn as_str(self) -> &'static str {
        match self {
            Role::Worker => "worker",
            Role::Subscriber => "subscriber",
        }
    }

    fn from_str(s: &str) -> Result<Role, WireError> {
        match s {
            "worker" => Ok(Role::Worker),
            "subscriber" => Ok(Role::Subscriber),
            other => Err(WireError::UnknownRole(other.to_string())),
        }
    }
}

/// One protocol message. Workers speak strict request-reply
/// (`Fetch`→`Job|Idle|Done`, `Progress|Retry|Retire|Quarantine|Release`
/// →`Ack|Done`) with fire-and-forget `Heartbeat`s in between;
/// subscribers receive a push stream of `Result` frames closed by
/// `CampaignDone`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// First frame on every connection: declare a role and worker id.
    Hello {
        /// The connection's role.
        role: Role,
        /// Worker shard id (ignored for subscribers).
        worker: u64,
    },
    /// Server's reply to `Hello`, carrying lease parameters.
    HelloAck {
        /// Lease heartbeat timeout the worker must beat.
        lease_timeout_ms: u64,
    },
    /// Worker asks for a job.
    Fetch {
        /// Requesting worker shard id.
        worker: u64,
    },
    /// A leased job, with everything needed to execute it.
    Job {
        /// Content-addressed job id.
        job: String,
        /// The full job spec.
        spec: JobSpec,
        /// Failed attempts so far (drives seeded budget widening).
        attempts: u32,
        /// Checkpoint grid cadence in instructions (0 = none).
        chunk: u64,
        /// Base instruction budget, if the campaign runs one.
        budget: Option<u64>,
        /// Attempts before quarantine.
        max_attempts: u32,
        /// Rendered `bioarch-checkpoint/v1` to resume from, if any.
        resume: Option<String>,
    },
    /// No job claimable right now (live leases elsewhere); retry soon.
    Idle,
    /// Nothing further: campaign finished or draining. Sent as a reply
    /// to `Fetch` and unsolicited at campaign completion.
    Done,
    /// Fire-and-forget lease keep-alive.
    Heartbeat {
        /// Worker shard id holding the lease.
        worker: u64,
        /// The leased job id.
        job: String,
    },
    /// Chunk-boundary checkpoint acknowledgement.
    Progress {
        /// Job id.
        job: String,
        /// Instructions retired so far.
        insns: u64,
        /// Rendered `bioarch-checkpoint/v1` at the chunk boundary.
        checkpoint: String,
    },
    /// A failed attempt (budget exhaustion, trap, divergence).
    Retry {
        /// Job id.
        job: String,
        /// The new attempt count.
        attempt: u32,
        /// `failure_class` taxonomy slug.
        class: String,
        /// Checkpoint to resume the retry from (`None` = from scratch).
        checkpoint: Option<String>,
    },
    /// A validated completion with the rendered report.
    Retire {
        /// Job id.
        job: String,
        /// Instructions retired by the run.
        insns: u64,
        /// Rendered `bioarch-report/v1` for the run cache.
        report: String,
    },
    /// A terminal failure after the attempt limit.
    Quarantine {
        /// Job id.
        job: String,
        /// `failure_class` taxonomy slug.
        class: String,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Release a lease (graceful drain): the job stays resumable.
    Release {
        /// Job id.
        job: String,
        /// Worker shard id releasing it.
        worker: u64,
    },
    /// Server acknowledgement of a worker state report.
    Ack {
        /// The job the acknowledged frame was about.
        job: String,
        /// Set when the campaign is draining: checkpoint, release, stop.
        drain: bool,
    },
    /// A retired result, streamed to subscribers.
    Result {
        /// Job id.
        job: String,
        /// Human-readable job label.
        label: String,
        /// Rendered `bioarch-report/v1` from the run cache.
        report: String,
    },
    /// End of the subscriber stream: final terminal-state counts.
    CampaignDone {
        /// Jobs completed.
        completed: u64,
        /// Jobs quarantined.
        quarantined: u64,
    },
}

fn get_str(doc: &Json, name: &'static str) -> Result<String, WireError> {
    doc.get(name).and_then(Json::as_str).map(str::to_string).ok_or(WireError::MissingField(name))
}

fn get_u64(doc: &Json, name: &'static str) -> Result<u64, WireError> {
    doc.get(name).and_then(Json::as_f64).map(|v| v as u64).ok_or(WireError::MissingField(name))
}

fn opt_str(doc: &Json, name: &str) -> Option<String> {
    doc.get(name).and_then(Json::as_str).map(str::to_string)
}

impl Frame {
    /// The `frame` discriminant string.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Fetch { .. } => "fetch",
            Frame::Job { .. } => "job",
            Frame::Idle => "idle",
            Frame::Done => "done",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::Progress { .. } => "progress",
            Frame::Retry { .. } => "retry",
            Frame::Retire { .. } => "retire",
            Frame::Quarantine { .. } => "quarantine",
            Frame::Release { .. } => "release",
            Frame::Ack { .. } => "ack",
            Frame::Result { .. } => "result",
            Frame::CampaignDone { .. } => "campaign_done",
        }
    }

    /// Serialize to the JSON payload object (schema marker included).
    pub fn to_json(&self) -> Json {
        let doc = Json::obj()
            .set("schema", Json::Str(WIRE_SCHEMA.to_string()))
            .set("frame", Json::Str(self.kind().to_string()));
        match self {
            Frame::Hello { role, worker } => doc
                .set("role", Json::Str(role.as_str().to_string()))
                .set("worker", Json::Num(*worker as f64)),
            Frame::HelloAck { lease_timeout_ms } => {
                doc.set("lease_timeout_ms", Json::Num(*lease_timeout_ms as f64))
            }
            Frame::Fetch { worker } => doc.set("worker", Json::Num(*worker as f64)),
            Frame::Job { job, spec, attempts, chunk, budget, max_attempts, resume } => {
                let doc = doc
                    .set("job", Json::Str(job.clone()))
                    .set("spec", spec.to_json())
                    .set("attempts", Json::Num(f64::from(*attempts)))
                    .set("chunk", Json::Num(*chunk as f64))
                    .set("max_attempts", Json::Num(f64::from(*max_attempts)));
                let doc = match budget {
                    Some(b) => doc.set("budget", Json::Num(*b as f64)),
                    None => doc,
                };
                match resume {
                    Some(text) => doc.set("resume", Json::Str(text.clone())),
                    None => doc,
                }
            }
            Frame::Idle | Frame::Done => doc,
            Frame::Heartbeat { worker, job } => {
                doc.set("worker", Json::Num(*worker as f64)).set("job", Json::Str(job.clone()))
            }
            Frame::Progress { job, insns, checkpoint } => doc
                .set("job", Json::Str(job.clone()))
                .set("insns", Json::Num(*insns as f64))
                .set("checkpoint", Json::Str(checkpoint.clone())),
            Frame::Retry { job, attempt, class, checkpoint } => {
                let doc = doc
                    .set("job", Json::Str(job.clone()))
                    .set("attempt", Json::Num(f64::from(*attempt)))
                    .set("class", Json::Str(class.clone()));
                match checkpoint {
                    Some(text) => doc.set("checkpoint", Json::Str(text.clone())),
                    None => doc,
                }
            }
            Frame::Retire { job, insns, report } => doc
                .set("job", Json::Str(job.clone()))
                .set("insns", Json::Num(*insns as f64))
                .set("report", Json::Str(report.clone())),
            Frame::Quarantine { job, class, message } => doc
                .set("job", Json::Str(job.clone()))
                .set("class", Json::Str(class.clone()))
                .set("message", Json::Str(message.clone())),
            Frame::Release { job, worker } => {
                doc.set("job", Json::Str(job.clone())).set("worker", Json::Num(*worker as f64))
            }
            Frame::Ack { job, drain } => {
                doc.set("job", Json::Str(job.clone())).set("drain", Json::Bool(*drain))
            }
            Frame::Result { job, label, report } => doc
                .set("job", Json::Str(job.clone()))
                .set("label", Json::Str(label.clone()))
                .set("report", Json::Str(report.clone())),
            Frame::CampaignDone { completed, quarantined } => doc
                .set("completed", Json::Num(*completed as f64))
                .set("quarantined", Json::Num(*quarantined as f64)),
        }
    }

    /// Parse a payload object back into a frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] on a schema mismatch,
    /// [`WireError::UnknownFrame`]/[`WireError::UnknownRole`] on unknown
    /// discriminants, [`WireError::MissingField`]/[`WireError::BadJson`]
    /// on malformed payloads.
    pub fn from_json(doc: &Json) -> Result<Frame, WireError> {
        check_schema(doc, WIRE_SCHEMA).map_err(WireError::Unsupported)?;
        let kind = get_str(doc, "frame")?;
        match kind.as_str() {
            "hello" => Ok(Frame::Hello {
                role: Role::from_str(&get_str(doc, "role")?)?,
                worker: get_u64(doc, "worker")?,
            }),
            "hello_ack" => {
                Ok(Frame::HelloAck { lease_timeout_ms: get_u64(doc, "lease_timeout_ms")? })
            }
            "fetch" => Ok(Frame::Fetch { worker: get_u64(doc, "worker")? }),
            "job" => {
                let spec_doc = doc.get("spec").ok_or(WireError::MissingField("spec"))?;
                let spec = JobSpec::from_json(spec_doc).map_err(WireError::BadJson)?;
                Ok(Frame::Job {
                    job: get_str(doc, "job")?,
                    spec,
                    attempts: get_u64(doc, "attempts")? as u32,
                    chunk: get_u64(doc, "chunk")?,
                    budget: doc.get("budget").and_then(Json::as_f64).map(|v| v as u64),
                    max_attempts: get_u64(doc, "max_attempts")? as u32,
                    resume: opt_str(doc, "resume"),
                })
            }
            "idle" => Ok(Frame::Idle),
            "done" => Ok(Frame::Done),
            "heartbeat" => {
                Ok(Frame::Heartbeat { worker: get_u64(doc, "worker")?, job: get_str(doc, "job")? })
            }
            "progress" => Ok(Frame::Progress {
                job: get_str(doc, "job")?,
                insns: get_u64(doc, "insns")?,
                checkpoint: get_str(doc, "checkpoint")?,
            }),
            "retry" => Ok(Frame::Retry {
                job: get_str(doc, "job")?,
                attempt: get_u64(doc, "attempt")? as u32,
                class: get_str(doc, "class")?,
                checkpoint: opt_str(doc, "checkpoint"),
            }),
            "retire" => Ok(Frame::Retire {
                job: get_str(doc, "job")?,
                insns: get_u64(doc, "insns")?,
                report: get_str(doc, "report")?,
            }),
            "quarantine" => Ok(Frame::Quarantine {
                job: get_str(doc, "job")?,
                class: get_str(doc, "class")?,
                message: get_str(doc, "message")?,
            }),
            "release" => {
                Ok(Frame::Release { job: get_str(doc, "job")?, worker: get_u64(doc, "worker")? })
            }
            "ack" => Ok(Frame::Ack {
                job: get_str(doc, "job")?,
                drain: matches!(doc.get("drain"), Some(Json::Bool(true))),
            }),
            "result" => Ok(Frame::Result {
                job: get_str(doc, "job")?,
                label: get_str(doc, "label")?,
                report: get_str(doc, "report")?,
            }),
            "campaign_done" => Ok(Frame::CampaignDone {
                completed: get_u64(doc, "completed")?,
                quarantined: get_u64(doc, "quarantined")?,
            }),
            other => Err(WireError::UnknownFrame(other.to_string())),
        }
    }
}

/// Encode a frame to its wire bytes: 8 lowercase hex digits of payload
/// length, the compact JSON payload, a `\n` terminator.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.to_json().render_compact();
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.extend_from_slice(format!("{:08x}", payload.len()).as_bytes());
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Total byte length of the first complete frame in `buf`, without
/// parsing the payload. This is the framing-only half of
/// [`decode_frame`]; the chaos proxy uses it to forward frames it
/// deliberately corrupts.
///
/// # Errors
///
/// [`WireError::Truncated`] when more bytes are needed,
/// [`WireError::BadLength`]/[`WireError::Oversized`]/
/// [`WireError::Unterminated`] on malformed framing.
pub fn frame_span(buf: &[u8]) -> Result<usize, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated { have: buf.len(), need: 8 });
    }
    let prefix = &buf[..8];
    let text =
        std::str::from_utf8(prefix).map_err(|_| WireError::BadLength(format!("{prefix:?}")))?;
    if !text.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return Err(WireError::BadLength(text.to_string()));
    }
    let len =
        usize::from_str_radix(text, 16).map_err(|_| WireError::BadLength(text.to_string()))?;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len, max: MAX_FRAME });
    }
    let total = 8 + len + 1;
    if buf.len() < total {
        return Err(WireError::Truncated { have: buf.len(), need: total });
    }
    if buf[8 + len] != b'\n' {
        return Err(WireError::Unterminated);
    }
    Ok(total)
}

/// Strictly decode the first complete frame in `buf`, returning the
/// frame and the number of bytes consumed.
///
/// # Errors
///
/// Everything [`frame_span`] rejects, plus [`WireError::BadJson`] /
/// [`WireError::Unsupported`] / [`WireError::MissingField`] /
/// [`WireError::UnknownFrame`] on payload problems. Never panics on
/// hostile bytes.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    let total = frame_span(buf)?;
    let payload =
        std::str::from_utf8(&buf[8..total - 1]).map_err(|e| WireError::BadJson(e.to_string()))?;
    let doc = Json::parse(payload).map_err(WireError::BadJson)?;
    Ok((Frame::from_json(&doc)?, total))
}

/// A [`TcpStream`] with frame-level send/recv and per-connection
/// read/write deadlines.
pub struct FramedStream {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FramedStream {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> FramedStream {
        FramedStream { stream, buf: Vec::new() }
    }

    /// Set the read and write deadlines (`None` = block forever).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket rejects the option.
    pub fn set_deadlines(
        &self,
        read_ms: Option<u64>,
        write_ms: Option<u64>,
    ) -> Result<(), WireError> {
        self.stream
            .set_read_timeout(read_ms.map(Duration::from_millis))
            .and_then(|()| self.stream.set_write_timeout(write_ms.map(Duration::from_millis)))
            .map_err(|e| WireError::Io(e.to_string()))
    }

    /// Send one frame (blocking up to the write deadline).
    ///
    /// # Errors
    ///
    /// [`WireError::TimedOut`] on deadline expiry, [`WireError::Closed`]
    /// on a dead peer, [`WireError::Io`] otherwise.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.stream.write_all(&encode_frame(frame)).map_err(io_err)
    }

    /// Receive one frame (blocking up to the read deadline).
    ///
    /// # Errors
    ///
    /// [`WireError::TimedOut`] on deadline expiry, [`WireError::Closed`]
    /// on EOF, and any strict-parse error from [`decode_frame`] (the
    /// malformed bytes are discarded so a later recv can resync).
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        loop {
            match decode_frame(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Err(WireError::Truncated { .. }) => {}
                Err(err) => {
                    // Drop what we can attribute to the bad frame; the
                    // caller will normally reconnect anyway.
                    if let Ok(total) = frame_span(&self.buf) {
                        self.buf.drain(..total);
                    } else {
                        self.buf.clear();
                    }
                    return Err(err);
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

fn io_err(e: std::io::Error) -> WireError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::TimedOut,
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => WireError::Closed,
        _ => WireError::Io(e.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Chaos proxy
// ---------------------------------------------------------------------------

/// Seeded fault plan for a [`ChaosProxy`]. Probabilities are per-mille
/// per forwarded frame, rolled from a per-connection [`XorShift64`]
/// stream, so a given `(seed, connection index)` pair replays the same
/// fault schedule every run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Base RNG seed; each connection derives its own stream from it.
    pub seed: u64,
    /// Per-mille chance a frame is silently dropped.
    pub drop_per_mille: u64,
    /// Per-mille chance a frame is delivered twice.
    pub dup_per_mille: u64,
    /// Per-mille chance a frame is delayed before delivery.
    pub delay_per_mille: u64,
    /// Maximum seeded delay in milliseconds.
    pub max_delay_ms: u64,
    /// Per-mille chance one bit of a frame is flipped (the connection
    /// is severed right after, as a real corrupted stream would be).
    pub corrupt_per_mille: u64,
    /// Per-mille chance a frame is cut mid-byte and the connection
    /// severed.
    pub truncate_per_mille: u64,
    /// Hard sever: cut connection `index` after forwarding `count`
    /// server-to-client frames.
    pub sever_after_frames: Option<(u64, u64)>,
}

/// Monotone fault counters observed by a [`ChaosProxy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Connections proxied.
    pub connections: u64,
    /// Frames seen (both directions).
    pub frames: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Frames bit-flipped (each also severs its connection).
    pub corrupted: u64,
    /// Frames truncated (each also severs its connection).
    pub truncated: u64,
    /// Connections hard-severed by `sever_after_frames`.
    pub severed: u64,
}

#[derive(Default)]
struct ChaosStats {
    connections: AtomicU64,
    frames: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    corrupted: AtomicU64,
    truncated: AtomicU64,
    severed: AtomicU64,
}

/// A deterministic in-process TCP fault injector: accepts connections,
/// relays frames to an upstream address, and applies the seeded
/// [`ChaosConfig`] faults per frame. Because faults are rolled from a
/// per-connection seeded stream, a test can name an exact failure
/// ("sever connection 2 after 5 frames") and replay it forever.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port, relaying to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the listener cannot bind.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> Result<ChaosProxy, WireError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| WireError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| WireError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| WireError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let (stop2, stats2) = (Arc::clone(&stop), Arc::clone(&stats));
        let handle = std::thread::spawn(move || {
            let mut pumps = Vec::new();
            let mut index = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((down, _)) => {
                        stats2.connections.fetch_add(1, Ordering::SeqCst);
                        if let Ok(up) = TcpStream::connect(upstream) {
                            spawn_pumps(down, up, index, config, &stats2, &stop2, &mut pumps);
                        } else {
                            let _ = down.shutdown(Shutdown::Both);
                        }
                        index += 1;
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for p in pumps {
                let _ = p.join();
            }
        });
        Ok(ChaosProxy { addr, stop, stats, handle: Some(handle) })
    }

    /// The proxy's listening address (point workers here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the fault counters.
    pub fn counts(&self) -> ChaosCounts {
        ChaosCounts {
            connections: self.stats.connections.load(Ordering::SeqCst),
            frames: self.stats.frames.load(Ordering::SeqCst),
            dropped: self.stats.dropped.load(Ordering::SeqCst),
            duplicated: self.stats.duplicated.load(Ordering::SeqCst),
            delayed: self.stats.delayed.load(Ordering::SeqCst),
            corrupted: self.stats.corrupted.load(Ordering::SeqCst),
            truncated: self.stats.truncated.load(Ordering::SeqCst),
            severed: self.stats.severed.load(Ordering::SeqCst),
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn spawn_pumps(
    down: TcpStream,
    up: TcpStream,
    index: u64,
    config: ChaosConfig,
    stats: &Arc<ChaosStats>,
    stop: &Arc<AtomicBool>,
    pumps: &mut Vec<std::thread::JoinHandle<()>>,
) {
    let (Ok(down2), Ok(up2)) = (down.try_clone(), up.try_clone()) else {
        let _ = down.shutdown(Shutdown::Both);
        let _ = up.shutdown(Shutdown::Both);
        return;
    };
    let sever =
        config.sever_after_frames.and_then(|(conn, count)| (conn == index).then_some(count));
    let seed = config.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (sa, sb) = (Arc::clone(stats), Arc::clone(stats));
    let (ka, kb) = (Arc::clone(stop), Arc::clone(stop));
    // Client-to-server carries requests; server-to-client carries
    // replies and the result stream (and hosts the seeded hard sever).
    pumps.push(std::thread::spawn(move || {
        pump(down, up, XorShift64::new(seed), config, sa, ka, None);
    }));
    pumps.push(std::thread::spawn(move || {
        pump(up2, down2, XorShift64::new(seed ^ 1), config, sb, kb, sever);
    }));
}

/// Relay one direction of a proxied connection frame-by-frame, applying
/// the seeded fault rolls.
fn pump(
    src: TcpStream,
    mut dst: TcpStream,
    mut rng: XorShift64,
    cfg: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    sever_after: Option<u64>,
) {
    let mut src = src;
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf: Vec<u8> = Vec::new();
    let mut forwarded = 0u64;
    let sever = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            sever(&src, &dst);
            return;
        }
        loop {
            let span = match frame_span(&buf) {
                Ok(span) => span,
                Err(WireError::Truncated { .. }) => break,
                Err(_) => {
                    // Un-frameable bytes (already-corrupted upstream):
                    // pass through verbatim and let the endpoint's
                    // strict parser deal with it.
                    let raw = std::mem::take(&mut buf);
                    if dst.write_all(&raw).is_err() {
                        sever(&src, &dst);
                        return;
                    }
                    break;
                }
            };
            let mut frame: Vec<u8> = buf.drain(..span).collect();
            stats.frames.fetch_add(1, Ordering::SeqCst);
            if sever_after.is_some_and(|n| forwarded >= n) {
                stats.severed.fetch_add(1, Ordering::SeqCst);
                sever(&src, &dst);
                return;
            }
            forwarded += 1;
            let roll = rng.below(1000);
            let (p_drop, p_dup, p_delay) =
                (cfg.drop_per_mille, cfg.dup_per_mille, cfg.delay_per_mille);
            let (p_corrupt, p_trunc) = (cfg.corrupt_per_mille, cfg.truncate_per_mille);
            if roll < p_drop {
                stats.dropped.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            if roll < p_drop + p_dup {
                stats.duplicated.fetch_add(1, Ordering::SeqCst);
                if dst.write_all(&frame).is_err() || dst.write_all(&frame).is_err() {
                    sever(&src, &dst);
                    return;
                }
                continue;
            }
            if roll < p_drop + p_dup + p_delay {
                stats.delayed.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(rng.below(cfg.max_delay_ms + 1)));
                if dst.write_all(&frame).is_err() {
                    sever(&src, &dst);
                    return;
                }
                continue;
            }
            if roll < p_drop + p_dup + p_delay + p_corrupt {
                stats.corrupted.fetch_add(1, Ordering::SeqCst);
                let byte = rng.below(frame.len() as u64) as usize;
                let bit = rng.below(8) as u32;
                frame[byte] ^= 1 << bit;
                let _ = dst.write_all(&frame);
                sever(&src, &dst);
                return;
            }
            if roll < p_drop + p_dup + p_delay + p_corrupt + p_trunc {
                stats.truncated.fetch_add(1, Ordering::SeqCst);
                let cut = rng.below(frame.len() as u64) as usize;
                let _ = dst.write_all(&frame[..cut]);
                sever(&src, &dst);
                return;
            }
            if dst.write_all(&frame).is_err() {
                sever(&src, &dst);
                return;
            }
        }
        let mut chunk = [0u8; 4096];
        match src.read(&mut chunk) {
            Ok(0) => {
                sever(&src, &dst);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(ref e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                sever(&src, &dst);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Options for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Wall-clock bound: when it elapses the campaign drains gracefully
    /// (in-flight jobs checkpoint and release) instead of exiting
    /// abruptly.
    pub deadline: Option<Duration>,
    /// Per-connection read deadline / done-flag poll cadence in
    /// milliseconds.
    pub poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { deadline: None, poll_ms: 200 }
    }
}

/// What [`serve`] observed by the time the campaign finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSummary {
    /// Jobs completed.
    pub completed: u64,
    /// Jobs quarantined.
    pub quarantined: u64,
    /// Connections accepted (workers and subscribers).
    pub connections: u64,
    /// Whether the campaign ended by graceful drain rather than by
    /// finishing every job.
    pub drained: bool,
}

/// Serve a campaign's jobs to remote worker shards and stream retired
/// results to subscribers, until every submitted job is terminal (or a
/// drain empties the in-flight set). All durable state stays on this
/// side: workers only ever see job specs and send back outcomes, every
/// one of which lands through the same idempotent, crash-ordered paths
/// the in-process workers use.
///
/// # Errors
///
/// [`WireError::Io`] when the listener cannot be made nonblocking.
pub fn serve(
    campaign: &Campaign,
    listener: TcpListener,
    opts: &ServeOptions,
) -> Result<RemoteSummary, WireError> {
    listener.set_nonblocking(true).map_err(|e| WireError::Io(e.to_string()))?;
    let done = AtomicBool::new(false);
    let connections = AtomicU64::new(0);
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    std::thread::scope(|scope| {
        loop {
            if campaign.outstanding() == 0 {
                break;
            }
            if campaign.is_draining() && campaign.live_leases() == 0 {
                break;
            }
            if let Some(dl) = deadline {
                if Instant::now() >= dl && !campaign.is_draining() {
                    campaign.drain();
                }
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    connections.fetch_add(1, Ordering::SeqCst);
                    let done = &done;
                    scope.spawn(move || handle_connection(campaign, stream, done, opts.poll_ms));
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        done.store(true, Ordering::SeqCst);
    });
    let (completed, quarantined) = terminal_counts(campaign);
    Ok(RemoteSummary {
        completed,
        quarantined,
        connections: connections.load(Ordering::SeqCst),
        drained: campaign.is_draining(),
    })
}

fn terminal_counts(campaign: &Campaign) -> (u64, u64) {
    let (mut completed, mut quarantined) = (0u64, 0u64);
    for id in campaign.job_ids() {
        match campaign.status(&id) {
            Some(JobStatus::Completed) => completed += 1,
            Some(JobStatus::Quarantined { .. }) => quarantined += 1,
            _ => {}
        }
    }
    (completed, quarantined)
}

/// Serve one accepted connection: handshake, then dispatch by role.
fn handle_connection(campaign: &Campaign, stream: TcpStream, done: &AtomicBool, poll_ms: u64) {
    let t0 = Instant::now();
    let mut fs = FramedStream::new(stream);
    if fs.set_deadlines(Some(poll_ms), Some(WRITE_DEADLINE_MS)).is_err() {
        return;
    }
    let hello = loop {
        match fs.recv() {
            Ok(frame) => break frame,
            Err(WireError::TimedOut) => {
                if done.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    let Frame::Hello { role, worker } = hello else { return };
    if fs.send(&Frame::HelloAck { lease_timeout_ms: campaign.config.lease_timeout_ms }).is_err() {
        return;
    }
    if let Some(hub) = &campaign.telemetry {
        hub.phase_host("connect", t0.elapsed().as_nanos() as u64);
        hub.count_host("campaign.remote.connects", 1);
    }
    match role {
        Role::Worker => worker_session(campaign, fs, worker, done),
        Role::Subscriber => subscriber_session(campaign, fs, done),
    }
}

/// Per-connection write deadline: generous, but bounded — a wedged peer
/// must not pin a handler thread forever.
const WRITE_DEADLINE_MS: u64 = 5_000;

/// Serve one worker connection. Every frame lands through an idempotent
/// campaign transition, so replays after reconnects converge instead of
/// double-counting; a server-side failure drops the connection and lets
/// the worker's reconnect-and-resend loop drive convergence.
fn worker_session(
    campaign: &Campaign,
    mut fs: FramedStream,
    _hello_worker: u64,
    done: &AtomicBool,
) {
    loop {
        let frame = match fs.recv() {
            Ok(frame) => frame,
            Err(WireError::TimedOut) => {
                if done.load(Ordering::SeqCst) {
                    let _ = fs.send(&Frame::Done);
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let drain = campaign.is_draining();
        let reply = match frame {
            Frame::Fetch { worker } => {
                // Re-deliver an in-flight lease first (idempotent
                // re-delivery keyed by the content-addressed id): a
                // worker that lost the Job frame gets the same job and
                // its latest checkpoint back, instead of waiting out
                // its own lease.
                let claim = match campaign.leased_to(worker) {
                    Some(job) => {
                        campaign.touch_lease(&job.id, worker);
                        Claim::Job(job)
                    }
                    None => campaign.claim_for(worker),
                };
                match claim {
                    Claim::Job(job) => Some(job_frame(campaign, &job)),
                    Claim::Busy => Some(Frame::Idle),
                    Claim::Drained | Claim::Finished => Some(Frame::Done),
                }
            }
            Frame::Heartbeat { worker, job } => {
                campaign.touch_lease(&job, worker);
                None
            }
            Frame::Progress { job, insns, checkpoint } => {
                if !campaign.remote_progress(&job, insns, &checkpoint) {
                    return;
                }
                Some(Frame::Ack { job, drain })
            }
            Frame::Retry { job, attempt, class, checkpoint } => {
                let label = campaign.spec(&job).map(|s| s.label()).unwrap_or_else(|| job.clone());
                if !campaign.remote_retry(&job, &label, attempt, &class, checkpoint.as_deref()) {
                    return;
                }
                Some(Frame::Ack { job, drain })
            }
            Frame::Retire { job, insns, report } => {
                match campaign.remote_retire(&job, insns, &report) {
                    RetireOutcome::Recorded | RetireOutcome::Duplicate => {
                        Some(Frame::Ack { job, drain })
                    }
                    RetireOutcome::Failed => return,
                }
            }
            Frame::Quarantine { job, class, message } => {
                if !campaign.remote_quarantine(&job, &class, &message) {
                    return;
                }
                Some(Frame::Ack { job, drain })
            }
            Frame::Release { job, worker } => {
                campaign.remote_release(&job, worker);
                Some(Frame::Ack { job, drain })
            }
            Frame::Done => return,
            _ => return,
        };
        if let Some(reply) = reply {
            if fs.send(&reply).is_err() {
                return;
            }
        }
    }
}

/// Build the `Job` frame for a leased job, carrying the campaign's
/// execution parameters and the latest persisted checkpoint.
fn job_frame(campaign: &Campaign, job: &LeasedJob) -> Frame {
    Frame::Job {
        job: job.id.clone(),
        spec: job.spec,
        attempts: job.attempts,
        chunk: campaign.config.chunk,
        budget: campaign.config.budget,
        max_attempts: campaign.config.max_attempts,
        resume: campaign.resume_text(&job.id),
    }
}

/// Serve one subscriber connection: push every terminal job's cached
/// report exactly once (per-connection dedup set), then `CampaignDone`
/// once the campaign has finished and everything has been streamed.
/// A late subscriber replays the backlog first — same code path.
fn subscriber_session(campaign: &Campaign, mut fs: FramedStream, done: &AtomicBool) {
    let mut sent: HashSet<String> = HashSet::new();
    loop {
        let mut progressed = false;
        for id in campaign.job_ids() {
            if sent.contains(&id) {
                continue;
            }
            let terminal = matches!(
                campaign.status(&id),
                Some(JobStatus::Completed | JobStatus::Quarantined { .. })
            );
            if !terminal {
                continue;
            }
            let Ok(report) = std::fs::read_to_string(campaign.cache_path(&id)) else { continue };
            let label = campaign.spec(&id).map(|s| s.label()).unwrap_or_else(|| id.clone());
            let t0 = Instant::now();
            if fs.send(&Frame::Result { job: id.clone(), label, report }).is_err() {
                return;
            }
            if let Some(hub) = &campaign.telemetry {
                hub.phase_host("stream", t0.elapsed().as_nanos() as u64);
                hub.count_host("campaign.remote.results_streamed", 1);
            }
            sent.insert(id);
            progressed = true;
        }
        if done.load(Ordering::SeqCst) {
            let (completed, quarantined) = terminal_counts(campaign);
            if sent.len() as u64 >= completed + quarantined {
                let _ = fs.send(&Frame::CampaignDone { completed, quarantined });
                return;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

// ---------------------------------------------------------------------------
// Worker client
// ---------------------------------------------------------------------------

/// Options for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server (or chaos proxy) address, `host:port`.
    pub addr: String,
    /// Worker shard id, carried in every lease-touching frame.
    pub worker: u64,
    /// Seed for the reconnect backoff jitter.
    pub seed: u64,
    /// Per-recv read deadline in milliseconds.
    pub read_timeout_ms: u64,
    /// Per-send write deadline in milliseconds.
    pub write_timeout_ms: u64,
    /// Connect/exchange attempts before giving the server up for dead.
    pub max_net_attempts: u32,
    /// Sleep between `Idle` fetches in milliseconds.
    pub poll_ms: u64,
}

impl WorkerOptions {
    /// Conventional defaults for a worker talking to `addr`.
    pub fn new(addr: impl Into<String>, worker: u64) -> WorkerOptions {
        WorkerOptions {
            addr: addr.into(),
            worker,
            seed: 0x57A9_E5ED ^ worker,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            max_net_attempts: 40,
            poll_ms: 20,
        }
    }
}

/// What a worker shard did before exiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Jobs this shard picked up (including re-deliveries).
    pub jobs_run: u64,
    /// Frames sent (requests and heartbeats).
    pub frames_sent: u64,
    /// Times the connection was re-established after the first.
    pub reconnects: u64,
    /// True when the server said [`Frame::Done`]; false when the shard
    /// gave the server up for dead after exhausting reconnect attempts.
    pub clean: bool,
}

/// The worker side of the wire: connect (with seeded exponential
/// backoff), fetch and execute jobs, and report every state transition
/// through an at-least-once exchange the server is idempotent against.
/// Returns when the server says [`Frame::Done`] or stops answering.
pub fn run_worker(opts: &WorkerOptions) -> WorkerSummary {
    let mut client = Client::new(opts);
    let mut jobs_run = 0u64;
    let clean = loop {
        match client.exchange(&Frame::Fetch { worker: opts.worker }) {
            Ok(Frame::Job { job, spec, attempts, chunk, budget, max_attempts, resume }) => {
                jobs_run += 1;
                if run_job(
                    &mut client,
                    opts,
                    &job,
                    spec,
                    attempts,
                    chunk,
                    budget,
                    max_attempts,
                    resume,
                )
                .is_err()
                {
                    break false;
                }
            }
            Ok(Frame::Idle) => std::thread::sleep(Duration::from_millis(opts.poll_ms)),
            Ok(Frame::Done) => break true,
            Ok(_) | Err(_) => break false,
        }
    };
    WorkerSummary {
        jobs_run,
        frames_sent: client.frames_sent,
        reconnects: client.reconnects,
        clean,
    }
}

/// Reconnecting framed client: strict request-reply with at-least-once
/// resend on any wire error or reply desync.
struct Client<'a> {
    opts: &'a WorkerOptions,
    stream: Option<FramedStream>,
    rng: XorShift64,
    reconnects: u64,
    frames_sent: u64,
    ever_connected: bool,
}

impl<'a> Client<'a> {
    fn new(opts: &'a WorkerOptions) -> Client<'a> {
        Client {
            opts,
            stream: None,
            rng: XorShift64::new(opts.seed ^ 0xC0_FFEE),
            reconnects: 0,
            frames_sent: 0,
            ever_connected: false,
        }
    }

    /// Connect and handshake, with seeded exponential backoff between
    /// attempts (base 10 ms, doubling, seeded jitter, 500 ms cap).
    fn connect(&mut self) -> Result<(), WireError> {
        let mut delay = 10u64;
        for _ in 0..self.opts.max_net_attempts {
            if let Ok(stream) = TcpStream::connect(&self.opts.addr) {
                let mut fs = FramedStream::new(stream);
                if fs
                    .set_deadlines(
                        Some(self.opts.read_timeout_ms),
                        Some(self.opts.write_timeout_ms),
                    )
                    .is_ok()
                    && fs
                        .send(&Frame::Hello { role: Role::Worker, worker: self.opts.worker })
                        .is_ok()
                    && matches!(fs.recv(), Ok(Frame::HelloAck { .. }))
                {
                    if self.ever_connected {
                        self.reconnects += 1;
                    }
                    self.ever_connected = true;
                    self.stream = Some(fs);
                    return Ok(());
                }
            }
            std::thread::sleep(Duration::from_millis(delay + self.rng.below(delay)));
            delay = (delay * 2).min(500);
        }
        Err(WireError::Closed)
    }

    /// Send `frame` and wait for its reply, reconnecting and resending
    /// on any failure. An unexpected reply kind means the stream is
    /// desynced (a fault duplicated or dropped a reply); reconnecting
    /// flushes it, and the resend is safe because every server
    /// transition is idempotent.
    fn exchange(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        for _ in 0..self.opts.max_net_attempts {
            if self.stream.is_none() && self.connect().is_err() {
                return Err(WireError::Closed);
            }
            let fs = self.stream.as_mut().expect("connected");
            if fs.send(frame).is_err() {
                self.stream = None;
                continue;
            }
            self.frames_sent += 1;
            match fs.recv() {
                Ok(reply) if reply_matches(frame, &reply) => return Ok(reply),
                Ok(Frame::Done) => return Ok(Frame::Done),
                Ok(_) | Err(_) => self.stream = None,
            }
        }
        Err(WireError::TimedOut)
    }

    /// Fire-and-forget send (heartbeats): failures just drop the
    /// connection and let the next exchange reconnect.
    fn send_oneway(&mut self, frame: &Frame) {
        if let Some(fs) = &mut self.stream {
            if fs.send(frame).is_ok() {
                self.frames_sent += 1;
            } else {
                self.stream = None;
            }
        }
    }
}

/// Is `reply` a legal answer to `request`?
fn reply_matches(request: &Frame, reply: &Frame) -> bool {
    match request {
        Frame::Fetch { .. } => matches!(reply, Frame::Job { .. } | Frame::Idle),
        Frame::Progress { job, .. }
        | Frame::Retry { job, .. }
        | Frame::Retire { job, .. }
        | Frame::Quarantine { job, .. }
        | Frame::Release { job, .. } => {
            matches!(reply, Frame::Ack { job: ack_job, .. } if ack_job == job)
        }
        _ => false,
    }
}

/// Execute one leased job on the worker, mirroring the in-process
/// execute loop chunk for chunk: same grid, same seeded budget
/// widening, same retry/quarantine thresholds, and — critically — the
/// same report rendering, so the bytes the server caches are identical
/// no matter which side ran the job.
#[allow(clippy::too_many_arguments)]
fn run_job(
    client: &mut Client<'_>,
    opts: &WorkerOptions,
    id: &str,
    spec: JobSpec,
    mut attempts: u32,
    chunk: u64,
    budget: Option<u64>,
    max_attempts: u32,
    resume_text: Option<String>,
) -> Result<(), WireError> {
    let label = spec.label();
    let digest = spec.digest();
    let workload = crate::apps::Workload::new(spec.app, spec.scale, spec.seed);
    let cfg = spec.hw.config();
    let mut resume: Option<Checkpoint> = resume_text.and_then(|text| checkpoint::parse(&text).ok());
    loop {
        client.send_oneway(&Frame::Heartbeat { worker: opts.worker, job: id.to_string() });
        let done = resume.as_ref().map_or(0, |c| c.insns_total);
        let wbudget = budget.map(|b| widened_budget(digest, b, attempts));
        let slice_end = match (chunk, wbudget) {
            (0, None) => None,
            (0, Some(b)) => Some(b),
            (c, None) => Some((done / c + 1) * c),
            (c, Some(b)) => Some(((done / c + 1) * c).min(b)),
        };
        let watchdog =
            slice_end.map(|e| power5_sim::Watchdog { max_cycles: None, max_instructions: Some(e) });
        let result = match (&resume, watchdog) {
            (Some(ck), Some(wd)) => workload.resume_instrumented(spec.variant, &cfg, ck, wd, None),
            _ => workload.run_full_instrumented(
                spec.variant,
                &cfg,
                None,
                watchdog,
                power5_sim::LockstepMode::Off,
                None,
            ),
        };
        use crate::apps::RunError;
        match result {
            Ok(run) => {
                if run.validated {
                    let report = job_report(&label, spec, &run);
                    client.exchange(&Frame::Retire {
                        job: id.to_string(),
                        insns: run.counters.instructions,
                        report: report.render_json(),
                    })?;
                } else {
                    let what = format!(
                        "{label}: output mismatch: {}",
                        run.mismatches.first().map(String::as_str).unwrap_or("?")
                    );
                    client.exchange(&Frame::Quarantine {
                        job: id.to_string(),
                        class: "validation".to_string(),
                        message: what,
                    })?;
                }
                return Ok(());
            }
            Err(RunError::Timeout { checkpoint, .. }) => {
                let hit_budget = wbudget.is_some_and(|b| checkpoint.insns_total >= b);
                if hit_budget {
                    attempts += 1;
                    if attempts >= max_attempts {
                        let msg = format!(
                            "{label}: budget exhausted after {} attempts ({} insns)",
                            attempts, checkpoint.insns_total
                        );
                        client.exchange(&Frame::Quarantine {
                            job: id.to_string(),
                            class: "timeout".to_string(),
                            message: msg,
                        })?;
                        return Ok(());
                    }
                    client.exchange(&Frame::Retry {
                        job: id.to_string(),
                        attempt: attempts,
                        class: "timeout".to_string(),
                        checkpoint: Some(checkpoint::render(&checkpoint)),
                    })?;
                    resume = Some(*checkpoint);
                } else {
                    let reply = client.exchange(&Frame::Progress {
                        job: id.to_string(),
                        insns: checkpoint.insns_total,
                        checkpoint: checkpoint::render(&checkpoint),
                    })?;
                    resume = Some(*checkpoint);
                    match reply {
                        Frame::Ack { drain: true, .. } => {
                            let _ = client.exchange(&Frame::Release {
                                job: id.to_string(),
                                worker: opts.worker,
                            });
                            return Ok(());
                        }
                        Frame::Done => return Ok(()),
                        _ => {}
                    }
                }
            }
            Err(err @ (RunError::Trap(_) | RunError::Divergence { .. })) => {
                attempts += 1;
                let class = err.class();
                let msg = format!("{label}: {err}");
                if attempts >= max_attempts {
                    client.exchange(&Frame::Quarantine {
                        job: id.to_string(),
                        class: class.to_string(),
                        message: msg,
                    })?;
                    return Ok(());
                }
                client.exchange(&Frame::Retry {
                    job: id.to_string(),
                    attempt: attempts,
                    class: class.to_string(),
                    checkpoint: None,
                })?;
                resume = None;
            }
            Err(err) => {
                let msg = format!("{label}: {err}");
                client.exchange(&Frame::Quarantine {
                    job: id.to_string(),
                    class: err.class().to_string(),
                    message: msg,
                })?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        let spec = JobSpec {
            app: crate::apps::App::Fasta,
            variant: crate::apps::Variant::Baseline,
            hw: crate::experiments::Hw::Stock,
            scale: crate::apps::Scale::Test,
            seed: 42,
        };
        vec![
            Frame::Hello { role: Role::Worker, worker: 7 },
            Frame::Hello { role: Role::Subscriber, worker: 0 },
            Frame::HelloAck { lease_timeout_ms: 1500 },
            Frame::Fetch { worker: 7 },
            Frame::Job {
                job: spec.id(),
                spec,
                attempts: 1,
                chunk: 20_000,
                budget: Some(1_000_000),
                max_attempts: 3,
                resume: Some("ck".to_string()),
            },
            Frame::Job {
                job: "x".to_string(),
                spec,
                attempts: 0,
                chunk: 0,
                budget: None,
                max_attempts: 3,
                resume: None,
            },
            Frame::Idle,
            Frame::Done,
            Frame::Heartbeat { worker: 7, job: "j".to_string() },
            Frame::Progress { job: "j".to_string(), insns: 40_000, checkpoint: "c".to_string() },
            Frame::Retry {
                job: "j".to_string(),
                attempt: 2,
                class: "timeout".to_string(),
                checkpoint: Some("c".to_string()),
            },
            Frame::Retry {
                job: "j".to_string(),
                attempt: 1,
                class: "trap".to_string(),
                checkpoint: None,
            },
            Frame::Retire { job: "j".to_string(), insns: 123, report: "{}".to_string() },
            Frame::Quarantine {
                job: "j".to_string(),
                class: "validation".to_string(),
                message: "boom".to_string(),
            },
            Frame::Release { job: "j".to_string(), worker: 7 },
            Frame::Ack { job: "j".to_string(), drain: true },
            Frame::Ack { job: "j".to_string(), drain: false },
            Frame::Result {
                job: "j".to_string(),
                label: "fasta/baseline/stock".to_string(),
                report: "{\"a\":1}".to_string(),
            },
            Frame::CampaignDone { completed: 3, quarantined: 1 },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for frame in frames() {
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "{frame:?}");
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn truncation_is_typed_at_every_prefix() {
        let bytes = encode_frame(&Frame::Idle);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_and_malformed_prefixes_are_rejected() {
        let mut bytes = encode_frame(&Frame::Idle);
        bytes[0] = b'f';
        bytes[1] = b'f';
        assert!(matches!(decode_frame(&bytes), Err(WireError::Oversized { .. })));
        let mut bytes = encode_frame(&Frame::Idle);
        bytes[0] = b'Z';
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadLength(_))));
        let mut bytes = encode_frame(&Frame::Idle);
        let last = bytes.len() - 1;
        bytes[last] = b'x';
        assert!(matches!(decode_frame(&bytes), Err(WireError::Unterminated)));
    }

    #[test]
    fn progress_frame_carries_a_real_checkpoint_intact() {
        // A rendered checkpoint is a multi-kilobyte pretty-printed JSON
        // document (newlines, quotes, hex pages) embedded as a string
        // field — exactly the payload shape the string escaper must not
        // mangle on the wire.
        let workload =
            crate::apps::Workload::new(crate::apps::App::Fasta, crate::apps::Scale::Test, 42);
        let cfg = crate::experiments::Hw::Stock.config();
        let wd = power5_sim::Watchdog { max_cycles: None, max_instructions: Some(20_000) };
        let err = workload
            .run_full_instrumented(
                crate::apps::Variant::Baseline,
                &cfg,
                None,
                Some(wd),
                power5_sim::LockstepMode::Off,
                None,
            )
            .expect_err("20k insns must hit the watchdog");
        let crate::apps::RunError::Timeout { checkpoint, .. } = err else {
            panic!("expected timeout, got {err:?}");
        };
        let text = checkpoint::render(&checkpoint);
        let frame = Frame::Progress {
            job: "j".to_string(),
            insns: checkpoint.insns_total,
            checkpoint: text.clone(),
        };
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        let Frame::Progress { checkpoint: wire_text, .. } = decoded else {
            panic!("wrong frame kind");
        };
        assert_eq!(wire_text, text, "checkpoint text mangled by the wire");
        checkpoint::parse(&wire_text).expect("wire checkpoint must parse");
    }

    #[test]
    fn wrong_schema_and_unknown_frames_are_typed() {
        let doc = Json::obj()
            .set("schema", Json::Str("bioarch-wire/v9".to_string()))
            .set("frame", Json::Str("idle".to_string()));
        assert!(matches!(Frame::from_json(&doc), Err(WireError::Unsupported(_))));
        let doc = Json::obj()
            .set("schema", Json::Str(WIRE_SCHEMA.to_string()))
            .set("frame", Json::Str("warp".to_string()));
        assert!(matches!(Frame::from_json(&doc), Err(WireError::UnknownFrame(_))));
        let doc = Json::obj()
            .set("schema", Json::Str(WIRE_SCHEMA.to_string()))
            .set("frame", Json::Str("hello".to_string()))
            .set("role", Json::Str("gremlin".to_string()))
            .set("worker", Json::Num(1.0));
        assert!(matches!(Frame::from_json(&doc), Err(WireError::UnknownRole(_))));
    }
}
