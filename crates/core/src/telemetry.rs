//! Runtime telemetry for the suite runner: host phase spans, a shared
//! metrics hub, a streaming JSONL progress sink, and the
//! `bioarch-metrics/v1` document.
//!
//! The paper's methodology samples hardware counters *while workloads
//! run*; this module is the reproduction's equivalent substrate. A
//! [`TelemetryHub`] is attached to a `Study` (see
//! `Study::set_telemetry`); the supervisor then
//!
//! * times host-side phases per job ([`PhaseNanos`]: decode, execute,
//!   oracle check, checkpoint, merge),
//! * turns on the guest sampling profiler
//!   ([`power5_sim::telemetry::GuestProfiler`]) and merges every job's
//!   symbolized hot-region report,
//! * folds deterministic guest metrics and wall-clock host metrics into
//!   two separate [`MetricsRegistry`]s (the guest registry is merged
//!   with commutative operations only, so the parallel and serial suite
//!   paths produce *identical* guest metrics),
//! * streams job-lifecycle events (`started`, `retired`, `retried`,
//!   `resumed`, `quarantined`) plus heartbeats as JSONL while the suite
//!   runs — `examples/suite_top.rs` tails the stream live and
//!   [`check_progress_stream`] validates it in CI.
//!
//! Everything is optional: a study without a hub takes the exact same
//! code paths as before this module existed, and the hub itself costs
//! one `Option` test per job on the host side plus one pointer test per
//! retired basic block on the guest side (the zero-cost-off contract
//! the perf-smoke gate enforces).

use crate::json::Json;
use crate::report::{Direction, Report};
use crate::schema::check_schema;
use power5_sim::telemetry::{Histogram, MetricsRegistry, ProfilerReport};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Schema identifier embedded in every metrics document.
pub const METRICS_SCHEMA: &str = "bioarch-metrics/v1";

/// Host-side wall time of one job's phases, in nanoseconds.
///
/// `decode` covers kernel compilation, assembly, and machine
/// construction; `execute` the timed simulation; `oracle` output
/// readback and golden-model validation; `checkpoint` checkpoint capture
/// and restore; `merge` folding the finished run into the study caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Compile + assemble + load wall time.
    pub decode: u64,
    /// Timed-simulation wall time.
    pub execute: u64,
    /// Readback + golden-model validation wall time.
    pub oracle: u64,
    /// Checkpoint capture/restore wall time.
    pub checkpoint: u64,
    /// Cache-merge wall time (stamped by the suite runner).
    pub merge: u64,
}

impl PhaseNanos {
    /// Sum of all phases.
    pub fn total(&self) -> u64 {
        self.decode + self.execute + self.oracle + self.checkpoint + self.merge
    }

    /// Element-wise accumulate.
    pub fn add(&mut self, other: &PhaseNanos) {
        self.decode += other.decode;
        self.execute += other.execute;
        self.oracle += other.oracle;
        self.checkpoint += other.checkpoint;
        self.merge += other.merge;
    }
}

/// Configuration for a [`TelemetryHub`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Guest sampling-profiler period in retired instructions
    /// (`0` disables guest sampling).
    pub profiler_period: u64,
    /// Progress-sink heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { profiler_period: 4096, heartbeat_ms: 100 }
    }
}

/// One finished job's host-side rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// Job label, e.g. `blast/baseline/Stock`.
    pub job: String,
    /// End-to-end wall time under the supervisor, milliseconds.
    pub wall_ms: f64,
    /// Simulated instructions retired by the final successful attempt.
    pub instructions: u64,
    /// Attempts the supervisor made (1 = first try succeeded).
    pub attempts: u32,
    /// Host phase breakdown.
    pub phases: PhaseNanos,
}

impl JobSpan {
    /// Host simulation rate for this job: simulated MIPS over the job's
    /// supervised wall time.
    pub fn mips(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / (self.wall_ms * 1e3)
        }
    }
}

/// Internal mutable hub state, behind the mutex.
#[derive(Default)]
struct HubState {
    /// Deterministic guest-side metrics (commutative merges only).
    guest: MetricsRegistry,
    /// Wall-clock host-side metrics.
    host: MetricsRegistry,
    /// Merged symbolized guest profile across all jobs.
    profile: ProfilerReport,
    /// Per-job rollups, in retirement order.
    spans: Vec<JobSpan>,
    /// Progress sink (`None` = no streaming).
    sink: Option<Box<dyn Write + Send>>,
    seq: u64,
    jobs_started: u64,
    jobs_retired: u64,
    jobs_quarantined: u64,
    retries: u64,
    resumes: u64,
}

struct HubInner {
    config: TelemetryConfig,
    started: Instant,
    stop: AtomicBool,
    state: Mutex<HubState>,
}

fn lock(state: &Mutex<HubState>) -> MutexGuard<'_, HubState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Emit one JSONL progress event: stamps `event`, a contiguous `seq`,
/// and monotone `elapsed_ms` onto `fields`, writes one compact line, and
/// flushes so a live reader sees it immediately. No-op without a sink.
fn emit(st: &mut HubState, t0: Instant, event: &str, fields: Json) {
    let Some(sink) = st.sink.as_mut() else { return };
    let mut doc = Json::obj()
        .set("event", Json::Str(event.to_string()))
        .set("seq", Json::Num(st.seq as f64))
        .set("elapsed_ms", Json::Num(t0.elapsed().as_secs_f64() * 1e3));
    if let Json::Obj(pairs) = fields {
        for (k, v) in pairs {
            doc = doc.set(&k, v);
        }
    }
    let _ = writeln!(sink, "{}", doc.render_compact());
    let _ = sink.flush();
    st.seq += 1;
}

/// The shared telemetry hub: thread-safe (the parallel suite workers all
/// record through one hub), cheap when idle, and drained into a
/// [`TelemetrySnapshot`] by [`TelemetryHub::finish`].
pub struct TelemetryHub {
    inner: Arc<HubInner>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryHub {
    /// A hub with no progress sink (metrics and spans only).
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryHub {
            inner: Arc::new(HubInner {
                config,
                started: Instant::now(),
                stop: AtomicBool::new(false),
                state: Mutex::new(HubState::default()),
            }),
            heartbeat: None,
        }
    }

    /// A hub that additionally streams JSONL progress events to `sink`:
    /// emits `suite_started` immediately and spawns a background
    /// heartbeat thread at the configured interval. The thread is joined
    /// by [`TelemetryHub::finish`] (or on drop).
    pub fn with_progress(config: TelemetryConfig, sink: Box<dyn Write + Send>) -> Self {
        let hub_inner = Arc::new(HubInner {
            config,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            state: Mutex::new(HubState::default()),
        });
        {
            let mut st = lock(&hub_inner.state);
            st.sink = Some(sink);
            emit(
                &mut st,
                hub_inner.started,
                "suite_started",
                Json::obj()
                    .set("heartbeat_ms", Json::Num(config.heartbeat_ms as f64))
                    .set("profiler_period", Json::Num(config.profiler_period as f64)),
            );
        }
        let inner = Arc::clone(&hub_inner);
        let heartbeat = std::thread::spawn(move || {
            let interval = Duration::from_millis(inner.config.heartbeat_ms.max(1));
            loop {
                std::thread::sleep(interval);
                if inner.stop.load(Ordering::Relaxed) {
                    break;
                }
                let mut st = lock(&inner.state);
                let fields = Json::obj()
                    .set("started", Json::Num(st.jobs_started as f64))
                    .set("done", Json::Num((st.jobs_retired + st.jobs_quarantined) as f64));
                emit(&mut st, inner.started, "heartbeat", fields);
            }
        });
        TelemetryHub { inner: hub_inner, heartbeat: Some(heartbeat) }
    }

    /// The guest sampling-profiler period to install per run
    /// (`None` when guest sampling is disabled).
    pub fn profiler_period(&self) -> Option<u64> {
        match self.inner.config.profiler_period {
            0 => None,
            p => Some(p),
        }
    }

    /// Record (and stream) a job entering the supervisor.
    pub fn job_started(&self, job: &str) {
        let mut st = lock(&self.inner.state);
        st.jobs_started += 1;
        emit(
            &mut st,
            self.inner.started,
            "job_started",
            Json::obj().set("job", Json::Str(job.to_string())),
        );
    }

    /// Record (and stream) a successful job: per-job span, host
    /// wall/phase metrics, and — when the run carried a guest profile —
    /// the deterministic guest-side metrics and merged hot regions.
    pub fn job_retired(&self, span: JobSpan, profile: Option<&ProfilerReport>) {
        let mut st = lock(&self.inner.state);
        st.jobs_retired += 1;
        st.guest.inc("guest.instructions", span.instructions);
        st.guest.inc("guest.jobs", 1);
        if let Some(p) = profile {
            st.guest.inc("guest.blocks", p.blocks);
            st.guest.inc("guest.samples", p.total_samples);
            st.guest.merge_histogram("guest.block_len", &p.block_len);
            st.guest.merge_histogram("guest.retire_latency", &p.retire_latency);
            st.profile.merge(p);
        }
        st.host.observe("job.wall_ms", span.wall_ms.max(0.0) as u64);
        st.host.inc("host.attempts", u64::from(span.attempts));
        st.host.inc("host.phase.decode_ns", span.phases.decode);
        st.host.inc("host.phase.execute_ns", span.phases.execute);
        st.host.inc("host.phase.oracle_ns", span.phases.oracle);
        st.host.inc("host.phase.checkpoint_ns", span.phases.checkpoint);
        let fields = Json::obj()
            .set("job", Json::Str(span.job.clone()))
            .set("instructions", Json::Num(span.instructions as f64))
            .set("wall_ms", Json::Num(span.wall_ms))
            .set("attempts", Json::Num(f64::from(span.attempts)));
        emit(&mut st, self.inner.started, "job_retired", fields);
        st.spans.push(span);
    }

    /// Record (and stream) a failed attempt the supervisor will retry.
    pub fn job_retried(&self, job: &str, attempt: u32, class: &str) {
        let mut st = lock(&self.inner.state);
        st.retries += 1;
        st.host.inc("host.retries", 1);
        let fields = Json::obj()
            .set("job", Json::Str(job.to_string()))
            .set("attempt", Json::Num(f64::from(attempt)))
            .set("class", Json::Str(class.to_string()));
        emit(&mut st, self.inner.started, "job_retried", fields);
    }

    /// Record (and stream) an attempt resuming from a timeout checkpoint.
    pub fn job_resumed(&self, job: &str, attempt: u32) {
        let mut st = lock(&self.inner.state);
        st.resumes += 1;
        st.host.inc("host.resumes", 1);
        let fields = Json::obj()
            .set("job", Json::Str(job.to_string()))
            .set("attempt", Json::Num(f64::from(attempt)));
        emit(&mut st, self.inner.started, "job_resumed", fields);
    }

    /// Record (and stream) a job the supervisor gave up on.
    pub fn job_quarantined(&self, job: &str, class: &str) {
        let mut st = lock(&self.inner.state);
        st.jobs_quarantined += 1;
        st.host.inc("host.quarantined", 1);
        let fields = Json::obj()
            .set("job", Json::Str(job.to_string()))
            .set("class", Json::Str(class.to_string()));
        emit(&mut st, self.inner.started, "job_quarantined", fields);
    }

    /// Bump an arbitrary host-side counter — the campaign service
    /// records cache hits and journal/lease/cache activity this way.
    pub fn count_host(&self, name: &str, by: u64) {
        let mut st = lock(&self.inner.state);
        st.host.inc(name, by);
    }

    /// Charge wall time to a named host phase counter
    /// (`host.phase.<phase>_ns`), for phases outside the per-job
    /// [`PhaseNanos`] set — journal appends, lease grants, cache
    /// writes.
    pub fn phase_host(&self, phase: &str, nanos: u64) {
        self.count_host(&format!("host.phase.{phase}_ns"), nanos);
    }

    /// Charge cache-merge wall time to the job's span (and the suite
    /// merge-phase counter).
    pub fn phase_merge(&self, job: &str, nanos: u64) {
        let mut st = lock(&self.inner.state);
        st.host.inc("host.phase.merge_ns", nanos);
        if let Some(span) = st.spans.iter_mut().rev().find(|s| s.job == job) {
            span.phases.merge += nanos;
        }
    }

    /// Stop the heartbeat thread, emit `suite_finished`, and drain the
    /// hub into a [`TelemetrySnapshot`].
    pub fn finish(mut self) -> TelemetrySnapshot {
        self.shutdown();
        let mut st = lock(&self.inner.state);
        let mut spans = std::mem::take(&mut st.spans);
        spans.sort_by(|a, b| a.job.cmp(&b.job));
        TelemetrySnapshot {
            guest: std::mem::take(&mut st.guest),
            host: std::mem::take(&mut st.host),
            profile: std::mem::take(&mut st.profile),
            spans,
            wall_seconds: self.inner.started.elapsed().as_secs_f64(),
            jobs_started: st.jobs_started,
            jobs_retired: st.jobs_retired,
            jobs_quarantined: st.jobs_quarantined,
            retries: st.retries,
            resumes: st.resumes,
            heartbeat_ms: self.inner.config.heartbeat_ms,
            profiler_period: self.inner.config.profiler_period,
            context: Vec::new(),
        }
    }

    /// Join the heartbeat thread and emit the terminal event.
    fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        let mut st = lock(&self.inner.state);
        if st.sink.is_some() {
            // Stream the final host counters (fusion rates, cache hits,
            // phase totals, …) ahead of the terminal event so `suite_top
            // --check` can surface every recorded name — the stream used
            // to carry only lifecycle events and any counter not in the
            // snapshot file was invisible to the checker.
            if !st.host.counters().is_empty() {
                let mut counters = Json::obj();
                for (k, v) in st.host.counters() {
                    counters = counters.set(k, Json::Num(*v as f64));
                }
                emit(&mut st, self.inner.started, "metrics", Json::obj().set("counters", counters));
            }
            let fields = Json::obj()
                .set("started", Json::Num(st.jobs_started as f64))
                .set("retired", Json::Num(st.jobs_retired as f64))
                .set("quarantined", Json::Num(st.jobs_quarantined as f64))
                .set("retries", Json::Num(st.retries as f64))
                .set("resumes", Json::Num(st.resumes as f64));
            emit(&mut st, self.inner.started, "suite_finished", fields);
            st.sink = None;
        }
    }
}

impl Drop for TelemetryHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a [`TelemetryHub`] accumulated, ready to serialize as a
/// `bioarch-metrics/v1` document.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Deterministic guest metrics (identical for serial and parallel
    /// suite runs of the same study).
    pub guest: MetricsRegistry,
    /// Wall-clock host metrics (job wall histogram, phase counters).
    pub host: MetricsRegistry,
    /// Merged symbolized guest profile across all retired jobs.
    pub profile: ProfilerReport,
    /// Per-job rollups, sorted by job label.
    pub spans: Vec<JobSpan>,
    /// Hub lifetime in seconds.
    pub wall_seconds: f64,
    /// Jobs that entered the supervisor.
    pub jobs_started: u64,
    /// Jobs that retired successfully.
    pub jobs_retired: u64,
    /// Jobs the supervisor gave up on.
    pub jobs_quarantined: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Attempts that resumed from a timeout checkpoint.
    pub resumes: u64,
    /// Configured heartbeat interval (ms).
    pub heartbeat_ms: u64,
    /// Configured guest profiler period (0 = disabled).
    pub profiler_period: u64,
    /// Free-form context (`scale`, `seed`, `threads`, …), serialized
    /// verbatim like a report's.
    pub context: Vec<(String, String)>,
}

/// Serialize one histogram with summary scalars, key percentiles, and
/// sparse buckets.
fn histogram_json(h: &Histogram) -> Json {
    Json::obj()
        .set("count", Json::Num(h.count() as f64))
        .set("sum", Json::Num(h.sum() as f64))
        .set("min", Json::Num(h.min() as f64))
        .set("max", Json::Num(h.max() as f64))
        .set("mean", Json::Num(h.mean()))
        .set("p50", Json::Num(h.percentile(0.50) as f64))
        .set("p90", Json::Num(h.percentile(0.90) as f64))
        .set("p99", Json::Num(h.percentile(0.99) as f64))
        .set(
            "buckets",
            Json::Arr(
                h.sparse_buckets()
                    .into_iter()
                    .map(|(b, n)| Json::Arr(vec![Json::Num(b as f64), Json::Num(n as f64)]))
                    .collect(),
            ),
        )
}

fn registry_json(doc: Json, reg: &MetricsRegistry) -> Json {
    let mut counters = Json::obj();
    for (k, v) in reg.counters() {
        counters = counters.set(k, Json::Num(*v as f64));
    }
    let mut gauges = Json::obj();
    for (k, v) in reg.gauges() {
        gauges = gauges.set(k, Json::Num(*v));
    }
    let mut histograms = Json::obj();
    for (k, h) in reg.histograms() {
        histograms = histograms.set(k, histogram_json(h));
    }
    doc.set("counters", counters).set("gauges", gauges).set("histograms", histograms)
}

impl TelemetrySnapshot {
    /// Serialize as a `bioarch-metrics/v1` JSON document: suite rollup,
    /// merged counters/gauges/histograms (guest and host), the
    /// symbolized profiler section with hot regions and folded stacks,
    /// and the per-job spans.
    pub fn to_json(&self) -> Json {
        let context = Json::Obj(
            self.context.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
        );
        let suite = Json::obj()
            .set("jobs_started", Json::Num(self.jobs_started as f64))
            .set("jobs_retired", Json::Num(self.jobs_retired as f64))
            .set("jobs_quarantined", Json::Num(self.jobs_quarantined as f64))
            .set("retries", Json::Num(self.retries as f64))
            .set("resumes", Json::Num(self.resumes as f64))
            .set("wall_seconds", Json::Num(self.wall_seconds))
            .set("heartbeat_ms", Json::Num(self.heartbeat_ms as f64))
            .set("profiler_period", Json::Num(self.profiler_period as f64));
        let mut doc = Json::obj()
            .set("schema", Json::Str(METRICS_SCHEMA.into()))
            .set("context", context)
            .set("suite", suite);
        let mut merged = self.guest.clone();
        merged.merge(&self.host);
        doc = registry_json(doc, &merged);
        let profiler = Json::obj()
            .set("period", Json::Num(self.profile.period as f64))
            .set("blocks", Json::Num(self.profile.blocks as f64))
            .set("insns", Json::Num(self.profile.insns as f64))
            .set("total_samples", Json::Num(self.profile.total_samples as f64))
            .set(
                "hot_regions",
                Json::Arr(
                    self.profile
                        .hot_regions
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .set("name", Json::Str(r.name.clone()))
                                .set("samples", Json::Num(r.samples as f64))
                        })
                        .collect(),
                ),
            )
            .set(
                "folded",
                Json::Arr(self.profile.folded_stacks().into_iter().map(Json::Str).collect()),
            );
        doc = doc.set("profiler", profiler);
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj()
                        .set("job", Json::Str(s.job.clone()))
                        .set("wall_ms", Json::Num(s.wall_ms))
                        .set("instructions", Json::Num(s.instructions as f64))
                        .set("mips", Json::Num(s.mips()))
                        .set("attempts", Json::Num(f64::from(s.attempts)))
                        .set(
                            "phases",
                            Json::obj()
                                .set("decode_ns", Json::Num(s.phases.decode as f64))
                                .set("execute_ns", Json::Num(s.phases.execute as f64))
                                .set("oracle_ns", Json::Num(s.phases.oracle as f64))
                                .set("checkpoint_ns", Json::Num(s.phases.checkpoint as f64))
                                .set("merge_ns", Json::Num(s.phases.merge as f64)),
                        )
                })
                .collect(),
        );
        doc.set("spans", spans)
    }

    /// Pretty-rendered `bioarch-metrics/v1` document.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

/// Flatten a parsed `bioarch-metrics/v1` document into a
/// [`Report`]-shaped metric list so `compare_runs` can diff and
/// `--require`-gate it: suite rollup fields, every counter and gauge,
/// and `count`/`mean`/`p50`/`p90`/`p99` per histogram (all
/// [`Direction::Neutral`] — metrics documents are informational).
///
/// # Errors
///
/// Returns a message when the schema marker is missing or wrong, or the
/// document is structurally invalid.
pub fn metrics_json_to_report(doc: &Json) -> Result<Report, String> {
    check_schema(doc, METRICS_SCHEMA).map_err(|e| e.to_string())?;
    let mut report = Report::new("telemetry");
    if let Some(Json::Obj(pairs)) = doc.get("context") {
        for (k, v) in pairs {
            report.context.push((k.clone(), v.as_str().unwrap_or_default().to_string()));
        }
    }
    if let Some(Json::Obj(pairs)) = doc.get("suite") {
        for (k, v) in pairs {
            if let Some(x) = v.as_f64() {
                report.push(format!("suite.{k}"), x, Direction::Neutral);
            }
        }
    }
    for section in ["counters", "gauges"] {
        if let Some(Json::Obj(pairs)) = doc.get(section) {
            for (k, v) in pairs {
                if let Some(x) = v.as_f64() {
                    report.push(k.clone(), x, Direction::Neutral);
                }
            }
        }
    }
    if let Some(Json::Obj(pairs)) = doc.get("histograms") {
        for (k, h) in pairs {
            for field in ["count", "mean", "p50", "p90", "p99"] {
                let x = h
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("histogram {k} missing {field}"))?;
                report.push(format!("{k}.{field}"), x, Direction::Neutral);
            }
        }
    }
    if let Some(p) = doc.get("profiler") {
        for field in ["blocks", "insns", "total_samples"] {
            if let Some(x) = p.get(field).and_then(Json::as_f64) {
                report.push(format!("profiler.{field}"), x, Direction::Neutral);
            }
        }
    }
    Ok(report)
}

/// Parse a serialized `bioarch-metrics/v1` document into the flattened
/// [`Report`] form (see [`metrics_json_to_report`]).
///
/// # Errors
///
/// Returns a message on malformed JSON or a wrong schema marker.
pub fn parse_metrics_report(text: &str) -> Result<Report, String> {
    metrics_json_to_report(&Json::parse(text)?)
}

/// A cloneable in-memory [`Write`] sink for progress streams — tests and
/// examples attach one to a [`TelemetryHub`] and read the emitted JSONL
/// back with [`SharedBuffer::contents`].
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Everything written so far, as UTF-8 (lossy).
    pub fn contents(&self) -> String {
        let buf = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Summary statistics of a validated progress stream
/// (see [`check_progress_stream`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgressStats {
    /// Total events in the stream.
    pub events: u64,
    /// Heartbeat events.
    pub heartbeats: u64,
    /// `job_started` events.
    pub jobs_started: u64,
    /// `job_retired` events.
    pub jobs_retired: u64,
    /// `job_quarantined` events.
    pub jobs_quarantined: u64,
    /// `job_retried` events.
    pub retries: u64,
    /// `job_resumed` events.
    pub resumes: u64,
    /// Whether the stream ends with `suite_finished`.
    pub finished: bool,
    /// Declared heartbeat interval (ms) from `suite_started`.
    pub heartbeat_ms: f64,
    /// Largest gap (ms) between consecutive heartbeat-bearing events
    /// (heartbeats, job events, and the terminal event all reset the
    /// gap — the liveness guarantee is "some event at least this often").
    /// Gaps forgiven by batch-retire tolerance are excluded; see
    /// [`ProgressStats::batch_gap_ms`].
    pub max_gap_ms: f64,
    /// `job_retired` events that landed in a batch burst: the event's
    /// leading quiet gap was exempted from the stall check because
    /// another `job_retired` followed within the heartbeat interval. A
    /// lane-batch worker emits nothing while its gang runs, then
    /// retires the whole batch at once — the burst proves liveness.
    pub batch_retires: u64,
    /// Largest quiet gap (ms) forgiven by batch-retire tolerance (the
    /// batch analogue of [`ProgressStats::max_gap_ms`]; these gaps do
    /// not count toward stalling).
    pub batch_gap_ms: f64,
    /// Whether the final line was unparseable — a torn write from a
    /// crashed writer. The torn line is dropped; the stats cover the
    /// complete-line prefix.
    pub truncated_tail: bool,
    /// Whether some inter-event gap exceeded
    /// [`DEFAULT_STALL_FACTOR`] × the declared heartbeat interval — the
    /// writer went silent far longer than its own liveness promise.
    /// Distinct from [`ProgressStats::truncated_tail`]: a torn tail is
    /// a crashed writer, a stall is a wedged one. Recomputable at a
    /// custom threshold via [`ProgressStats::stalled_with`].
    pub stalled: bool,
    /// Host counters carried by `metrics` events, name-sorted. Every
    /// name in the stream is kept verbatim — the checker surfaces
    /// counters it has never heard of (fusion rates, cache hits, …)
    /// instead of dropping unknown names.
    pub host_counters: Vec<(String, f64)>,
}

/// Validate a JSONL progress stream: every line parses, `seq` is
/// contiguous from 0, `elapsed_ms` is monotone, the stream opens with
/// `suite_started`, and every `job_started` has a matching terminal
/// event (`job_retired` or `job_quarantined`). Used by
/// `examples/suite_top.rs --check` and the CI telemetry-smoke gate.
///
/// An unparseable *final* line is not an error: it is the torn write of
/// a writer killed mid-`write`, reported via
/// [`ProgressStats::truncated_tail`] (the "never terminated" check is
/// waived too — the terminal events may sit in the torn tail). An
/// unparseable line anywhere else is still corruption.
///
/// # Errors
///
/// Returns a message naming the first malformed line or sequence
/// violation.
pub fn check_progress_stream(text: &str) -> Result<ProgressStats, String> {
    let mut stats = ProgressStats::default();
    let mut open_jobs: Vec<String> = Vec::new();
    let mut last_elapsed = 0.0f64;
    let mut timeline: Vec<(bool, f64)> = Vec::new();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(_) if i + 1 == lines.len() && i > 0 => {
                stats.truncated_tail = true;
                break;
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        };
        let event = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing event", i + 1))?
            .to_string();
        let seq = doc
            .get("seq")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing seq", i + 1))?;
        if seq as usize != i {
            return Err(format!("line {}: seq {seq} out of order (want {i})", i + 1));
        }
        let elapsed = doc
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing elapsed_ms", i + 1))?;
        if elapsed < last_elapsed {
            return Err(format!(
                "line {}: elapsed_ms went backwards ({elapsed} < {last_elapsed})",
                i + 1
            ));
        }
        last_elapsed = elapsed;
        if i == 0 && event != "suite_started" {
            return Err(format!("stream must open with suite_started, got {event}"));
        }
        if stats.finished {
            return Err(format!("line {}: event after suite_finished", i + 1));
        }
        stats.events += 1;
        timeline.push((event == "job_retired", elapsed));
        let job = || {
            doc.get("job")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: {event} missing job", i + 1))
        };
        match event.as_str() {
            "suite_started" => {
                if i != 0 {
                    return Err(format!("line {}: duplicate suite_started", i + 1));
                }
                stats.heartbeat_ms = doc.get("heartbeat_ms").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "heartbeat" => stats.heartbeats += 1,
            "job_started" => {
                stats.jobs_started += 1;
                open_jobs.push(job()?);
            }
            "job_retired" | "job_quarantined" => {
                let j = job()?;
                let Some(pos) = open_jobs.iter().position(|o| *o == j) else {
                    return Err(format!("line {}: {event} for unstarted job {j}", i + 1));
                };
                open_jobs.remove(pos);
                if event == "job_retired" {
                    stats.jobs_retired += 1;
                } else {
                    stats.jobs_quarantined += 1;
                }
            }
            "job_retried" => {
                let j = job()?;
                if !open_jobs.contains(&j) {
                    return Err(format!("line {}: job_retried for unstarted job {j}", i + 1));
                }
                stats.retries += 1;
            }
            "job_resumed" => {
                let j = job()?;
                if !open_jobs.contains(&j) {
                    return Err(format!("line {}: job_resumed for unstarted job {j}", i + 1));
                }
                stats.resumes += 1;
            }
            "metrics" => {
                let Some(Json::Obj(pairs)) = doc.get("counters") else {
                    return Err(format!("line {}: metrics missing counters", i + 1));
                };
                for (k, v) in pairs {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| format!("line {}: counter {k} not numeric", i + 1))?;
                    stats.host_counters.push((k.clone(), x));
                }
                stats.host_counters.sort_by(|a, b| a.0.cmp(&b.0));
            }
            "suite_finished" => stats.finished = true,
            other => return Err(format!("line {}: unknown event {other}", i + 1)),
        }
    }
    if stats.events == 0 {
        return Err("empty progress stream".to_string());
    }
    if !open_jobs.is_empty() && !stats.truncated_tail {
        return Err(format!("jobs started but never terminated: {open_jobs:?}"));
    }
    // Gap pass with batch-retire tolerance: a worker retiring a whole
    // lane batch per dispatch is silent while the gang runs, then a
    // burst of `job_retired` lines lands at once. The quiet gap ends at
    // a retire immediately followed by another retire within the
    // heartbeat interval — that burst proves the worker was alive, so
    // the gap is reported via `batch_gap_ms` instead of counting toward
    // `max_gap_ms` and the stall verdict.
    for (i, &(retire, at)) in timeline.iter().enumerate() {
        let gap = at - if i == 0 { 0.0 } else { timeline[i - 1].1 };
        let burst = retire
            && stats.heartbeat_ms > 0.0
            && timeline.get(i + 1).is_some_and(|&(next_retire, next_at)| {
                next_retire && next_at - at <= stats.heartbeat_ms
            });
        if burst {
            stats.batch_retires += 1;
            stats.batch_gap_ms = stats.batch_gap_ms.max(gap);
        } else {
            stats.max_gap_ms = stats.max_gap_ms.max(gap);
        }
    }
    stats.stalled = stats.stalled_with(DEFAULT_STALL_FACTOR);
    Ok(stats)
}

/// Default heartbeat-gap multiple beyond which a stream counts as
/// stalled. Generous on purpose: at the conventional 100 ms heartbeat
/// this is a 5-second silence, far past scheduler jitter on a loaded CI
/// box but still a fraction of any real hang.
pub const DEFAULT_STALL_FACTOR: f64 = 50.0;

impl ProgressStats {
    /// Whether the stream's largest inter-event gap exceeds `factor` ×
    /// the declared heartbeat interval. Zero/unknown heartbeat
    /// intervals never stall (nothing was promised).
    pub fn stalled_with(&self, factor: f64) -> bool {
        self.heartbeat_ms > 0.0 && self.max_gap_ms > factor * self.heartbeat_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut a = PhaseNanos { decode: 1, execute: 2, oracle: 3, checkpoint: 4, merge: 5 };
        let b = PhaseNanos { decode: 10, execute: 20, oracle: 30, checkpoint: 40, merge: 50 };
        a.add(&b);
        assert_eq!(a.total(), 165);
    }

    #[test]
    fn job_span_mips() {
        let span = JobSpan {
            job: "x".into(),
            wall_ms: 1000.0,
            instructions: 5_000_000,
            attempts: 1,
            phases: PhaseNanos::default(),
        };
        assert!((span.mips() - 5.0).abs() < 1e-9);
        let zero = JobSpan { wall_ms: 0.0, ..span };
        assert_eq!(zero.mips(), 0.0);
    }

    #[test]
    fn hub_lifecycle_produces_wellformed_stream() {
        let buf = SharedBuffer::new();
        let config = TelemetryConfig { profiler_period: 64, heartbeat_ms: 10 };
        let hub = TelemetryHub::with_progress(config, Box::new(buf.clone()));
        assert_eq!(hub.profiler_period(), Some(64));
        hub.job_started("a/baseline/Stock");
        hub.job_retired(
            JobSpan {
                job: "a/baseline/Stock".into(),
                wall_ms: 12.5,
                instructions: 1000,
                attempts: 1,
                phases: PhaseNanos { decode: 10, execute: 20, oracle: 5, checkpoint: 0, merge: 0 },
            },
            None,
        );
        hub.job_started("b/baseline/Stock");
        hub.job_retried("b/baseline/Stock", 1, "timeout");
        hub.job_resumed("b/baseline/Stock", 2);
        hub.job_quarantined("b/baseline/Stock", "timeout");
        hub.phase_merge("a/baseline/Stock", 7);
        // Let at least two heartbeats land.
        std::thread::sleep(Duration::from_millis(35));
        let snap = hub.finish();
        assert_eq!(snap.jobs_started, 2);
        assert_eq!(snap.jobs_retired, 1);
        assert_eq!(snap.jobs_quarantined, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.resumes, 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].phases.merge, 7);
        assert_eq!(snap.host.counter("host.phase.merge_ns"), 7);

        let text = buf.contents();
        let stats = check_progress_stream(&text).expect("stream is well-formed");
        assert_eq!(stats.jobs_started, 2);
        assert_eq!(stats.jobs_retired, 1);
        assert_eq!(stats.jobs_quarantined, 1);
        assert!(stats.finished);
        assert!(stats.heartbeats >= 2, "heartbeats: {}", stats.heartbeats);
        assert_eq!(stats.heartbeat_ms, 10.0);
    }

    #[test]
    fn snapshot_serializes_and_flattens() {
        let hub = TelemetryHub::new(TelemetryConfig::default());
        hub.job_started("fasta/baseline/Stock");
        let mut profile = ProfilerReport {
            period: 4096,
            blocks: 10,
            insns: 50,
            total_samples: 3,
            hot_regions: vec![power5_sim::telemetry::HotRegion {
                name: "dropgsw".into(),
                samples: 3,
            }],
            ..ProfilerReport::default()
        };
        profile.block_len.record(5);
        profile.retire_latency.record(12);
        hub.job_retired(
            JobSpan {
                job: "fasta/baseline/Stock".into(),
                wall_ms: 42.0,
                instructions: 50,
                attempts: 1,
                phases: PhaseNanos::default(),
            },
            Some(&profile),
        );
        let mut snap = hub.finish();
        snap.context.push(("scale".into(), "Test".into()));
        let text = snap.render_json();
        assert!(text.contains(METRICS_SCHEMA));
        assert!(text.contains("dropgsw"));
        assert!(text.contains("guest;dropgsw 3"));

        let report = parse_metrics_report(&text).expect("flattens");
        assert_eq!(report.experiment, "telemetry");
        assert!(report.get("job.wall_ms.p50").is_some());
        assert!(report.get("job.wall_ms.p99").is_some());
        assert!(report.get("guest.instructions").is_some());
        assert_eq!(report.get("suite.jobs_retired").unwrap().value, 1.0);
        assert_eq!(report.get("profiler.total_samples").unwrap().value, 3.0);
        // Wrong schema rejected.
        assert!(parse_metrics_report(&text.replace("/v1", "/v9")).is_err());
    }

    #[test]
    fn checker_rejects_malformed_streams() {
        assert!(check_progress_stream("").is_err());
        // Must open with suite_started.
        let bad = r#"{"event":"heartbeat","seq":0,"elapsed_ms":1}"#;
        assert!(check_progress_stream(bad).unwrap_err().contains("suite_started"));
        // Contiguous seq required.
        let gap = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"heartbeat","seq":2,"elapsed_ms":1}"#
        );
        assert!(check_progress_stream(gap).unwrap_err().contains("out of order"));
        // Monotone elapsed required.
        let back = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":5}"#,
            "\n",
            r#"{"event":"heartbeat","seq":1,"elapsed_ms":1}"#
        );
        assert!(check_progress_stream(back).unwrap_err().contains("backwards"));
        // Unterminated job rejected.
        let open = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"job_started","seq":1,"elapsed_ms":1,"job":"x"}"#
        );
        assert!(check_progress_stream(open).unwrap_err().contains("never terminated"));
        // Terminal event for a job that never started.
        let orphan = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"job_retired","seq":1,"elapsed_ms":1,"job":"x"}"#
        );
        assert!(check_progress_stream(orphan).unwrap_err().contains("unstarted"));
    }

    #[test]
    fn checker_tolerates_truncated_tail() {
        // A torn final line — the writer was killed mid-write — is
        // reported, not rejected, and waives the open-job check (the
        // terminal event may sit in the torn bytes).
        let torn = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"job_started","seq":1,"elapsed_ms":1,"job":"x"}"#,
            "\n",
            r#"{"event":"job_retired","seq":2,"elapsed_"#
        );
        let stats = check_progress_stream(torn).unwrap();
        assert!(stats.truncated_tail);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.jobs_started, 1);
        // A complete stream with an open job must still be rejected.
        let open = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"job_started","seq":1,"elapsed_ms":1,"job":"x"}"#
        );
        assert!(check_progress_stream(open).unwrap_err().contains("never terminated"));
        // A torn line anywhere but the tail is still corruption.
        let corrupt = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"hea"#,
            "\n",
            r#"{"event":"suite_finished","seq":2,"elapsed_ms":2}"#
        );
        assert!(check_progress_stream(corrupt).is_err());
    }

    #[test]
    fn checker_flags_stalled_streams() {
        // A 10 ms heartbeat promise followed by a 600 ms silence is a
        // stall at the default 50× factor — distinct from a torn tail.
        let stalled = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0,"heartbeat_ms":10}"#,
            "\n",
            r#"{"event":"heartbeat","seq":1,"elapsed_ms":5}"#,
            "\n",
            r#"{"event":"heartbeat","seq":2,"elapsed_ms":605}"#,
            "\n",
            r#"{"event":"suite_finished","seq":3,"elapsed_ms":606}"#
        );
        let stats = check_progress_stream(stalled).unwrap();
        assert!(stats.stalled);
        assert!(!stats.truncated_tail);
        assert!(stats.stalled_with(10.0));
        assert!(!stats.stalled_with(100.0), "custom factor can waive the default verdict");
        // Keeping the liveness promise never stalls.
        let healthy = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0,"heartbeat_ms":10}"#,
            "\n",
            r#"{"event":"heartbeat","seq":1,"elapsed_ms":12}"#,
            "\n",
            r#"{"event":"suite_finished","seq":2,"elapsed_ms":20}"#
        );
        assert!(!check_progress_stream(healthy).unwrap().stalled);
        // No declared interval = no promise = never stalled.
        let silent = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0}"#,
            "\n",
            r#"{"event":"suite_finished","seq":1,"elapsed_ms":900000}"#
        );
        assert!(!check_progress_stream(silent).unwrap().stalled);
    }

    #[test]
    fn batch_retire_bursts_do_not_stall() {
        // A lane-batch worker goes quiet for the whole gang, then
        // retires both jobs in a burst — the quiet gap is exempt.
        let batched = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0,"heartbeat_ms":10}"#,
            "\n",
            r#"{"event":"job_started","seq":1,"elapsed_ms":1,"job":"a"}"#,
            "\n",
            r#"{"event":"job_started","seq":2,"elapsed_ms":2,"job":"b"}"#,
            "\n",
            r#"{"event":"job_retired","seq":3,"elapsed_ms":2000,"job":"a"}"#,
            "\n",
            r#"{"event":"job_retired","seq":4,"elapsed_ms":2005,"job":"b"}"#,
            "\n",
            r#"{"event":"suite_finished","seq":5,"elapsed_ms":2006}"#
        );
        let stats = check_progress_stream(batched).unwrap();
        assert!(!stats.stalled, "batch-retire burst must not read as a stall");
        assert_eq!(stats.batch_retires, 1);
        assert!(stats.batch_gap_ms >= 1998.0);
        assert!(stats.max_gap_ms <= 10.0);
        // A lone retire after the same silence is still a stall: no
        // burst follows to prove the worker was batching.
        let lone = concat!(
            r#"{"event":"suite_started","seq":0,"elapsed_ms":0,"heartbeat_ms":10}"#,
            "\n",
            r#"{"event":"job_started","seq":1,"elapsed_ms":1,"job":"a"}"#,
            "\n",
            r#"{"event":"job_retired","seq":2,"elapsed_ms":2000,"job":"a"}"#,
            "\n",
            r#"{"event":"suite_finished","seq":3,"elapsed_ms":2001}"#
        );
        let stats = check_progress_stream(lone).unwrap();
        assert!(stats.stalled);
        assert_eq!(stats.batch_retires, 0);
    }

    #[test]
    fn guest_registry_merge_is_order_independent() {
        // Simulates the parallel vs serial suite paths folding the same
        // two jobs in different orders.
        let span = |name: &str, insns: u64| JobSpan {
            job: name.into(),
            wall_ms: 1.0,
            instructions: insns,
            attempts: 1,
            phases: PhaseNanos::default(),
        };
        let mut p1 = ProfilerReport { blocks: 4, total_samples: 2, ..ProfilerReport::default() };
        p1.block_len.record(3);
        let mut p2 = ProfilerReport { blocks: 6, total_samples: 5, ..ProfilerReport::default() };
        p2.block_len.record(7);

        let ab = TelemetryHub::new(TelemetryConfig::default());
        ab.job_retired(span("a", 100), Some(&p1));
        ab.job_retired(span("b", 200), Some(&p2));
        let ba = TelemetryHub::new(TelemetryConfig::default());
        ba.job_retired(span("b", 200), Some(&p2));
        ba.job_retired(span("a", 100), Some(&p1));
        let sab = ab.finish();
        let sba = ba.finish();
        assert_eq!(sab.guest, sba.guest);
        assert_eq!(sab.guest.counter("guest.instructions"), 300);
        assert_eq!(sab.spans, sba.spans); // sorted by job label
    }
}
