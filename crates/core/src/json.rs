//! A minimal JSON value type with rendering and parsing.
//!
//! The experiment reports need a stable machine-readable format but the
//! workspace is built offline with no serialization dependencies, so this
//! module hand-rolls the small subset of JSON the report schema uses:
//! objects (insertion-ordered), arrays, strings, finite numbers, booleans
//! and null. Rendering is deterministic (two-space indentation, keys in
//! insertion order) so reports diff cleanly under version control.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved in rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` (builder style; meaningful on `Obj` only).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render as compact single-line JSON (no whitespace, no trailing
    /// newline) — the form streamed as JSONL progress events, where one
    /// event must occupy exactly one line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset on
    /// malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run of ordinary characters up to the
                    // next quote or escape. Validating only the run keeps
                    // string parsing linear — re-checking the whole
                    // remaining input per character made megabyte string
                    // fields (wire-framed checkpoints) quadratic.
                    let rest = &self.bytes[self.pos..];
                    let run =
                        rest.iter().position(|&b| b == b'"' || b == b'\\').unwrap_or(rest.len());
                    let text = std::str::from_utf8(&rest[..run]).map_err(|_| "invalid utf-8")?;
                    s.push_str(text);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj()
            .set("name", Json::Str("table1".into()))
            .set("seed", Json::Num(42.0))
            .set("ok", Json::Bool(true))
            .set("nothing", Json::Null)
            .set(
                "metrics",
                Json::Arr(vec![
                    Json::obj()
                        .set("name", Json::Str("Blast.ipc".into()))
                        .set("value", Json::Num(0.93)),
                    Json::obj()
                        .set("name", Json::Str("weird \"quoted\"\n".into()))
                        .set("value", Json::Num(-1.25e-3)),
                ]),
            );
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Stable rendering: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut out = String::new();
        write_num(&mut out, 42.0);
        assert_eq!(out, "42");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, "x"], "b": 2.5}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(2.5));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""aA\n\t\"\\b""#).unwrap();
        assert_eq!(doc.as_str(), Some("aA\n\t\"\\b"));
    }

    #[test]
    fn compact_rendering_is_single_line_and_roundtrips() {
        let doc = Json::obj()
            .set("event", Json::Str("job_started".into()))
            .set("seq", Json::Num(3.0))
            .set("items", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)]))
            .set("empty", Json::obj());
        let line = doc.render_compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(' '));
        assert_eq!(line, r#"{"event":"job_started","seq":3,"items":[1,null,true],"empty":{}}"#);
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }
}
