//! Application workloads: input generation, memory layout, compilation,
//! simulation, and validation against the golden models.

use crate::kernels::{self, Consts, Flavor, NEG_NW};
use crate::telemetry::PhaseNanos;
use bioalign::blast::{blastp, BlastParams, WordIndex};
use bioalign::hmmsearch::viterbi_score;
use bioalign::pairwise::{needleman_wunsch_score, smith_waterman_score};
use bioseq::generate::SeqGen;
use bioseq::hmm::ProfileHmm;
use bioseq::{Alphabet, GapPenalties, Sequence, SubstitutionMatrix};
use power5_sim::machine::{Machine, ProfileRegion, StopReason, Trap, Watchdog, WatchdogKind};
use power5_sim::telemetry::ProfilerReport;
use power5_sim::{
    Checkpoint, CoreConfig, Counters, Divergence, LockstepMode, StallBreakdown, SymbolMap, Tracer,
};
use ppc_isa::exec::MemFault;
use std::fmt;
use std::time::Instant;

/// The four applications of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// `blastp` — seeded protein database search.
    Blast,
    /// Progressive multiple alignment.
    Clustalw,
    /// `ssearch` — rigorous Smith-Waterman scan.
    Fasta,
    /// `hmmpfam` — profile-HMM database scan.
    Hmmer,
}

impl App {
    /// All four, in the paper's order.
    pub fn all() -> [App; 4] {
        [App::Blast, App::Clustalw, App::Fasta, App::Hmmer]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Blast => "Blast",
            App::Clustalw => "Clustalw",
            App::Fasta => "Fasta",
            App::Hmmer => "Hmmer",
        }
    }

    /// The dominant kernel function, as named in the paper's Figure 1
    /// (`band_half` is the DP core of Blast's `SEMI_G_ALIGN_EX`-style
    /// gapped extension).
    pub fn kernel_name(self) -> &'static str {
        match self {
            App::Blast => "band_half",
            App::Clustalw => "forward_pass",
            App::Fasta => "dropgsw",
            App::Hmmer => "p7viterbi",
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The code variants of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Original branchy code, stock compiler, stock POWER5.
    Baseline,
    /// Hand-inserted predication lowered to `cmp`+`isel`.
    HandIsel,
    /// Hand-inserted predication lowered to the fused `maxw`.
    HandMax,
    /// Branchy code through the modified compiler, emitting `isel`.
    CompilerIsel,
    /// Branchy code through the modified compiler, emitting `maxw`.
    CompilerMax,
    /// The paper's "Combination": hand-inserted `max` plus compiler `isel`.
    Combination,
}

impl Variant {
    /// All six, in the paper's bar order.
    pub fn all() -> [Variant; 6] {
        [
            Variant::Baseline,
            Variant::HandIsel,
            Variant::HandMax,
            Variant::CompilerIsel,
            Variant::CompilerMax,
            Variant::Combination,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "Original",
            Variant::HandIsel => "hand isel",
            Variant::HandMax => "hand max",
            Variant::CompilerIsel => "comp. isel",
            Variant::CompilerMax => "comp. max",
            Variant::Combination => "Combination",
        }
    }

    /// Machine-readable identifier used in report metric names.
    pub fn slug(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::HandIsel => "hand_isel",
            Variant::HandMax => "hand_max",
            Variant::CompilerIsel => "compiler_isel",
            Variant::CompilerMax => "compiler_max",
            Variant::Combination => "combination",
        }
    }

    /// Which source flavour this variant compiles.
    pub fn flavor(self) -> Flavor {
        match self {
            Variant::Baseline | Variant::CompilerIsel | Variant::CompilerMax => Flavor::Branchy,
            Variant::HandIsel | Variant::HandMax | Variant::Combination => Flavor::Hand,
        }
    }

    /// The compiler options this variant uses.
    pub fn options(self) -> kernelc::Options {
        match self {
            Variant::Baseline => kernelc::Options::baseline(),
            Variant::HandIsel => kernelc::Options::hand_isel(),
            Variant::HandMax => kernelc::Options::hand_max(),
            Variant::CompilerIsel => kernelc::Options::compiler_isel(),
            Variant::CompilerMax => kernelc::Options::compiler_max(),
            Variant::Combination => kernelc::Options::combination(),
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Input scale: `Test` runs in milliseconds for unit tests; `ClassC` is
/// the benchmark scale (the paper's class-C inputs, scaled to simulator
/// speed with the paper's relative proportions preserved — e.g. the Fasta
/// input is substantially longer than Clustalw's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for tests.
    Test,
    /// Benchmark-scale inputs.
    ClassC,
}

/// Gap penalties used by every alignment workload (ssearch defaults).
pub fn gaps() -> GapPenalties {
    GapPenalties::new(10, 2)
}

/// Blast stage parameters (NCBI blastp defaults, banded extension).
pub fn blast_params() -> BlastParams {
    BlastParams::default()
}

const CODE_BASE: u32 = 0x1000;
const DATA_BASE: u32 = 0x4_0000;
const MEM_SIZE: usize = 8 << 20;
const STACK_TOP: u32 = (MEM_SIZE as u32) - 128;
/// Instruction budget per run; every workload halts far below this.
const BUDGET: u64 = 2_000_000_000;

#[derive(Debug, Clone)]
enum Inputs {
    Fasta { query: Sequence, db: Vec<Sequence> },
    Clustalw { seqs: Vec<Sequence> },
    Hmmer { query: Sequence, models: Vec<ProfileHmm> },
    Blast { query: Sequence, db: Vec<Sequence> },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Expected {
    Fasta { scores: Vec<i32> },
    Clustalw { pair_scores: Vec<i32>, joins: Vec<i32> },
    Hmmer { scores: Vec<i32>, ranked: Vec<i32> },
    Blast { scores: Vec<i32> },
}

/// Why a run failed.
#[derive(Debug)]
pub enum RunError {
    /// Kernel compilation failed.
    Compile(kernelc::CompileError),
    /// Assembly failed.
    Asm(ppc_asm::AsmError),
    /// The assembled image is unusable (missing entry point, overlaps
    /// the data region).
    Image(String),
    /// Host-side load failure: the image or workload data did not fit in
    /// simulated memory.
    Layout(MemFault),
    /// The guest trapped (bad instruction or memory fault), with PC and
    /// cycle.
    Trap(Trap),
    /// The program did not halt within the instruction budget.
    Budget,
    /// A watchdog budget expired. The partial run — counters, profile,
    /// and stall heatmap collected up to the cut-off — rides along so
    /// callers can still report what the runaway kernel was doing.
    Timeout {
        /// Which budget expired.
        kind: WatchdogKind,
        /// Counters and heatmaps up to the cut-off (never validated).
        partial: Box<AppRun>,
        /// Machine state at the cut-off, so a supervisor can resume the
        /// run under a wider budget instead of restarting from zero.
        checkpoint: Box<Checkpoint>,
    },
    /// The lockstep oracle caught the fast interpreter disagreeing with
    /// the golden model (only possible when the run was started with a
    /// [`LockstepMode`] other than `Off`).
    Divergence {
        /// The first mismatching architectural field and both values.
        divergence: Box<Divergence>,
    },
    /// The run completed but its outputs did not match the golden
    /// models, so its counters must not be reported as results.
    Validation {
        /// Which app/variant/config failed, plus the first mismatches.
        what: String,
    },
}

impl RunError {
    /// A short machine-readable classification of this failure, used as
    /// the `failure_class` in degraded suite reports.
    pub fn class(&self) -> &'static str {
        match self {
            RunError::Compile(_) => "compile",
            RunError::Asm(_) => "asm",
            RunError::Image(_) => "image",
            RunError::Layout(_) => "layout",
            RunError::Trap(_) => "trap",
            RunError::Budget => "budget",
            RunError::Timeout { .. } => "timeout",
            RunError::Divergence { .. } => "divergence",
            RunError::Validation { .. } => "validation",
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Asm(e) => write!(f, "assembly error: {e}"),
            RunError::Image(what) => write!(f, "unusable program image: {what}"),
            RunError::Layout(e) => write!(f, "workload layout error: {e}"),
            RunError::Trap(t) => write!(f, "simulation {t}"),
            RunError::Budget => write!(f, "instruction budget exhausted"),
            RunError::Timeout { kind, partial, .. } => write!(
                f,
                "watchdog {} budget expired after {} instructions / {} cycles",
                match kind {
                    WatchdogKind::Cycles => "cycle",
                    WatchdogKind::Instructions => "instruction",
                },
                partial.counters.instructions,
                partial.counters.cycles
            ),
            RunError::Divergence { divergence } => {
                write!(f, "lockstep divergence: {divergence}")
            }
            RunError::Validation { what } => write!(f, "validation failed: {what}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<kernelc::CompileError> for RunError {
    fn from(e: kernelc::CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<ppc_asm::AsmError> for RunError {
    fn from(e: ppc_asm::AsmError) -> Self {
        RunError::Asm(e)
    }
}

impl From<Trap> for RunError {
    fn from(t: Trap) -> Self {
        RunError::Trap(t)
    }
}

/// One conditional-branch site in a [`AppRun::branch_sites`] report.
#[derive(Debug, Clone)]
pub struct BranchSiteReport {
    /// Branch PC.
    pub pc: u32,
    /// Enclosing function.
    pub function: String,
    /// Times executed / taken / direction-mispredicted.
    pub stats: power5_sim::core::BranchSite,
}

/// One PC in an all-stall-class heatmap ([`AppRun::stall_sites`]).
#[derive(Debug, Clone)]
pub struct StallSiteReport {
    /// Instruction PC the stall cycles were charged to.
    pub pc: u32,
    /// Enclosing function (via the symbol table), `?` if unknown.
    pub function: String,
    /// Completion-stall cycles at this PC, by class.
    pub breakdown: StallBreakdown,
}

/// Result of one simulated application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Performance counters of the whole run.
    pub counters: Counters,
    /// Per-function `(name, instructions, cycles)` attribution.
    pub profile: Vec<(String, u64, u64)>,
    /// Whether every simulated output matched the golden model.
    pub validated: bool,
    /// Human-readable descriptions of any mismatches.
    pub mismatches: Vec<String>,
    /// Hammocks the if-conversion pass converted (0 for hand variants).
    pub converted_hammocks: usize,
    /// Hammocks the pass examined but refused.
    pub rejected_hammocks: usize,
    /// Per-PC conditional-branch statistics, sorted by mispredictions
    /// (empty unless requested via [`Workload::run_with_branch_sites`]).
    pub branch_sites: Vec<BranchSiteReport>,
    /// Per-PC completion-stall attribution across every stall class,
    /// hottest site first (empty unless requested via
    /// [`Workload::run_with_stall_sites`]).
    pub stall_sites: Vec<StallSiteReport>,
    /// Symbolized rendering of [`AppRun::stall_sites`] (empty unless
    /// requested).
    pub stall_heatmap: String,
    /// Host-side phase wall times for this run (decode/execute/oracle/
    /// checkpoint), in nanoseconds. Telemetry only: never serialized
    /// into `bioarch-report/v1` documents.
    pub phases: PhaseNanos,
    /// Symbolized guest sampling profile (present only when a sampling
    /// period was requested, e.g. via
    /// [`Workload::run_full_instrumented`]).
    pub guest_profile: Option<Box<ProfilerReport>>,
}

/// Optional collection switches for one simulated run.
#[derive(Default)]
struct RunOpts {
    interval: Option<u64>,
    branch_sites: bool,
    stall_sites: bool,
    tracer: Option<Tracer>,
    watchdog: Option<Watchdog>,
    lockstep: LockstepMode,
    /// Guest sampling-profiler period in retired instructions
    /// (`None` = profiler disabled, the zero-cost default).
    profiler: Option<u64>,
}

/// A fully prepared workload: inputs generated, golden results computed.
#[derive(Debug, Clone)]
pub struct Workload {
    app: App,
    scale: Scale,
    seed: u64,
    inputs: Inputs,
    expected: Expected,
}

/// Simple bump allocator for simulated data memory.
struct Layout {
    next: u32,
}

impl Layout {
    fn new() -> Self {
        Layout { next: DATA_BASE }
    }

    fn alloc(&mut self, bytes: u32) -> u32 {
        let addr = (self.next + 7) & !7;
        self.next = addr + bytes;
        assert!(
            (self.next as usize) < MEM_SIZE - (1 << 16),
            "workload data overflows simulated memory"
        );
        addr
    }

    fn words(&mut self, n: usize) -> u32 {
        self.alloc(4 * n as u32)
    }
}

struct BuildPlan {
    consts: Consts,
    word_inits: Vec<(u32, Vec<i32>)>,
    byte_inits: Vec<(u32, Vec<u8>)>,
    pb_addr: u32,
    out_addr: u32,
    out_len: usize,
    aux_addr: u32,
    aux_len: usize,
    /// One past the last allocated data byte (fault-injection window).
    data_end: u32,
}

/// A compiled, loaded, not-yet-run workload.
struct Built {
    machine: Machine,
    plan: BuildPlan,
    regions: Vec<ProfileRegion>,
    converted_hammocks: usize,
    rejected_hammocks: usize,
    code_len: u32,
}

/// A loaded machine plus everything a fault-injection campaign needs to
/// perturb it and classify the outcome (see [`Workload::prepare`]).
pub struct PreparedRun {
    /// The ready-to-run machine (inputs serialized, registers set).
    pub machine: Machine,
    /// First byte of the code region.
    pub code_base: u32,
    /// Code length in bytes.
    pub code_len: u32,
    /// First byte of the workload data region.
    pub data_base: u32,
    /// Workload data length in bytes.
    pub data_len: u32,
    /// Address of the primary output vector.
    pub out_addr: u32,
    /// Primary output length in words.
    pub out_len: usize,
    /// What a fault-free run writes at `out_addr`.
    pub golden: Vec<i32>,
}

fn pack_sequences(seqs: &[Sequence], layout: &mut Layout) -> (u32, Vec<i32>, Vec<i32>, Vec<u8>) {
    let total: usize = seqs.iter().map(Sequence::len).sum();
    let base = layout.alloc(total as u32 + 8);
    let mut offs = Vec::with_capacity(seqs.len());
    let mut lens = Vec::with_capacity(seqs.len());
    let mut bytes = Vec::with_capacity(total);
    for s in seqs {
        offs.push(bytes.len() as i32);
        lens.push(s.len() as i32);
        bytes.extend_from_slice(s.codes());
    }
    (base, offs, lens, bytes)
}

impl Workload {
    /// Generate inputs and golden results for `app` at `scale` with `seed`.
    pub fn new(app: App, scale: Scale, seed: u64) -> Self {
        let mut g = SeqGen::new(Alphabet::Protein, seed);
        let matrix = SubstitutionMatrix::blosum62();
        let gp = gaps();
        let (inputs, expected) = match app {
            App::Fasta => {
                let (qlen, ndb, range, hom) = match scale {
                    Scale::Test => (40, 6, 30..50, 2),
                    Scale::ClassC => (120, 24, 80..140, 4),
                };
                let query = g.uniform(qlen);
                let db = g.database(&query, ndb - hom, hom, range);
                let scores = db
                    .iter()
                    .map(|s| smith_waterman_score(query.codes(), s.codes(), &matrix, gp))
                    .collect();
                (Inputs::Fasta { query, db }, Expected::Fasta { scores })
            }
            App::Clustalw => {
                let (nseq, len) = match scale {
                    Scale::Test => (4, 40),
                    Scale::ClassC => (8, 90),
                };
                let seqs = g.family(nseq, len, 0.6, 0.1);
                let mut pair_scores = vec![0i32; nseq * nseq];
                for i in 0..nseq {
                    for j in (i + 1)..nseq {
                        let sc =
                            needleman_wunsch_score(seqs[i].codes(), seqs[j].codes(), &matrix, gp);
                        pair_scores[i * nseq + j] = sc;
                        pair_scores[j * nseq + i] = sc;
                    }
                }
                let joins = host_guide_tree(&pair_scores, nseq);
                (Inputs::Clustalw { seqs }, Expected::Clustalw { pair_scores, joins })
            }
            App::Hmmer => {
                let (nmod, m, seqlen) = match scale {
                    Scale::Test => (3, 10, 30),
                    Scale::ClassC => (14, 30, 100),
                };
                let models: Vec<ProfileHmm> =
                    (0..nmod).map(|k| ProfileHmm::random(m, seed ^ (k as u64 + 1))).collect();
                // The query resembles one model's consensus, mutated — so
                // one strong hit exists, as in a real hmmpfam search.
                let consensus = models[nmod / 2].consensus();
                let query = {
                    let mutated = g.mutate(&consensus, 0.15);
                    let mut codes = mutated.codes().to_vec();
                    // Pad with random residues to seqlen.
                    while codes.len() < seqlen {
                        codes.push(g.uniform(1).codes()[0]);
                    }
                    Sequence::from_codes("query", Alphabet::Protein, codes)
                };
                let scores: Vec<i32> = models.iter().map(|h| viterbi_score(h, &query)).collect();
                let ranked = host_rank(&scores);
                (Inputs::Hmmer { query, models }, Expected::Hmmer { scores, ranked })
            }
            App::Blast => {
                let (qlen, ndb, range, hom) = match scale {
                    Scale::Test => (50, 8, 40..80, 2),
                    Scale::ClassC => (130, 36, 90..180, 5),
                };
                let query = g.uniform(qlen);
                let db = g.database(&query, ndb - hom, hom, range);
                let params = blast_params();
                let (hits, _) = blastp(&query, &db, &matrix, &params);
                let mut scores = vec![0i32; db.len()];
                for h in &hits {
                    scores[h.db_index] = h.score;
                }
                (Inputs::Blast { query, db }, Expected::Blast { scores })
            }
        };
        Workload { app, scale, seed, inputs, expected }
    }

    /// The application.
    pub fn app(&self) -> App {
        self.app
    }

    /// The input scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn plan(&self) -> BuildPlan {
        let mut layout = Layout::new();
        // (data_end is stamped after the match, once every arm has
        // finished allocating.)
        let matrix = SubstitutionMatrix::blosum62();
        let gp = gaps();
        let mat_addr = layout.words(24 * 24);
        let mut word_inits = vec![(mat_addr, matrix.as_row_major().to_vec())];
        let mut byte_inits = Vec::new();
        let base_consts = Consts::default()
            .set("MAT", mat_addr as i64)
            .set("WG", gp.open as i64)
            .set("WS", gp.extend as i64)
            .set("NEGNW", NEG_NW);
        let mut plan = match (&self.inputs, &self.expected) {
            (Inputs::Fasta { query, db }, _) => {
                let qaddr = layout.alloc(query.len() as u32 + 4);
                byte_inits.push((qaddr, query.codes().to_vec()));
                let (dbbase, offs, lens, dbbytes) = pack_sequences(db, &mut layout);
                byte_inits.push((dbbase, dbbytes));
                let offs_addr = layout.words(offs.len());
                let lens_addr = layout.words(lens.len());
                let maxm = db.iter().map(Sequence::len).max().unwrap_or(1);
                let work = layout.words(2 * (maxm + 2));
                let hist = layout.words(64);
                let out = layout.words(db.len());
                let pb = layout.words(8);
                word_inits.push((offs_addr, offs));
                word_inits.push((lens_addr, lens));
                word_inits.push((hist, vec![0; 64]));
                word_inits.push((
                    pb,
                    vec![
                        dbbase as i32,
                        offs_addr as i32,
                        lens_addr as i32,
                        db.len() as i32,
                        work as i32,
                        out as i32,
                    ],
                ));
                BuildPlan {
                    consts: base_consts
                        .set("QPTR", qaddr as i64)
                        .set("QLEN", query.len() as i64)
                        .set("HIST", hist as i64),
                    word_inits,
                    byte_inits,
                    pb_addr: pb,
                    out_addr: out,
                    out_len: db.len(),
                    aux_addr: 0,
                    aux_len: 0,
                    data_end: 0,
                }
            }
            (Inputs::Clustalw { seqs }, _) => {
                let nseq = seqs.len();
                let (seqbase, offs, lens, bytes) = pack_sequences(seqs, &mut layout);
                byte_inits.push((seqbase, bytes));
                let offs_addr = layout.words(nseq);
                let lens_addr = layout.words(nseq);
                let maxm = seqs.iter().map(Sequence::len).max().unwrap_or(1);
                let hh = layout.words(maxm + 2);
                let dd = layout.words(maxm + 2);
                let scores = layout.words(nseq * nseq);
                let active = layout.words(2 * nseq);
                let joins = layout.words(2 * (nseq.saturating_sub(1)).max(1));
                let pairout = layout.words(nseq * nseq);
                let pb = layout.words(10);
                word_inits.push((offs_addr, offs));
                word_inits.push((lens_addr, lens));
                word_inits.push((scores, vec![0; nseq * nseq]));
                word_inits.push((
                    pb,
                    vec![
                        seqbase as i32,
                        offs_addr as i32,
                        lens_addr as i32,
                        nseq as i32,
                        hh as i32,
                        dd as i32,
                        scores as i32,
                        active as i32,
                        joins as i32,
                        pairout as i32,
                    ],
                ));
                BuildPlan {
                    consts: base_consts,
                    word_inits,
                    byte_inits,
                    pb_addr: pb,
                    out_addr: pairout,
                    out_len: nseq * nseq,
                    aux_addr: joins,
                    aux_len: 2 * (nseq - 1),
                    data_end: 0,
                }
            }
            (Inputs::Hmmer { query, models }, _) => {
                let qaddr = layout.alloc(query.len() as u32 + 4);
                byte_inits.push((qaddr, query.codes().to_vec()));
                let mut mod_addrs = Vec::new();
                let mut maxm = 1;
                for h in models {
                    let m = h.len();
                    maxm = maxm.max(m);
                    let mp1 = m + 1;
                    let total = 1 + 9 * mp1 + 48 * mp1;
                    let addr = layout.words(total);
                    let mut block = Vec::with_capacity(total);
                    block.push(m as i32);
                    // Interleaved per-node transition records (tmm, tim,
                    // tdm, tmi, tii, tmd, tdd, bsc, esc), k = 0..=M.
                    use bioseq::hmm::Transition::*;
                    for k in 0..=m {
                        for t in [MM, IM, DM, MI, II, MD, DD] {
                            block.push(h.tsc_raw(t)[k]);
                        }
                        block.push(h.bsc_raw()[k]);
                        block.push(h.esc_raw()[k]);
                    }
                    // Emissions transposed to [residue][node].
                    for res in 0..24 {
                        for k in 0..=m {
                            block.push(h.msc_raw()[k * 24 + res]);
                        }
                    }
                    for res in 0..24 {
                        for k in 0..=m {
                            block.push(h.isc_raw()[k * 24 + res]);
                        }
                    }
                    debug_assert_eq!(block.len(), total);
                    word_inits.push((addr, block));
                    mod_addrs.push(addr as i32);
                }
                let mods = layout.words(models.len());
                let work = layout.words(6 * (maxm + 1));
                let out = layout.words(models.len());
                let ranked = layout.words(models.len());
                let pb = layout.words(8);
                word_inits.push((mods, mod_addrs));
                word_inits.push((
                    pb,
                    vec![
                        qaddr as i32,
                        query.len() as i32,
                        mods as i32,
                        models.len() as i32,
                        work as i32,
                        out as i32,
                        ranked as i32,
                    ],
                ));
                BuildPlan {
                    consts: base_consts,
                    word_inits,
                    byte_inits,
                    pb_addr: pb,
                    out_addr: out,
                    out_len: models.len(),
                    aux_addr: ranked,
                    aux_len: models.len(),
                    data_end: 0,
                }
            }
            (Inputs::Blast { query, db }, _) => {
                let params = blast_params();
                let qaddr = layout.alloc(query.len() as u32 + 4);
                byte_inits.push((qaddr, query.codes().to_vec()));
                let qrev_addr = layout.alloc(query.len() as u32 + 4);
                let qrev: Vec<u8> = query.codes().iter().rev().copied().collect();
                byte_inits.push((qrev_addr, qrev));
                let (dbbase, offs, lens, dbbytes) = pack_sequences(db, &mut layout);
                byte_inits.push((dbbase, dbbytes.clone()));
                // Reversed copies of every subject at the same offsets.
                let srev_base = layout.alloc(dbbytes.len() as u32 + 8);
                let mut srev_bytes = vec![0u8; dbbytes.len()];
                for (i, s) in db.iter().enumerate() {
                    let off = offs[i] as usize;
                    for (p, &c) in s.codes().iter().rev().enumerate() {
                        srev_bytes[off + p] = c;
                    }
                }
                byte_inits.push((srev_base, srev_bytes));
                // Neighborhood word tables in the kernel's base-24 id space.
                let index = WordIndex::build(query, &matrix, &params);
                let mut woff = vec![0i32; 24 * 24 * 24];
                let mut wcnt = vec![0i32; 24 * 24 * 24];
                let mut pos: Vec<i32> = Vec::new();
                for c0 in 0..20u8 {
                    for c1 in 0..20u8 {
                        for c2 in 0..20u8 {
                            let hits = index.lookup(&[c0, c1, c2]);
                            if hits.is_empty() {
                                continue;
                            }
                            let id = (c0 as usize * 24 + c1 as usize) * 24 + c2 as usize;
                            woff[id] = pos.len() as i32;
                            wcnt[id] = hits.len() as i32;
                            pos.extend(hits.iter().map(|&p| p as i32));
                        }
                    }
                }
                let woff_addr = layout.words(woff.len());
                let wcnt_addr = layout.words(wcnt.len());
                let pos_addr = layout.words(pos.len().max(1));
                let maxs = db.iter().map(Sequence::len).max().unwrap_or(1);
                let diag_stride = query.len() + maxs + 4;
                let diag = layout.words(2 * diag_stride);
                let bandm = maxs + 2;
                let bandv = layout.words(bandm + 2);
                let bandf = layout.words(bandm + 2);
                let anch = layout.words(2);
                let out = layout.words(db.len());
                let pb = layout.words(8);
                let offs_addr = layout.words(offs.len());
                let lens_addr = layout.words(lens.len());
                word_inits.push((offs_addr, offs));
                word_inits.push((lens_addr, lens));
                word_inits.push((woff_addr, woff));
                word_inits.push((wcnt_addr, wcnt));
                if !pos.is_empty() {
                    word_inits.push((pos_addr, pos));
                }
                word_inits.push((
                    pb,
                    vec![
                        dbbase as i32,
                        offs_addr as i32,
                        lens_addr as i32,
                        db.len() as i32,
                        out as i32,
                    ],
                ));
                BuildPlan {
                    consts: base_consts
                        .set("QPTR", qaddr as i64)
                        .set("QLEN", query.len() as i64)
                        .set("QREV", qrev_addr as i64)
                        .set("SREVDELTA", srev_base as i64 - dbbase as i64)
                        .set("WOFF", woff_addr as i64)
                        .set("WCNT", wcnt_addr as i64)
                        .set("POS", pos_addr as i64)
                        .set("DIAG", diag as i64)
                        .set("DIAGSTRIDE", diag_stride as i64)
                        .set("BANDV", bandv as i64)
                        .set("BANDF", bandf as i64)
                        .set("BAND", params.band as i64)
                        .set("XDROP", params.x_drop_ungapped as i64)
                        .set("WINDOW", params.two_hit_window as i64)
                        .set("GAPTRIG", params.gap_trigger as i64)
                        .set("MINREP", params.min_report_score as i64)
                        .set("ANCH", anch as i64),
                    word_inits,
                    byte_inits,
                    pb_addr: pb,
                    out_addr: out,
                    out_len: db.len(),
                    aux_addr: 0,
                    aux_len: 0,
                    data_end: 0,
                }
            }
        };
        plan.data_end = layout.next;
        plan
    }

    fn source(&self, flavor: Flavor) -> String {
        match self.app {
            App::Blast => kernels::blast(flavor),
            App::Clustalw => kernels::clustalw(flavor),
            App::Fasta => kernels::fasta(flavor),
            App::Hmmer => kernels::hmmer(flavor),
        }
    }

    /// Compile, load, and run this workload with `variant` on a machine
    /// configured by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on compile, assembly, or simulation failures,
    /// or if the program fails to halt.
    pub fn run(&self, variant: Variant, config: &CoreConfig) -> Result<AppRun, RunError> {
        self.run_with_interval(variant, config, None, None)
    }

    /// Like [`Workload::run`], optionally collecting the Figure-2 interval
    /// time series every `interval` committed instructions, under optional
    /// [`Watchdog`] budgets.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`], plus
    /// [`RunError::Timeout`] when a watchdog budget expires.
    pub fn run_with_interval(
        &self,
        variant: Variant,
        config: &CoreConfig,
        interval: Option<u64>,
        watchdog: Option<Watchdog>,
    ) -> Result<AppRun, RunError> {
        let opts = RunOpts { interval, watchdog, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Like [`Workload::run`], additionally collecting per-PC branch
    /// statistics (the "which branches mispredict" analysis of the
    /// paper's Section III).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`].
    pub fn run_with_branch_sites(
        &self,
        variant: Variant,
        config: &CoreConfig,
    ) -> Result<AppRun, RunError> {
        let opts = RunOpts { branch_sites: true, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Like [`Workload::run`], additionally attributing every completion
    /// stall to the PC it completed at — the "guilty branch" analysis
    /// extended to all stall classes. Fills [`AppRun::stall_sites`] and the
    /// symbolized [`AppRun::stall_heatmap`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`].
    pub fn run_with_stall_sites(
        &self,
        variant: Variant,
        config: &CoreConfig,
    ) -> Result<AppRun, RunError> {
        let opts = RunOpts { stall_sites: true, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Like [`Workload::run`], with [`Watchdog`] budgets installed. A
    /// runaway kernel returns [`RunError::Timeout`] carrying the partial
    /// counters and stall heatmap instead of spinning until the hard
    /// instruction budget.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`], plus
    /// [`RunError::Timeout`] when a budget expires.
    pub fn run_with_watchdog(
        &self,
        variant: Variant,
        config: &CoreConfig,
        watchdog: Watchdog,
    ) -> Result<AppRun, RunError> {
        let opts = RunOpts { watchdog: Some(watchdog), stall_sites: true, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Like [`Workload::run`], with the golden-model lockstep oracle
    /// enabled for the whole run: every checked commit of the fast
    /// interpreter is compared against a simple reference interpreter
    /// (see `power5_sim::oracle`). A mismatch aborts the run with
    /// [`RunError::Divergence`]. With [`LockstepMode::Off`] this is
    /// exactly [`Workload::run`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`], plus
    /// [`RunError::Divergence`] when the oracle disagrees.
    pub fn run_with_lockstep(
        &self,
        variant: Variant,
        config: &CoreConfig,
        mode: LockstepMode,
    ) -> Result<AppRun, RunError> {
        let opts = RunOpts { lockstep: mode, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Resume a run that previously timed out: rebuild the same image,
    /// restore `checkpoint` (taken from [`RunError::Timeout`]), install a
    /// fresh `watchdog` budget, and run to completion. Collection
    /// switches mirror [`Workload::run_with_watchdog`] so the final
    /// report is comparable.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run_with_watchdog`];
    /// [`RunError::Image`] if the checkpoint does not match the image.
    pub fn resume_with_watchdog(
        &self,
        variant: Variant,
        config: &CoreConfig,
        checkpoint: &Checkpoint,
        watchdog: Watchdog,
    ) -> Result<AppRun, RunError> {
        self.resume_instrumented(variant, config, checkpoint, watchdog, None)
    }

    /// [`Workload::resume_with_watchdog`] with an optional guest
    /// sampling-profiler period — the resume-side twin of
    /// [`Workload::run_full_instrumented`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::resume_with_watchdog`].
    pub fn resume_instrumented(
        &self,
        variant: Variant,
        config: &CoreConfig,
        checkpoint: &Checkpoint,
        watchdog: Watchdog,
        profiler: Option<u64>,
    ) -> Result<AppRun, RunError> {
        let opts =
            RunOpts { watchdog: Some(watchdog), stall_sites: true, profiler, ..RunOpts::default() };
        let decode_started = Instant::now();
        let built = self.build(variant, config)?;
        let decode = decode_started.elapsed().as_nanos() as u64;
        let mut run = self.execute_built(built, opts, Some(checkpoint))?.0;
        run.phases.decode = decode;
        Ok(run)
    }

    /// The superset run the suite supervisor drives: optional interval
    /// sampling, optional [`Watchdog`] budgets, and a [`LockstepMode`] in
    /// one call. Stall-site collection mirrors the single-switch
    /// entry points (on exactly when a watchdog is installed and no
    /// interval sampling is requested), so results are byte-identical to
    /// the corresponding `run_*` method.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`], plus
    /// [`RunError::Timeout`] / [`RunError::Divergence`] as applicable.
    pub fn run_full(
        &self,
        variant: Variant,
        config: &CoreConfig,
        interval: Option<u64>,
        watchdog: Option<Watchdog>,
        lockstep: LockstepMode,
    ) -> Result<AppRun, RunError> {
        self.run_full_instrumented(variant, config, interval, watchdog, lockstep, None)
    }

    /// [`Workload::run_full`] with an optional guest sampling-profiler
    /// period (retired instructions per sample). When `profiler` is set
    /// the returned [`AppRun::guest_profile`] carries the symbolized
    /// hot-region report; simulated timing, counters, and validation are
    /// byte-identical to the uninstrumented run — the profiler only
    /// *observes* retirement, it never changes dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run_full`].
    pub fn run_full_instrumented(
        &self,
        variant: Variant,
        config: &CoreConfig,
        interval: Option<u64>,
        watchdog: Option<Watchdog>,
        lockstep: LockstepMode,
        profiler: Option<u64>,
    ) -> Result<AppRun, RunError> {
        let stall_sites = watchdog.is_some() && interval.is_none();
        let opts =
            RunOpts { interval, watchdog, lockstep, stall_sites, profiler, ..RunOpts::default() };
        Ok(self.run_configured(variant, config, opts)?.0)
    }

    /// Like [`Workload::run`], with a pipeline event [`Tracer`] installed
    /// for the whole run. The tracer is returned alongside the result so
    /// the caller can inspect a ring buffer or flush a sink (call
    /// [`Tracer::finish`] to surface deferred I/O errors).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as for [`Workload::run`].
    pub fn run_traced(
        &self,
        variant: Variant,
        config: &CoreConfig,
        tracer: Tracer,
    ) -> Result<(AppRun, Tracer), RunError> {
        let opts = RunOpts { tracer: Some(tracer), ..RunOpts::default() };
        self.run_configured(variant, config, opts)
    }

    /// Compile, assemble, and load this workload onto a fresh machine
    /// without running it. Every failure is a typed [`RunError`] — no
    /// panics — so the fault-injection campaign can drive thousands of
    /// builds unattended.
    fn build(&self, variant: Variant, config: &CoreConfig) -> Result<Built, RunError> {
        let plan = self.plan();
        let source = kernels::render(&self.source(variant.flavor()), &plan.consts);
        let compiled = kernelc::compile(&source, &variant.options())?;
        let assembled = ppc_asm::assemble(&compiled.asm, CODE_BASE)?;
        if CODE_BASE as usize + assembled.bytes.len() >= DATA_BASE as usize {
            return Err(RunError::Image(format!(
                "program image ({} bytes at {CODE_BASE:#x}) overlaps the data region at \
                 {DATA_BASE:#x}",
                assembled.bytes.len()
            )));
        }
        let entry = *assembled
            .symbols
            .get("__start")
            .ok_or_else(|| RunError::Image("no __start symbol".into()))?;
        let mut machine =
            Machine::try_new(config.clone(), &assembled.bytes, CODE_BASE, entry, MEM_SIZE)
                .map_err(RunError::Layout)?;
        // Function profile regions from the symbol table.
        let code_end = CODE_BASE + assembled.bytes.len() as u32;
        let mut syms: Vec<(&String, &u32)> =
            assembled.symbols.iter().filter(|(name, _)| !name.starts_with('.')).collect();
        syms.sort_by_key(|(_, &addr)| addr);
        let regions: Vec<ProfileRegion> = syms
            .iter()
            .enumerate()
            .map(|(i, (name, &start))| ProfileRegion {
                name: (*name).clone(),
                start,
                end: syms.get(i + 1).map_or(code_end, |(_, &a)| a),
            })
            .collect();
        machine.set_profile_regions(regions.clone());
        machine.set_symbols(SymbolMap::new(assembled.symbol_table()));
        // Serialize the workload.
        for (addr, words) in &plan.word_inits {
            machine.mem_mut().write_i32s(*addr, words).map_err(RunError::Layout)?;
        }
        for (addr, bytes) in &plan.byte_inits {
            machine.mem_mut().write_bytes(*addr, bytes).map_err(RunError::Layout)?;
        }
        machine.cpu_mut().gpr[1] = STACK_TOP;
        machine.cpu_mut().gpr[3] = plan.pb_addr;
        Ok(Built {
            machine,
            code_len: assembled.bytes.len() as u32,
            plan,
            regions,
            converted_hammocks: compiled.converted_hammocks,
            rejected_hammocks: compiled.rejected_hammocks,
        })
    }

    /// Build this workload into a ready-to-run [`PreparedRun`] for fault
    /// injection: the caller gets the loaded machine plus the injection
    /// windows and the golden output needed to classify a faulty run.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on compile, assembly, or load failures.
    pub fn prepare(&self, variant: Variant, config: &CoreConfig) -> Result<PreparedRun, RunError> {
        let built = self.build(variant, config)?;
        Ok(PreparedRun {
            machine: built.machine,
            code_base: CODE_BASE,
            code_len: built.code_len,
            data_base: DATA_BASE,
            data_len: built.plan.data_end.saturating_sub(DATA_BASE),
            out_addr: built.plan.out_addr,
            out_len: built.plan.out_len,
            golden: self.golden_output(),
        })
    }

    /// The golden primary output vector (what a fault-free run writes at
    /// [`PreparedRun::out_addr`]).
    pub fn golden_output(&self) -> Vec<i32> {
        match &self.expected {
            Expected::Fasta { scores }
            | Expected::Blast { scores }
            | Expected::Hmmer { scores, .. } => scores.clone(),
            Expected::Clustalw { pair_scores, .. } => pair_scores.clone(),
        }
    }

    fn run_configured(
        &self,
        variant: Variant,
        config: &CoreConfig,
        opts: RunOpts,
    ) -> Result<(AppRun, Tracer), RunError> {
        let decode_started = Instant::now();
        let built = self.build(variant, config)?;
        let decode = decode_started.elapsed().as_nanos() as u64;
        let mut out = self.execute_built(built, opts, None)?;
        out.0.phases.decode = decode;
        Ok(out)
    }

    fn execute_built(
        &self,
        built: Built,
        opts: RunOpts,
        resume_from: Option<&Checkpoint>,
    ) -> Result<(AppRun, Tracer), RunError> {
        let Built { mut machine, plan, regions, converted_hammocks, rejected_hammocks, .. } = built;
        if let Some(n) = opts.interval {
            machine.set_interval_sampling(n);
        }
        machine.set_branch_site_profiling(opts.branch_sites);
        machine.set_stall_site_profiling(opts.stall_sites);
        let mut phases = PhaseNanos::default();
        if let Some(ck) = resume_from {
            // Restore before installing the fresh watchdog below: the
            // checkpoint carries the budget that already expired.
            let restore_started = Instant::now();
            machine
                .restore(ck)
                .map_err(|e| RunError::Image(format!("checkpoint restore failed: {e}")))?;
            phases.checkpoint += restore_started.elapsed().as_nanos() as u64;
        }
        if let Some(t) = opts.tracer {
            machine.set_tracer(t);
        }
        if let Some(w) = opts.watchdog {
            machine.set_watchdog(w);
        }
        machine.set_lockstep(opts.lockstep);
        if let Some(period) = opts.profiler {
            machine.set_sampling_profiler(period);
        }
        let function_of = |regions: &[ProfileRegion], pc: u32| {
            regions
                .iter()
                .find(|r| pc >= r.start && pc < r.end)
                .map_or_else(|| "?".to_string(), |r| r.name.clone())
        };
        let collect = |machine: &mut Machine,
                       validated: bool,
                       mismatches: Vec<String>|
         -> (AppRun, Tracer) {
            let site_reports = machine
                .branch_sites()
                .into_iter()
                .map(|(pc, stats)| BranchSiteReport {
                    pc,
                    function: function_of(&regions, pc),
                    stats,
                })
                .collect();
            let stall_reports: Vec<StallSiteReport> = machine
                .stall_sites()
                .into_iter()
                .map(|(pc, breakdown)| StallSiteReport {
                    pc,
                    function: function_of(&regions, pc),
                    breakdown,
                })
                .collect();
            let stall_heatmap =
                if stall_reports.is_empty() { String::new() } else { machine.stall_heatmap(16) };
            let tracer = machine.take_tracer();
            let guest_profile =
                machine.take_profiler().map(|p| Box::new(p.report(machine.symbols())));
            (
                AppRun {
                    counters: machine.counters(),
                    profile: machine.profile_results(),
                    validated,
                    mismatches,
                    converted_hammocks,
                    rejected_hammocks,
                    branch_sites: site_reports,
                    stall_sites: stall_reports,
                    stall_heatmap,
                    phases: PhaseNanos::default(),
                    guest_profile,
                },
                tracer,
            )
        };
        let execute_started = Instant::now();
        let result = machine.run_timed(BUDGET)?;
        phases.execute = execute_started.elapsed().as_nanos() as u64;
        if let StopReason::Watchdog(kind) = result.stop {
            // Graceful timeout: hand back the partial report plus a
            // checkpoint so a supervisor can resume under a wider budget.
            let checkpoint_started = Instant::now();
            let checkpoint = Box::new(machine.checkpoint());
            phases.checkpoint += checkpoint_started.elapsed().as_nanos() as u64;
            let note = format!("watchdog expired at pc {:#010x}", machine.cpu().pc);
            let (mut partial, _) = collect(&mut machine, false, vec![note]);
            partial.phases = phases;
            return Err(RunError::Timeout { kind, partial: Box::new(partial), checkpoint });
        }
        if matches!(result.stop, StopReason::Diverged) {
            if let Some(d) = machine.take_divergence() {
                return Err(RunError::Divergence { divergence: Box::new(d) });
            }
            return Err(RunError::Image("diverged stop without a divergence record".into()));
        }
        if !result.halted {
            return Err(RunError::Budget);
        }
        // Read back and validate.
        let oracle_started = Instant::now();
        let out = machine.mem().read_i32s(plan.out_addr, plan.out_len).map_err(RunError::Layout)?;
        let aux = if plan.aux_len > 0 {
            machine.mem().read_i32s(plan.aux_addr, plan.aux_len).map_err(RunError::Layout)?
        } else {
            Vec::new()
        };
        let mut mismatches = Vec::new();
        self.validate(&out, &aux, &mut mismatches);
        let validated = mismatches.is_empty();
        phases.oracle = oracle_started.elapsed().as_nanos() as u64;
        let (mut run, tracer) = collect(&mut machine, validated, mismatches);
        run.phases = phases;
        Ok((run, tracer))
    }

    fn validate(&self, out: &[i32], aux: &[i32], mismatches: &mut Vec<String>) {
        match &self.expected {
            Expected::Fasta { scores } | Expected::Blast { scores } => {
                compare("score", scores, out, mismatches);
            }
            Expected::Clustalw { pair_scores, joins } => {
                compare("pairwise score", pair_scores, out, mismatches);
                compare("guide-tree join", joins, aux, mismatches);
            }
            Expected::Hmmer { scores, ranked } => {
                compare("viterbi score", scores, out, mismatches);
                compare("rank", ranked, aux, mismatches);
            }
        }
    }
}

fn compare(what: &str, expected: &[i32], actual: &[i32], mismatches: &mut Vec<String>) {
    if expected.len() != actual.len() {
        mismatches.push(format!(
            "{what}: length mismatch ({} vs {})",
            expected.len(),
            actual.len()
        ));
        return;
    }
    for (i, (e, a)) in expected.iter().zip(actual).enumerate() {
        if e != a {
            mismatches.push(format!("{what}[{i}]: expected {e}, got {a}"));
            if mismatches.len() > 8 {
                mismatches.push("…".to_string());
                return;
            }
        }
    }
}

/// Host replica of the kernel's `guide_tree` (validates the simulated
/// merge order), operating on the integer pairwise score matrix.
pub fn host_guide_tree(scores: &[i32], nseq: usize) -> Vec<i32> {
    let mut s: Vec<i64> = scores.iter().map(|&x| x as i64).collect();
    let mut active = vec![1i64; nseq];
    let mut weight = vec![1i64; nseq];
    let mut joins = Vec::new();
    for _ in 0..nseq.saturating_sub(1) {
        let (mut bi, mut bj, mut best) = (usize::MAX, usize::MAX, i64::MIN);
        for ii in 0..nseq {
            if active[ii] == 0 {
                continue;
            }
            for jj in (ii + 1)..nseq {
                if active[jj] == 0 {
                    continue;
                }
                if s[ii * nseq + jj] > best {
                    best = s[ii * nseq + jj];
                    bi = ii;
                    bj = jj;
                }
            }
        }
        let (wi, wj) = (weight[bi], weight[bj]);
        for k in 0..nseq {
            if active[k] == 1 && k != bi && k != bj {
                // Match the kernel's i32 arithmetic exactly (mullw wraps,
                // divw truncates toward zero).
                let na = ((s[bi * nseq + k] as i32).wrapping_mul(wi as i32) as i64
                    + (s[bj * nseq + k] as i32).wrapping_mul(wj as i32) as i64)
                    as i32 as i64
                    / (wi + wj);
                let na = na as i32 as i64;
                s[bi * nseq + k] = na;
                s[k * nseq + bi] = na;
            }
        }
        active[bj] = 0;
        weight[bi] = wi + wj;
        joins.push(bi as i32);
        joins.push(bj as i32);
    }
    joins
}

/// Host replica of the kernel's `rank_scores` insertion sort (stable,
/// descending).
pub fn host_rank(scores: &[i32]) -> Vec<i32> {
    let n = scores.len();
    let mut ranked: Vec<i32> = (0..n as i32).collect();
    for i in 1..n {
        let mut j = i;
        while j > 0 && scores[ranked[j] as usize] > scores[ranked[j - 1] as usize] {
            ranked.swap(j, j - 1);
            j -= 1;
        }
    }
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_rank_is_stable_descending() {
        assert_eq!(host_rank(&[5, 9, 9, 1]), vec![1, 2, 0, 3]);
        assert_eq!(host_rank(&[]), Vec::<i32>::new());
        assert_eq!(host_rank(&[3]), vec![0]);
    }

    #[test]
    fn host_guide_tree_merges_most_similar_first() {
        // 3 sequences: 0 and 2 most similar.
        let nseq = 3;
        let mut s = vec![0i32; 9];
        s[1] = 10;
        s[3] = 10;
        s[2] = 90;
        s[2 * 3] = 90;
        s[3 + 2] = 20;
        s[2 * 3 + 1] = 20;
        let joins = host_guide_tree(&s, nseq);
        assert_eq!(&joins[..2], &[0, 2]);
        assert_eq!(joins.len(), 4);
    }

    #[test]
    fn variants_map_to_expected_options() {
        assert_eq!(Variant::Baseline.options(), kernelc::Options::baseline());
        assert_eq!(Variant::Combination.options(), kernelc::Options::combination());
        assert_eq!(Variant::Baseline.flavor(), Flavor::Branchy);
        assert_eq!(Variant::HandMax.flavor(), Flavor::Hand);
        assert_eq!(Variant::CompilerIsel.flavor(), Flavor::Branchy);
        assert_eq!(Variant::all().len(), 6);
    }

    #[test]
    fn fasta_test_workload_validates_on_baseline() {
        let wl = Workload::new(App::Fasta, Scale::Test, 42);
        let run = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        assert!(run.validated, "mismatches: {:?}", run.mismatches);
        assert!(run.counters.instructions > 1000);
        assert!(run.profile.iter().any(|(n, _, _)| n == "dropgsw"));
    }

    #[test]
    fn fasta_all_variants_validate_and_agree() {
        let wl = Workload::new(App::Fasta, Scale::Test, 7);
        for v in Variant::all() {
            let run = wl.run(v, &CoreConfig::power5()).unwrap();
            assert!(run.validated, "{v:?}: {:?}", run.mismatches);
        }
    }

    #[test]
    fn clustalw_test_workload_validates() {
        let wl = Workload::new(App::Clustalw, Scale::Test, 11);
        for v in [Variant::Baseline, Variant::HandMax, Variant::CompilerIsel] {
            let run = wl.run(v, &CoreConfig::power5()).unwrap();
            assert!(run.validated, "{v:?}: {:?}", run.mismatches);
        }
    }

    #[test]
    fn hmmer_test_workload_validates() {
        let wl = Workload::new(App::Hmmer, Scale::Test, 13);
        for v in [Variant::Baseline, Variant::HandMax, Variant::CompilerMax] {
            let run = wl.run(v, &CoreConfig::power5()).unwrap();
            assert!(run.validated, "{v:?}: {:?}", run.mismatches);
        }
    }

    #[test]
    fn blast_test_workload_validates() {
        let wl = Workload::new(App::Blast, Scale::Test, 17);
        for v in [Variant::Baseline, Variant::HandIsel, Variant::Combination] {
            let run = wl.run(v, &CoreConfig::power5()).unwrap();
            assert!(run.validated, "{v:?}: {:?}", run.mismatches);
        }
    }

    #[test]
    fn predication_reduces_branch_fraction() {
        let wl = Workload::new(App::Clustalw, Scale::Test, 19);
        let base = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        let hand = wl.run(Variant::HandMax, &CoreConfig::power5()).unwrap();
        assert!(
            hand.counters.branch_fraction() < base.counters.branch_fraction(),
            "hand {:.3} vs base {:.3}",
            hand.counters.branch_fraction(),
            base.counters.branch_fraction()
        );
        assert!(hand.counters.predicated_ops > 0);
        assert_eq!(base.counters.predicated_ops, 0);
    }

    #[test]
    fn predication_improves_ipc() {
        let wl = Workload::new(App::Clustalw, Scale::Test, 23);
        let base = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        let hand = wl.run(Variant::HandMax, &CoreConfig::power5()).unwrap();
        assert!(
            hand.counters.ipc() > base.counters.ipc(),
            "hand {:.3} vs base {:.3}",
            hand.counters.ipc(),
            base.counters.ipc()
        );
    }
}
