//! Uniform schema-version checking for every serialized document family.
//!
//! The workspace persists several JSON document kinds — checkpoints
//! (`bioarch-checkpoint/v1`), divergence repros (`bioarch-divergence/v1`),
//! experiment reports (`bioarch-report/v1`), telemetry snapshots
//! (`bioarch-metrics/v1`), campaign journals (`bioarch-journal/v1`),
//! and distributed-campaign wire frames (`bioarch-wire/v1`).
//! Each document embeds its identifier in a top-level `"schema"` field;
//! every parser funnels through [`check_schema`] so an unsupported or
//! missing marker surfaces as one typed [`UnsupportedVersion`] error with
//! a uniform message, instead of each parser inventing its own wording.

use crate::json::Json;

/// A document declared a schema this build does not support (or declared
/// none at all). Carries both sides so callers — and humans reading a
/// degraded report — can tell a version skew from a corrupt file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedVersion {
    /// The `"schema"` string found in the document (empty when the field
    /// was missing or not a string).
    pub found: String,
    /// The identifier this build supports for the document family.
    pub supported: &'static str,
}

impl std::fmt::Display for UnsupportedVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.found.is_empty() {
            write!(f, "missing schema marker (want {:?})", self.supported)
        } else {
            write!(f, "unsupported schema {:?} (want {:?})", self.found, self.supported)
        }
    }
}

impl std::error::Error for UnsupportedVersion {}

/// Check a parsed document's top-level `"schema"` marker against the
/// identifier this build supports for the family.
///
/// # Errors
///
/// Returns [`UnsupportedVersion`] when the marker is missing, not a
/// string, or any value other than `supported`.
pub fn check_schema(doc: &Json, supported: &'static str) -> Result<(), UnsupportedVersion> {
    let found = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if found == supported {
        Ok(())
    } else {
        Err(UnsupportedVersion { found: found.to_string(), supported })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_matching_marker() {
        let doc = Json::obj().set("schema", Json::Str("bioarch-report/v1".into()));
        assert!(check_schema(&doc, "bioarch-report/v1").is_ok());
    }

    #[test]
    fn rejects_wrong_missing_and_nonstring_markers() {
        let wrong = Json::obj().set("schema", Json::Str("bioarch-report/v9".into()));
        let err = check_schema(&wrong, "bioarch-report/v1").unwrap_err();
        assert_eq!(err.found, "bioarch-report/v9");
        assert_eq!(err.supported, "bioarch-report/v1");
        assert!(err.to_string().contains("bioarch-report/v9"));
        assert!(err.to_string().contains("bioarch-report/v1"));

        let missing = Json::obj();
        let err = check_schema(&missing, "bioarch-report/v1").unwrap_err();
        assert_eq!(err.found, "");
        assert!(err.to_string().contains("missing schema marker"));

        let nonstring = Json::obj().set("schema", Json::Num(1.0));
        assert!(check_schema(&nonstring, "bioarch-report/v1").is_err());
    }
}
