//! Kernel-language sources for the four BioPerf applications.
//!
//! Each application has two source flavours:
//!
//! * [`Flavor::Branchy`] — the original code: every `max` in the DP
//!   recurrences is a short conditional (`if (a < b) a = b;`), exactly the
//!   statements the paper's Section III shows compiling to compare +
//!   conditional-branch pairs;
//! * [`Flavor::Hand`] — the paper's *hand-inserted* rewrite: the DP `max`
//!   statements use the `max()` intrinsic (register-staged where the
//!   original worked on memory operands), while less obvious conditionals
//!   (best-score tracking, clamps, boundary logic) are left branchy for
//!   the compiler to find.
//!
//! The styles are deliberately faithful to the real packages:
//! Fasta's `dropgsw` and Blast's gapped extension carry DP state in
//! registers, while Clustalw's `forward_pass` and HMMER2's `P7Viterbi`
//! famously operate directly on memory arrays (`HH[j]`, `mmx[i][k]`) —
//! which is why the paper's compiler loses to hand insertion on those two.
//!
//! Sources are templates with `@TOKEN@` placeholders for addresses and
//! scoring constants, filled in by [`render`] once the workload's memory
//! layout is known.

/// Source flavour (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// Original branchy code.
    Branchy,
    /// Hand-predicated code (`max()` intrinsics at the obvious sites).
    Hand,
}

/// Values substituted into the kernel templates.
#[derive(Debug, Clone, Default)]
pub struct Consts {
    /// `(token, value)` pairs; token text without the `@` wrappers.
    pub values: Vec<(&'static str, i64)>,
}

impl Consts {
    /// Add a substitution.
    pub fn set(mut self, token: &'static str, value: i64) -> Self {
        self.values.push((token, value));
        self
    }
}

/// Fill a template's `@TOKEN@` placeholders.
///
/// # Panics
///
/// Panics if any placeholder remains unreplaced (catching layout bugs at
/// build time rather than as baffling compile errors).
pub fn render(template: &str, consts: &Consts) -> String {
    let mut s = template.to_string();
    for (token, value) in &consts.values {
        s = s.replace(&format!("@{token}@"), &value.to_string());
    }
    if let Some(pos) = s.find('@') {
        let tail: String = s[pos..].chars().take(24).collect();
        panic!("unreplaced kernel template token near {tail:?}");
    }
    s
}

/// `i32::MIN / 4`, the -∞ used by the Needleman-Wunsch/Smith-Waterman
/// reference implementations in [`bioalign`].
pub const NEG_NW: i64 = (i32::MIN / 4) as i64;

// ---------------------------------------------------------------------
// Fasta (ssearch): dropgsw — affine-gap Smith-Waterman, register-carried.
// ---------------------------------------------------------------------

const FASTA_DROPGSW_BRANCHY: &str = "
fn dropgsw(b: bptr, m: int, work: ptr) -> int {
    let q: bptr = @QPTR@;
    let mat: ptr = @MAT@;
    let j = 0;
    while (j <= m) {
        work[j] = 0;
        work[m + 1 + j] = @NEGNW@;
        j = j + 1;
    }
    let best = 0;
    let i = 0;
    while (i < @QLEN@) {
        let ca = q[i] * 24;
        let diag = 0;
        let e = @NEGNW@;
        let vleft = 0;
        let j2 = 1;
        while (j2 <= m) {
            let t = vleft - @WG@;
            if (e < t) { e = t; }
            e = e - @WS@;
            let vup = work[j2];
            let f = work[m + 1 + j2];
            let t2 = vup - @WG@;
            if (f < t2) { f = t2; }
            f = f - @WS@;
            let v = diag + mat[ca + b[j2 - 1]];
            if (v < e) { v = e; }
            if (v < f) { v = f; }
            if (v < 0) { v = 0; }
            diag = vup;
            work[j2] = v;
            work[m + 1 + j2] = f;
            vleft = v;
            if (best < v) { best = v; }
            j2 = j2 + 1;
        }
        i = i + 1;
    }
    return best;
}
";

const FASTA_DROPGSW_HAND: &str = "
fn dropgsw(b: bptr, m: int, work: ptr) -> int {
    let q: bptr = @QPTR@;
    let mat: ptr = @MAT@;
    let j = 0;
    while (j <= m) {
        work[j] = 0;
        work[m + 1 + j] = @NEGNW@;
        j = j + 1;
    }
    let best = 0;
    let i = 0;
    while (i < @QLEN@) {
        let ca = q[i] * 24;
        let diag = 0;
        let e = @NEGNW@;
        let vleft = 0;
        let j2 = 1;
        while (j2 <= m) {
            e = max(e, vleft - @WG@) - @WS@;
            let vup = work[j2];
            let f = work[m + 1 + j2];
            if (f < vup - @WG@) { f = vup - @WG@; }
            f = f - @WS@;
            let v = diag + mat[ca + b[j2 - 1]];
            v = max(v, e);
            v = max(v, f);
            v = max(v, 0);
            diag = vup;
            work[j2] = v;
            work[m + 1 + j2] = f;
            vleft = v;
            if (best < v) { best = v; }
            j2 = j2 + 1;
        }
        i = i + 1;
    }
    return best;
}
";

const FASTA_COMMON: &str = "
fn histint(sc: int) -> int {
    let hist: ptr = @HIST@;
    let b = sc / 8;
    if (b > 63) { b = 63; }
    if (b < 0) { b = 0; }
    hist[b] = hist[b] + 1;
    return b;
}

fn main(pb: ptr) -> int {
    let dbbase = pb[0];
    let offs: ptr = pb[1];
    let lens: ptr = pb[2];
    let ndb = pb[3];
    let work: ptr = pb[4];
    let out: ptr = pb[5];
    let k = 0;
    let total = 0;
    while (k < ndb) {
        let sp: bptr = dbbase + offs[k];
        let sc = dropgsw(sp, lens[k], work);
        out[k] = sc;
        histint(sc);
        total = total + sc;
        k = k + 1;
    }
    return total;
}
";

/// The full Fasta (`ssearch`) program in the given flavour.
pub fn fasta(flavor: Flavor) -> String {
    let kernel = match flavor {
        Flavor::Branchy => FASTA_DROPGSW_BRANCHY,
        Flavor::Hand => FASTA_DROPGSW_HAND,
    };
    format!("{kernel}\n{FASTA_COMMON}")
}

// ---------------------------------------------------------------------
// Clustalw: forward_pass — global alignment, memory-carried DD[] array.
// ---------------------------------------------------------------------

const CLUSTALW_FP_BRANCHY: &str = "
fn forward_pass(a: bptr, n: int, b: bptr, m: int, hh: ptr, dd: ptr) -> int {
    let mat: ptr = @MAT@;
    hh[0] = 0;
    let j = 1;
    while (j <= m) {
        hh[j] = -@WG@ - j * @WS@;
        dd[j] = hh[j];
        j = j + 1;
    }
    let i = 1;
    let vleft = 0;
    while (i <= n) {
        let ca = a[i - 1] * 24;
        let diag = hh[0];
        hh[0] = -@WG@ - i * @WS@;
        let e = hh[0];
        vleft = hh[0];
        let j2 = 1;
        while (j2 <= m) {
            let t = vleft - @WG@;
            if (e < t) { e = t; }
            e = e - @WS@;
            let vup = hh[j2];
            let t2 = vup - @WG@;
            if (dd[j2] < t2) { dd[j2] = t2; }
            dd[j2] = dd[j2] - @WS@;
            let v = diag + mat[ca + b[j2 - 1]];
            if (v < e) { v = e; }
            if (v < dd[j2]) { v = dd[j2]; }
            diag = vup;
            hh[j2] = v;
            vleft = v;
            j2 = j2 + 1;
        }
        i = i + 1;
    }
    return vleft;
}
";

const CLUSTALW_FP_HAND: &str = "
fn forward_pass(a: bptr, n: int, b: bptr, m: int, hh: ptr, dd: ptr) -> int {
    let mat: ptr = @MAT@;
    hh[0] = 0;
    let j = 1;
    while (j <= m) {
        hh[j] = -@WG@ - j * @WS@;
        dd[j] = hh[j];
        j = j + 1;
    }
    let i = 1;
    let vleft = 0;
    while (i <= n) {
        let ca = a[i - 1] * 24;
        let diag = hh[0];
        hh[0] = -@WG@ - i * @WS@;
        let e = hh[0];
        vleft = hh[0];
        let j2 = 1;
        while (j2 <= m) {
            e = max(e, vleft - @WG@) - @WS@;
            let vup = hh[j2];
            let f = max(dd[j2], vup - @WG@) - @WS@;
            dd[j2] = f;
            let v = diag + mat[ca + b[j2 - 1]];
            v = max(v, e);
            v = max(v, f);
            diag = vup;
            hh[j2] = v;
            vleft = v;
            j2 = j2 + 1;
        }
        i = i + 1;
    }
    return vleft;
}
";

const CLUSTALW_COMMON: &str = "
fn guide_tree(scores: ptr, nseq: int, active: ptr, joins: ptr) -> int {
    let i = 0;
    while (i < nseq) {
        active[i] = 1;
        active[nseq + i] = 1;
        i = i + 1;
    }
    let step = 0;
    let acc = 0;
    while (step < nseq - 1) {
        let bi = -1;
        let bj = -1;
        let best = -2000000000;
        let ii = 0;
        while (ii < nseq) {
            if (active[ii] > 0) {
                let jj = ii + 1;
                while (jj < nseq) {
                    if (active[jj] > 0) {
                        let s = scores[ii * nseq + jj];
                        if (best < s) {
                            best = s;
                            bi = ii;
                            bj = jj;
                        }
                    }
                    jj = jj + 1;
                }
            }
            ii = ii + 1;
        }
        let wi = active[nseq + bi];
        let wj = active[nseq + bj];
        let k = 0;
        while (k < nseq) {
            if (active[k] > 0) {
                if (k != bi) {
                    if (k != bj) {
                        let na = (scores[bi * nseq + k] * wi + scores[bj * nseq + k] * wj) / (wi + wj);
                        scores[bi * nseq + k] = na;
                        scores[k * nseq + bi] = na;
                    }
                }
            }
            k = k + 1;
        }
        active[bj] = 0;
        active[nseq + bi] = wi + wj;
        joins[step * 2] = bi;
        joins[step * 2 + 1] = bj;
        acc = acc + best;
        step = step + 1;
    }
    return acc;
}

fn main(pb: ptr) -> int {
    let seqs = pb[0];
    let offs: ptr = pb[1];
    let lens: ptr = pb[2];
    let nseq = pb[3];
    let hh: ptr = pb[4];
    let dd: ptr = pb[5];
    let scores: ptr = pb[6];
    let active: ptr = pb[7];
    let joins: ptr = pb[8];
    let pairout: ptr = pb[9];
    let i = 0;
    while (i < nseq) {
        let j = i + 1;
        while (j < nseq) {
            let sa: bptr = seqs + offs[i];
            let sb: bptr = seqs + offs[j];
            let sc = forward_pass(sa, lens[i], sb, lens[j], hh, dd);
            scores[i * nseq + j] = sc;
            scores[j * nseq + i] = sc;
            j = j + 1;
        }
        i = i + 1;
    }
    i = 0;
    while (i < nseq * nseq) {
        pairout[i] = scores[i];
        i = i + 1;
    }
    let g = guide_tree(scores, nseq, active, joins);
    return g;
}
";

/// The full Clustalw program in the given flavour.
pub fn clustalw(flavor: Flavor) -> String {
    let kernel = match flavor {
        Flavor::Branchy => CLUSTALW_FP_BRANCHY,
        Flavor::Hand => CLUSTALW_FP_HAND,
    };
    format!("{kernel}\n{CLUSTALW_COMMON}")
}

// ---------------------------------------------------------------------
// Hmmer (hmmpfam): P7Viterbi — integer Plan7 Viterbi, memory-carried
// exactly like HMMER2's macro style.
//
// Model block layout (words): [0]=M, then per-node interleaved transition
// records of 9 words for k in 0..=M — tmm,tim,tdm,tmi,tii,tmd,tdd,bsc,esc
// at 1+9k — followed by match emissions transposed [res][node] at
// 1+9*mp1 (24 residue rows of mp1) and insert emissions at 1+33*mp1.
// (HMMER2 likewise interleaves tsc and transposes msc for exactly this
// reason: one base register per row.)
// Work layout: two banks of 3 rows (m/i/d), each mp1 words.
// ---------------------------------------------------------------------

const HMMER_VITERBI_BRANCHY: &str = "
fn p7viterbi(x: bptr, n: int, model: ptr, work: ptr) -> int {
    let m = model[0];
    let mp1 = m + 1;
    let k = 0;
    while (k < mp1 * 6) {
        work[k] = -100000;
        k = k + 1;
    }
    let best = -100000;
    let prev = 0;
    let cur = mp1 * 3;
    let i = 0;
    while (i < n) {
        let xi = x[i];
        let mrow = 1 + 9 * mp1 + xi * mp1;
        work[cur] = -100000;
        work[cur + mp1] = -100000;
        work[cur + 2 * mp1] = -100000;
        work[cur + 2 * mp1 + 1] = -100000;
        k = 1;
        while (k <= m) {
            let tp = 9 * k - 8;
            work[cur + k] = work[prev + k - 1] + model[tp];
            let sc = work[prev + mp1 + k - 1] + model[tp + 1];
            if (work[cur + k] < sc) { work[cur + k] = sc; }
            sc = work[prev + 2 * mp1 + k - 1] + model[tp + 2];
            if (work[cur + k] < sc) { work[cur + k] = sc; }
            sc = model[tp + 16];
            if (work[cur + k] < sc) { work[cur + k] = sc; }
            work[cur + k] = work[cur + k] + model[mrow + k];
            if (work[cur + k] < -1000000) { work[cur + k] = -1000000; }
            if (k < m) {
                work[cur + mp1 + k] = work[prev + k] + model[tp + 12];
                sc = work[prev + mp1 + k] + model[tp + 13];
                if (work[cur + mp1 + k] < sc) { work[cur + mp1 + k] = sc; }
                work[cur + mp1 + k] = work[cur + mp1 + k] + model[mrow + 24 * mp1 + k];
                if (work[cur + mp1 + k] < -1000000) { work[cur + mp1 + k] = -1000000; }
            }
            if (k > 1) {
                work[cur + 2 * mp1 + k] = work[cur + k - 1] + model[tp + 5];
                sc = work[cur + 2 * mp1 + k - 1] + model[tp + 6];
                if (work[cur + 2 * mp1 + k] < sc) { work[cur + 2 * mp1 + k] = sc; }
                if (work[cur + 2 * mp1 + k] < -1000000) { work[cur + 2 * mp1 + k] = -1000000; }
            }
            let ex = work[cur + k] + model[tp + 17];
            if (best < ex) { best = ex; }
            k = k + 1;
        }
        prev = 3 * mp1 - prev;
        cur = 3 * mp1 - cur;
        i = i + 1;
    }
    return best;
}
";

const HMMER_VITERBI_HAND: &str = "
fn p7viterbi(x: bptr, n: int, model: ptr, work: ptr) -> int {
    let m = model[0];
    let mp1 = m + 1;
    let k = 0;
    while (k < mp1 * 6) {
        work[k] = -100000;
        k = k + 1;
    }
    let best = -100000;
    let prev = 0;
    let cur = mp1 * 3;
    let i = 0;
    while (i < n) {
        let xi = x[i];
        let mrow = 1 + 9 * mp1 + xi * mp1;
        work[cur] = -100000;
        work[cur + mp1] = -100000;
        work[cur + 2 * mp1] = -100000;
        work[cur + 2 * mp1 + 1] = -100000;
        k = 1;
        while (k <= m) {
            let tp = 9 * k - 8;
            let mm = work[prev + k - 1] + model[tp];
            mm = max(mm, work[prev + mp1 + k - 1] + model[tp + 1]);
            mm = max(mm, work[prev + 2 * mp1 + k - 1] + model[tp + 2]);
            mm = max(mm, model[tp + 16]);
            mm = mm + model[mrow + k];
            mm = max(mm, -1000000);
            work[cur + k] = mm;
            if (k < m) {
                let ins = work[prev + k] + model[tp + 12];
                ins = max(ins, work[prev + mp1 + k] + model[tp + 13]);
                ins = ins + model[mrow + 24 * mp1 + k];
                ins = max(ins, -1000000);
                work[cur + mp1 + k] = ins;
            }
            if (k > 1) {
                let del = work[cur + k - 1] + model[tp + 5];
                del = max(del, work[cur + 2 * mp1 + k - 1] + model[tp + 6]);
                del = max(del, -1000000);
                work[cur + 2 * mp1 + k] = del;
            }
            let ex = mm + model[tp + 17];
            if (best < ex) { best = ex; }
            k = k + 1;
        }
        prev = 3 * mp1 - prev;
        cur = 3 * mp1 - cur;
        i = i + 1;
    }
    return best;
}
";

const HMMER_COMMON: &str = "
fn rank_scores(out: ptr, nmod: int, ranked: ptr) -> int {
    let i = 0;
    while (i < nmod) {
        ranked[i] = i;
        i = i + 1;
    }
    i = 1;
    while (i < nmod) {
        let j = i;
        while (j > 0 && out[ranked[j]] > out[ranked[j - 1]]) {
            let t = ranked[j];
            ranked[j] = ranked[j - 1];
            ranked[j - 1] = t;
            j = j - 1;
        }
        i = i + 1;
    }
    return ranked[0];
}

fn main(pb: ptr) -> int {
    let x = pb[0];
    let n = pb[1];
    let mods: ptr = pb[2];
    let nmod = pb[3];
    let work: ptr = pb[4];
    let out: ptr = pb[5];
    let ranked: ptr = pb[6];
    let xs: bptr = x;
    let k = 0;
    let tot = 0;
    while (k < nmod) {
        let mdl: ptr = mods[k];
        let sc = p7viterbi(xs, n, mdl, work);
        out[k] = sc;
        tot = tot + sc;
        k = k + 1;
    }
    rank_scores(out, nmod, ranked);
    return tot;
}
";

/// The full Hmmer (`hmmpfam`) program in the given flavour.
pub fn hmmer(flavor: Flavor) -> String {
    let kernel = match flavor {
        Flavor::Branchy => HMMER_VITERBI_BRANCHY,
        Flavor::Hand => HMMER_VITERBI_HAND,
    };
    format!("{kernel}\n{HMMER_COMMON}")
}

// ---------------------------------------------------------------------
// Blast (blastp): word scan → two-hit trigger → ungapped X-drop extension
// → banded gapped extension (the paper's SEMI_G_ALIGN_EX).
// ---------------------------------------------------------------------

const BLAST_BAND_BRANCHY: &str = "
fn band_half(a: bptr, n: int, b: bptr, m: int) -> int {
    if (n < 1) { return 0; }
    if (m < 1) { return 0; }
    let v: ptr = @BANDV@;
    let f: ptr = @BANDF@;
    let mat: ptr = @MAT@;
    v[0] = 0;
    f[0] = @NEGNW@;
    let j = 1;
    while (j <= m) {
        if (j <= @BAND@) { v[j] = -@WG@ - j * @WS@; } else { v[j] = @NEGNW@; }
        f[j] = v[j];
        j = j + 1;
    }
    let best = 0;
    let i = 1;
    while (i <= n) {
        let lo = i - @BAND@;
        if (lo < 1) { lo = 1; }
        let hi = i + @BAND@;
        if (hi > m) { hi = m; }
        if (lo > m) {
            i = n;
        } else {
            let diagp = v[lo - 1];
            let e = @NEGNW@;
            let vleft = @NEGNW@;
            if (lo == 1) {
                if (i <= @BAND@) { v[0] = -@WG@ - i * @WS@; } else { v[0] = @NEGNW@; }
                e = v[0];
                vleft = v[0];
            }
            if (hi < m) {
                v[hi + 1] = @NEGNW@;
                f[hi + 1] = @NEGNW@;
            }
            let j2 = lo;
            while (j2 <= hi) {
                let val = diagp + mat[a[i - 1] * 24 + b[j2 - 1]];
                if (e < vleft - @WG@) { e = vleft - @WG@; }
                e = e - @WS@;
                let fc = f[j2];
                if (fc < v[j2] - @WG@) { fc = v[j2] - @WG@; }
                fc = fc - @WS@;
                if (val < e) { val = e; }
                if (val < fc) { val = fc; }
                diagp = v[j2];
                v[j2] = val;
                f[j2] = fc;
                vleft = val;
                if (best < val) { best = val; }
                j2 = j2 + 1;
            }
        }
        i = i + 1;
    }
    return best;
}
";

const BLAST_BAND_HAND: &str = "
fn band_half(a: bptr, n: int, b: bptr, m: int) -> int {
    if (n < 1) { return 0; }
    if (m < 1) { return 0; }
    let v: ptr = @BANDV@;
    let f: ptr = @BANDF@;
    let mat: ptr = @MAT@;
    v[0] = 0;
    f[0] = @NEGNW@;
    let j = 1;
    while (j <= m) {
        if (j <= @BAND@) { v[j] = -@WG@ - j * @WS@; } else { v[j] = @NEGNW@; }
        f[j] = v[j];
        j = j + 1;
    }
    let best = 0;
    let i = 1;
    while (i <= n) {
        let lo = i - @BAND@;
        if (lo < 1) { lo = 1; }
        let hi = i + @BAND@;
        if (hi > m) { hi = m; }
        if (lo > m) {
            i = n;
        } else {
            let diagp = v[lo - 1];
            let e = @NEGNW@;
            let vleft = @NEGNW@;
            if (lo == 1) {
                if (i <= @BAND@) { v[0] = -@WG@ - i * @WS@; } else { v[0] = @NEGNW@; }
                e = v[0];
                vleft = v[0];
            }
            if (hi < m) {
                v[hi + 1] = @NEGNW@;
                f[hi + 1] = @NEGNW@;
            }
            let j2 = lo;
            while (j2 <= hi) {
                let val = diagp + mat[a[i - 1] * 24 + b[j2 - 1]];
                if (e < vleft - @WG@) { e = vleft - @WG@; }
                e = e - @WS@;
                let fc = f[j2];
                if (fc < v[j2] - @WG@) { fc = v[j2] - @WG@; }
                fc = fc - @WS@;
                val = max(val, e);
                val = max(val, fc);
                diagp = v[j2];
                v[j2] = val;
                f[j2] = fc;
                vleft = val;
                if (best < val) { best = val; }
                j2 = j2 + 1;
            }
        }
        i = i + 1;
    }
    return best;
}
";

const BLAST_COMMON: &str = "
fn ungapped(q: bptr, qlen: int, s: bptr, slen: int, qi: int, sj: int) -> int {
    let mat: ptr = @MAT@;
    let best = mat[q[qi] * 24 + s[sj]] + mat[q[qi + 1] * 24 + s[sj + 1]] + mat[q[qi + 2] * 24 + s[sj + 2]];
    let aq = qi + 2;
    let asj = sj + 2;
    let run = best;
    let i = qi + 3;
    let j = sj + 3;
    while (i < qlen && j < slen) {
        run = run + mat[q[i] * 24 + s[j]];
        if (best < run) {
            best = run;
            aq = i;
            asj = j;
        }
        if (run <= best - @XDROP@) {
            i = qlen;
            j = slen;
        }
        i = i + 1;
        j = j + 1;
    }
    let runl = best;
    let running = best;
    i = qi;
    j = sj;
    while (i > 0 && j > 0) {
        i = i - 1;
        j = j - 1;
        runl = runl + mat[q[i] * 24 + s[j]];
        if (running < runl) { running = runl; }
        if (runl <= running - @XDROP@) {
            i = 0;
            j = 0;
        }
    }
    let anch: ptr = @ANCH@;
    anch[0] = aq;
    anch[1] = asj;
    return running;
}

fn semi_gapped(q: bptr, qlen: int, s: bptr, slen: int) -> int {
    let anch: ptr = @ANCH@;
    let aq = anch[0];
    let asj = anch[1];
    let mat: ptr = @MAT@;
    let sc = mat[q[aq] * 24 + s[asj]];
    let fwd = band_half(q + aq + 1, qlen - aq - 1, s + asj + 1, slen - asj - 1);
    let qrev: bptr = @QREV@;
    let srev: bptr = s + @SREVDELTA@;
    let bwd = band_half(qrev + qlen - aq, aq, srev + slen - asj, asj);
    return sc + fwd + bwd;
}

fn process_hit(q: bptr, qlen: int, s: bptr, slen: int, w: int, h: int, j: int) -> int {
    let pos: ptr = @POS@;
    let woff: ptr = @WOFF@;
    let qi = pos[woff[w] + h];
    let idx = j - qi + qlen;
    let diag: ptr = @DIAG@;
    if (j < diag[idx + @DIAGSTRIDE@]) { return 0; }
    let prev = diag[idx];
    if (j < prev) { return 0; }
    diag[idx] = j + 3;
    if (j - prev > @WINDOW@) { return 0; }
    let usc = ungapped(q, qlen, s, slen, qi, j);
    if (usc < @GAPTRIG@) { return 0; }
    let g = semi_gapped(q, qlen, s, slen);
    let anch: ptr = @ANCH@;
    diag[idx + @DIAGSTRIDE@] = anch[1] + 1;
    if (g < @MINREP@) { return 0; }
    return g;
}

fn scan(s: bptr, slen: int, q: bptr, qlen: int, out: ptr, subj: int) -> int {
    let diag: ptr = @DIAG@;
    let n = qlen + slen + 2;
    let d = 0;
    while (d < n) {
        diag[d] = -1000000;
        diag[d + @DIAGSTRIDE@] = -1000000;
        d = d + 1;
    }
    let best = 0;
    let wcnt: ptr = @WCNT@;
    let j = 0;
    let jmax = slen - 3;
    while (j <= jmax) {
        let w = (s[j] * 24 + s[j + 1]) * 24 + s[j + 2];
        let cnt = wcnt[w];
        if (cnt > 0) {
            let h = 0;
            while (h < cnt) {
                let g = process_hit(q, qlen, s, slen, w, h, j);
                if (best < g) { best = g; }
                h = h + 1;
            }
        }
        j = j + 1;
    }
    out[subj] = best;
    return best;
}

fn main(pb: ptr) -> int {
    let dbbase = pb[0];
    let offs: ptr = pb[1];
    let lens: ptr = pb[2];
    let ndb = pb[3];
    let out: ptr = pb[4];
    let q: bptr = @QPTR@;
    let k = 0;
    let tot = 0;
    while (k < ndb) {
        let sp: bptr = dbbase + offs[k];
        let g = scan(sp, lens[k], q, @QLEN@, out, k);
        tot = tot + g;
        k = k + 1;
    }
    return tot;
}
";

/// The full Blast (`blastp`) program in the given flavour.
pub fn blast(flavor: Flavor) -> String {
    let kernel = match flavor {
        Flavor::Branchy => BLAST_BAND_BRANCHY,
        Flavor::Hand => BLAST_BAND_HAND,
    };
    format!("{kernel}\n{BLAST_COMMON}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_consts() -> Consts {
        Consts::default()
            .set("QPTR", 0x1000)
            .set("QLEN", 64)
            .set("MAT", 0x2000)
            .set("WG", 10)
            .set("WS", 2)
            .set("NEGNW", NEG_NW)
            .set("HIST", 0x3000)
            .set("BANDV", 0x4000)
            .set("BANDF", 0x5000)
            .set("BAND", 24)
            .set("XDROP", 7)
            .set("ANCH", 0x6000)
            .set("QREV", 0x7000)
            .set("SREVDELTA", 0x8000)
            .set("POS", 0x9000)
            .set("WOFF", 0xA000)
            .set("WCNT", 0xB000)
            .set("DIAG", 0xC000)
            .set("DIAGSTRIDE", 512)
            .set("WINDOW", 40)
            .set("GAPTRIG", 22)
            .set("MINREP", 35)
    }

    #[test]
    fn all_templates_render_and_compile_in_all_modes() {
        let consts = dummy_consts();
        let sources = [
            fasta(Flavor::Branchy),
            fasta(Flavor::Hand),
            clustalw(Flavor::Branchy),
            clustalw(Flavor::Hand),
            hmmer(Flavor::Branchy),
            hmmer(Flavor::Hand),
            blast(Flavor::Branchy),
            blast(Flavor::Hand),
        ];
        let options = [
            kernelc::Options::baseline(),
            kernelc::Options::hand_isel(),
            kernelc::Options::hand_max(),
            kernelc::Options::compiler_isel(),
            kernelc::Options::compiler_max(),
            kernelc::Options::combination(),
        ];
        for (si, src) in sources.iter().enumerate() {
            let rendered = render(src, &consts);
            for o in &options {
                let compiled = kernelc::compile(&rendered, o)
                    .unwrap_or_else(|e| panic!("source {si} under {o:?}: {e}"));
                // Everything must also assemble.
                ppc_asm::assemble(&compiled.asm, 0x1000)
                    .unwrap_or_else(|e| panic!("source {si} under {o:?}: asm error {e}"));
            }
        }
    }

    #[test]
    fn render_panics_on_missing_token() {
        let r = std::panic::catch_unwind(|| render("fn x@NOPE@() {}", &Consts::default()));
        assert!(r.is_err());
    }

    #[test]
    fn branchy_clustalw_has_store_hammocks_compiler_rejects() {
        let consts = dummy_consts();
        let src = render(&clustalw(Flavor::Branchy), &consts);
        let comp = kernelc::compile(&src, &kernelc::Options::compiler_isel()).unwrap();
        assert!(comp.rejected_hammocks > 0, "expected rejections, got none");
        assert!(comp.converted_hammocks > 0, "expected some conversions");
    }

    #[test]
    fn branchy_hmmer_mostly_rejected() {
        let consts = dummy_consts();
        let src = render(&hmmer(Flavor::Branchy), &consts);
        let comp = kernelc::compile(&src, &kernelc::Options::compiler_isel()).unwrap();
        assert!(
            comp.rejected_hammocks > comp.converted_hammocks,
            "hmmer should reject more than it converts: {} vs {}",
            comp.rejected_hammocks,
            comp.converted_hammocks
        );
    }

    #[test]
    fn branchy_fasta_converts_fully_under_compiler_max() {
        let consts = dummy_consts();
        let src = render(&fasta(Flavor::Branchy), &consts);
        let comp = kernelc::compile(&src, &kernelc::Options::compiler_max()).unwrap();
        // The five recurrence maxes plus best-tracking all convert.
        assert!(comp.converted_hammocks >= 5, "converted {}", comp.converted_hammocks);
        assert!(comp.asm.contains("maxw"));
    }

    #[test]
    fn hand_sources_use_the_intrinsic() {
        let consts = dummy_consts();
        for src in
            [fasta(Flavor::Hand), clustalw(Flavor::Hand), hmmer(Flavor::Hand), blast(Flavor::Hand)]
        {
            let rendered = render(&src, &consts);
            let hand = kernelc::compile(&rendered, &kernelc::Options::hand_max()).unwrap();
            assert!(hand.asm.contains("maxw"), "hand flavour lacks maxw");
            let base = kernelc::compile(&rendered, &kernelc::Options::baseline()).unwrap();
            assert!(!base.asm.contains("maxw"));
        }
    }
}
