//! JSON serialization for simulator checkpoints.
//!
//! A [`power5_sim::machine::Checkpoint`] is plain data; this module maps
//! it onto the workspace's hand-rolled [`Json`] document model (schema
//! `bioarch-checkpoint/v1`) so a run can be frozen to disk and resumed
//! bit-exactly in another process.
//!
//! Exactness rules: `u64` values that exceed 2^53 (e.g. the
//! "no line fetched yet" sentinel `u64::MAX`) are serialized as decimal
//! strings, everything else as JSON numbers — both forms parse back to
//! the exact value. Floats use Rust's shortest round-trippable rendering.
//! Memory pages are hex strings, one per nonzero 4 KiB page.

use crate::json::Json;
use crate::schema::check_schema;
use power5_sim::btac::{BtacState, BtacStats};
use power5_sim::cache::{CacheState, CacheStats};
use power5_sim::core::{BranchSite, CoreState};
use power5_sim::counters::{BranchCounters, Counters, IntervalSample, StallBreakdown, StallClass};
use power5_sim::machine::{Checkpoint, ProfileRegion, Watchdog};
use power5_sim::oracle::{ArchField, Divergence};
use power5_sim::predictor::{PredictorState, RasState};
use ppc_isa::insn::ExecUnit;

/// Schema identifier embedded in every checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "bioarch-checkpoint/v1";

// ----------------------------------------------------------------------
// Scalar helpers
// ----------------------------------------------------------------------

/// Largest integer `f64` represents exactly.
const EXACT: u64 = 1 << 53;

fn ju64(v: u64) -> Json {
    if v < EXACT {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

fn pu64(j: &Json) -> Result<u64, String> {
    match j {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < EXACT as f64 => Ok(*n as u64),
        Json::Str(s) => s.parse().map_err(|_| format!("bad u64 string {s:?}")),
        other => Err(format!("expected u64, got {other:?}")),
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    pu64(field(doc, key)?).map_err(|e| format!("{key}: {e}"))
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(doc, key)?).map_err(|_| format!("{key}: out of u32 range"))
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(doc, key)?).map_err(|_| format!("{key}: out of usize range"))
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, String> {
    match field(doc, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("{key}: expected bool, got {other:?}")),
    }
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?.as_f64().ok_or_else(|| format!("{key}: expected number"))
}

fn get_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(doc, key)?.as_array().ok_or_else(|| format!("{key}: expected array"))
}

fn u64_list(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| ju64(v)).collect())
}

fn parse_u64_list(doc: &Json, key: &str) -> Result<Vec<u64>, String> {
    get_arr(doc, key)?.iter().map(pu64).collect::<Result<_, _>>().map_err(|e| format!("{key}: {e}"))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex page".into());
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
            let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
            Ok((hi * 16 + lo) as u8)
        })
        .collect()
}

fn unit_name(u: ExecUnit) -> &'static str {
    match u {
        ExecUnit::Fxu => "fxu",
        ExecUnit::Lsu => "lsu",
        ExecUnit::Bru => "bru",
    }
}

fn unit_from_name(s: &str) -> Result<ExecUnit, String> {
    match s {
        "fxu" => Ok(ExecUnit::Fxu),
        "lsu" => Ok(ExecUnit::Lsu),
        "bru" => Ok(ExecUnit::Bru),
        other => Err(format!("unknown exec unit {other:?}")),
    }
}

// ----------------------------------------------------------------------
// Component serializers
// ----------------------------------------------------------------------

fn stalls_to_json(s: &StallBreakdown) -> Json {
    Json::obj()
        .set("fxu", ju64(s.fxu))
        .set("load", ju64(s.load))
        .set("branch_mispredict", ju64(s.branch_mispredict))
        .set("taken_branch", ju64(s.taken_branch))
        .set("icache", ju64(s.icache))
        .set("window_full", ju64(s.window_full))
        .set("other", ju64(s.other))
}

fn stalls_from_json(doc: &Json) -> Result<StallBreakdown, String> {
    Ok(StallBreakdown {
        fxu: get_u64(doc, "fxu")?,
        load: get_u64(doc, "load")?,
        branch_mispredict: get_u64(doc, "branch_mispredict")?,
        taken_branch: get_u64(doc, "taken_branch")?,
        icache: get_u64(doc, "icache")?,
        window_full: get_u64(doc, "window_full")?,
        other: get_u64(doc, "other")?,
    })
}

fn cache_stats_to_json(s: &CacheStats) -> Json {
    Json::obj().set("accesses", ju64(s.accesses)).set("misses", ju64(s.misses))
}

fn cache_stats_from_json(doc: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats { accesses: get_u64(doc, "accesses")?, misses: get_u64(doc, "misses")? })
}

fn btac_stats_to_json(s: &BtacStats) -> Json {
    Json::obj()
        .set("lookups", ju64(s.lookups))
        .set("predictions", ju64(s.predictions))
        .set("correct", ju64(s.correct))
        .set("incorrect", ju64(s.incorrect))
}

fn btac_stats_from_json(doc: &Json) -> Result<BtacStats, String> {
    Ok(BtacStats {
        lookups: get_u64(doc, "lookups")?,
        predictions: get_u64(doc, "predictions")?,
        correct: get_u64(doc, "correct")?,
        incorrect: get_u64(doc, "incorrect")?,
    })
}

fn counters_to_json(c: &Counters) -> Json {
    let b = &c.branches;
    Json::obj()
        .set("cycles", ju64(c.cycles))
        .set("instructions", ju64(c.instructions))
        .set("fxu_ops", ju64(c.fxu_ops))
        .set("lsu_ops", ju64(c.lsu_ops))
        .set("loads", ju64(c.loads))
        .set("stores", ju64(c.stores))
        .set("compares", ju64(c.compares))
        .set("predicated_ops", ju64(c.predicated_ops))
        .set(
            "branches",
            Json::obj()
                .set("total", ju64(b.total))
                .set("conditional", ju64(b.conditional))
                .set("taken", ju64(b.taken))
                .set("direction_mispredictions", ju64(b.direction_mispredictions))
                .set("target_mispredictions", ju64(b.target_mispredictions)),
        )
        .set("stalls", stalls_to_json(&c.stalls))
        .set("l1i", cache_stats_to_json(&c.l1i))
        .set("l1d", cache_stats_to_json(&c.l1d))
        .set("l2", cache_stats_to_json(&c.l2))
        .set("btac", btac_stats_to_json(&c.btac))
        .set(
            "intervals",
            Json::Arr(
                c.intervals
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .set("instructions", ju64(s.instructions))
                            .set("cycles", ju64(s.cycles))
                            .set("ipc", Json::Num(s.ipc))
                            .set("mispredict_rate", Json::Num(s.mispredict_rate))
                    })
                    .collect(),
            ),
        )
}

fn counters_from_json(doc: &Json) -> Result<Counters, String> {
    let b = field(doc, "branches")?;
    let mut intervals = Vec::new();
    for s in get_arr(doc, "intervals")? {
        intervals.push(IntervalSample {
            instructions: get_u64(s, "instructions")?,
            cycles: get_u64(s, "cycles")?,
            ipc: get_f64(s, "ipc")?,
            mispredict_rate: get_f64(s, "mispredict_rate")?,
        });
    }
    Ok(Counters {
        cycles: get_u64(doc, "cycles")?,
        instructions: get_u64(doc, "instructions")?,
        fxu_ops: get_u64(doc, "fxu_ops")?,
        lsu_ops: get_u64(doc, "lsu_ops")?,
        loads: get_u64(doc, "loads")?,
        stores: get_u64(doc, "stores")?,
        compares: get_u64(doc, "compares")?,
        predicated_ops: get_u64(doc, "predicated_ops")?,
        branches: BranchCounters {
            total: get_u64(b, "total")?,
            conditional: get_u64(b, "conditional")?,
            taken: get_u64(b, "taken")?,
            direction_mispredictions: get_u64(b, "direction_mispredictions")?,
            target_mispredictions: get_u64(b, "target_mispredictions")?,
        },
        stalls: stalls_from_json(field(doc, "stalls")?)?,
        l1i: cache_stats_from_json(field(doc, "l1i")?)?,
        l1d: cache_stats_from_json(field(doc, "l1d")?)?,
        l2: cache_stats_from_json(field(doc, "l2")?)?,
        btac: btac_stats_from_json(field(doc, "btac")?)?,
        intervals,
    })
}

fn cache_state_to_json(s: &CacheState) -> Json {
    Json::obj()
        .set("tags", u64_list(&s.tags))
        .set("valid", Json::Arr(s.valid.iter().map(|&v| Json::Bool(v)).collect()))
        .set("stamp", u64_list(&s.stamp))
        .set("tick", ju64(s.tick))
        .set("stats", cache_stats_to_json(&s.stats))
}

fn cache_state_from_json(doc: &Json) -> Result<CacheState, String> {
    let valid = get_arr(doc, "valid")?
        .iter()
        .map(|v| match v {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("valid: expected bool, got {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    Ok(CacheState {
        tags: parse_u64_list(doc, "tags")?,
        valid,
        stamp: parse_u64_list(doc, "stamp")?,
        tick: get_u64(doc, "tick")?,
        stats: cache_stats_from_json(field(doc, "stats")?)?,
    })
}

fn core_to_json(core: &CoreState) -> Json {
    let predictor = Json::obj()
        .set(
            "tables",
            Json::Arr(
                core.predictor
                    .tables
                    .iter()
                    .map(|t| Json::Arr(t.iter().map(|&c| Json::Num(f64::from(c))).collect()))
                    .collect(),
            ),
        )
        .set("history", ju64(u64::from(core.predictor.history)));
    let ras = Json::obj()
        .set("stack", Json::Arr(core.ras.stack.iter().map(|&a| ju64(u64::from(a))).collect()))
        .set("top", ju64(core.ras.top as u64))
        .set("depth", ju64(core.ras.depth as u64));
    let btac = match &core.btac {
        None => Json::Null,
        Some(b) => Json::obj()
            .set(
                "entries",
                Json::Arr(
                    b.entries
                        .iter()
                        .map(|&(tag, nia, score, valid)| {
                            Json::Arr(vec![
                                ju64(u64::from(tag)),
                                ju64(u64::from(nia)),
                                Json::Num(f64::from(score)),
                                Json::Bool(valid),
                            ])
                        })
                        .collect(),
                ),
            )
            .set("victim_rr", ju64(b.victim_rr as u64))
            .set("stats", btac_stats_to_json(&b.stats)),
    };
    let scoreboard = Json::Arr(
        core.scoreboard
            .iter()
            .map(|&(ready, unit)| Json::Arr(vec![ju64(ready), Json::Str(unit_name(unit).into())]))
            .collect(),
    );
    let pending_redirect = match core.pending_redirect {
        None => Json::Null,
        Some((cycle, class)) => Json::Arr(vec![ju64(cycle), Json::Str(class.name().into())]),
    };
    let site_list = |sites: &Option<Vec<(u32, BranchSite)>>| match sites {
        None => Json::Null,
        Some(list) => Json::Arr(
            list.iter()
                .map(|(pc, s)| {
                    Json::obj()
                        .set("pc", ju64(u64::from(*pc)))
                        .set("executed", ju64(s.executed))
                        .set("taken", ju64(s.taken))
                        .set("mispredicted", ju64(s.mispredicted))
                })
                .collect(),
        ),
    };
    let stall_site_list = |sites: &Option<Vec<(u32, StallBreakdown)>>| match sites {
        None => Json::Null,
        Some(list) => Json::Arr(
            list.iter()
                .map(|(pc, b)| {
                    Json::obj().set("pc", ju64(u64::from(*pc))).set("stalls", stalls_to_json(b))
                })
                .collect(),
        ),
    };
    Json::obj()
        .set("predictor", predictor)
        .set("ras", ras)
        .set("btac", btac)
        .set("l1i", cache_state_to_json(&core.l1i))
        .set("l1d", cache_state_to_json(&core.l1d))
        .set("l2", cache_state_to_json(&core.l2))
        .set("scoreboard", scoreboard)
        .set("fxu_free", u64_list(&core.fxu_free))
        .set("lsu_free", u64_list(&core.lsu_free))
        .set("bru_free", u64_list(&core.bru_free))
        .set("fetch_cycle", ju64(core.fetch_cycle))
        .set("fetched_this_cycle", ju64(core.fetched_this_cycle as u64))
        .set("pending_redirect", pending_redirect)
        .set("last_fetch_line", ju64(core.last_fetch_line))
        .set("group_dispatch", ju64(core.group_dispatch))
        .set("group_len", ju64(core.group_len as u64))
        .set("group_has_branch", Json::Bool(core.group_has_branch))
        .set("last_commit", ju64(core.last_commit))
        .set("commit_new_group", Json::Bool(core.commit_new_group))
        .set("rob", u64_list(&core.rob))
        .set("counters", counters_to_json(&core.counters))
        .set("branch_sites", site_list(&core.branch_sites))
        .set("stall_sites", stall_site_list(&core.stall_sites))
        .set("dir_mispredicts_seen", ju64(core.dir_mispredicts_seen))
        .set("interval_insns", ju64(core.interval_insns))
        .set(
            "interval_start",
            Json::Arr(vec![
                ju64(core.interval_start.0),
                ju64(core.interval_start.1),
                ju64(core.interval_start.2),
            ]),
        )
}

fn core_from_json(doc: &Json) -> Result<CoreState, String> {
    let p = field(doc, "predictor")?;
    let mut tables = Vec::new();
    for t in get_arr(p, "tables")? {
        let row = t.as_array().ok_or("predictor table: expected array")?;
        let mut counters = Vec::new();
        for c in row {
            let v = pu64(c)?;
            counters.push(u8::try_from(v).map_err(|_| "predictor counter out of range")?);
        }
        tables.push(counters);
    }
    let predictor = PredictorState {
        tables,
        history: u32::try_from(get_u64(p, "history")?).map_err(|_| "history out of range")?,
    };
    let r = field(doc, "ras")?;
    let ras = RasState {
        stack: parse_u64_list(r, "stack")?
            .into_iter()
            .map(|v| u32::try_from(v).map_err(|_| "ras entry out of range".to_string()))
            .collect::<Result<_, _>>()?,
        top: get_usize(r, "top")?,
        depth: get_usize(r, "depth")?,
    };
    let btac = match field(doc, "btac")? {
        Json::Null => None,
        b => {
            let mut entries = Vec::new();
            for e in get_arr(b, "entries")? {
                let parts = e.as_array().ok_or("btac entry: expected array")?;
                if parts.len() != 4 {
                    return Err("btac entry: expected 4 elements".into());
                }
                let tag = u32::try_from(pu64(&parts[0])?).map_err(|_| "btac tag")?;
                let nia = u32::try_from(pu64(&parts[1])?).map_err(|_| "btac nia")?;
                let score = parts[2].as_f64().ok_or("btac score")? as i8;
                let valid = matches!(parts[3], Json::Bool(true));
                entries.push((tag, nia, score, valid));
            }
            Some(BtacState {
                entries,
                victim_rr: get_usize(b, "victim_rr")?,
                stats: btac_stats_from_json(field(b, "stats")?)?,
            })
        }
    };
    let mut scoreboard = Vec::new();
    for s in get_arr(doc, "scoreboard")? {
        let parts = s.as_array().ok_or("scoreboard entry: expected array")?;
        if parts.len() != 2 {
            return Err("scoreboard entry: expected 2 elements".into());
        }
        let ready = pu64(&parts[0])?;
        let unit = unit_from_name(parts[1].as_str().ok_or("scoreboard unit")?)?;
        scoreboard.push((ready, unit));
    }
    let pending_redirect = match field(doc, "pending_redirect")? {
        Json::Null => None,
        Json::Arr(parts) if parts.len() == 2 => {
            let cycle = pu64(&parts[0])?;
            let name = parts[1].as_str().ok_or("redirect class")?;
            let class =
                StallClass::from_name(name).ok_or_else(|| format!("bad stall class {name:?}"))?;
            Some((cycle, class))
        }
        other => return Err(format!("pending_redirect: unexpected {other:?}")),
    };
    let branch_sites = match field(doc, "branch_sites")? {
        Json::Null => None,
        Json::Arr(items) => {
            let mut sites = Vec::new();
            for s in items {
                sites.push((
                    get_u32(s, "pc")?,
                    BranchSite {
                        executed: get_u64(s, "executed")?,
                        taken: get_u64(s, "taken")?,
                        mispredicted: get_u64(s, "mispredicted")?,
                    },
                ));
            }
            Some(sites)
        }
        other => return Err(format!("branch_sites: unexpected {other:?}")),
    };
    let stall_sites = match field(doc, "stall_sites")? {
        Json::Null => None,
        Json::Arr(items) => {
            let mut sites = Vec::new();
            for s in items {
                sites.push((get_u32(s, "pc")?, stalls_from_json(field(s, "stalls")?)?));
            }
            Some(sites)
        }
        other => return Err(format!("stall_sites: unexpected {other:?}")),
    };
    let interval_start = {
        let parts = get_arr(doc, "interval_start")?;
        if parts.len() != 3 {
            return Err("interval_start: expected 3 elements".into());
        }
        (pu64(&parts[0])?, pu64(&parts[1])?, pu64(&parts[2])?)
    };
    Ok(CoreState {
        predictor,
        ras,
        btac,
        l1i: cache_state_from_json(field(doc, "l1i")?)?,
        l1d: cache_state_from_json(field(doc, "l1d")?)?,
        l2: cache_state_from_json(field(doc, "l2")?)?,
        scoreboard,
        fxu_free: parse_u64_list(doc, "fxu_free")?,
        lsu_free: parse_u64_list(doc, "lsu_free")?,
        bru_free: parse_u64_list(doc, "bru_free")?,
        fetch_cycle: get_u64(doc, "fetch_cycle")?,
        fetched_this_cycle: get_usize(doc, "fetched_this_cycle")?,
        pending_redirect,
        last_fetch_line: get_u64(doc, "last_fetch_line")?,
        group_dispatch: get_u64(doc, "group_dispatch")?,
        group_len: get_usize(doc, "group_len")?,
        group_has_branch: get_bool(doc, "group_has_branch")?,
        last_commit: get_u64(doc, "last_commit")?,
        commit_new_group: get_bool(doc, "commit_new_group")?,
        rob: parse_u64_list(doc, "rob")?,
        counters: counters_from_json(field(doc, "counters")?)?,
        branch_sites,
        stall_sites,
        dir_mispredicts_seen: get_u64(doc, "dir_mispredicts_seen")?,
        interval_insns: get_u64(doc, "interval_insns")?,
        interval_start,
    })
}

// ----------------------------------------------------------------------
// Checkpoint document
// ----------------------------------------------------------------------

/// Serialize a checkpoint to the JSON document model.
pub fn to_json(cp: &Checkpoint) -> Json {
    let watchdog = Json::obj()
        .set("max_cycles", cp.watchdog.max_cycles.map_or(Json::Null, ju64))
        .set("max_instructions", cp.watchdog.max_instructions.map_or(Json::Null, ju64));
    let profile = match &cp.profile {
        None => Json::Null,
        Some((regions, charged)) => Json::obj()
            .set(
                "regions",
                Json::Arr(
                    regions
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .set("name", Json::Str(r.name.clone()))
                                .set("start", ju64(u64::from(r.start)))
                                .set("end", ju64(u64::from(r.end)))
                        })
                        .collect(),
                ),
            )
            .set(
                "charged",
                Json::Arr(
                    charged
                        .iter()
                        .map(|&(cycles, insns)| Json::Arr(vec![ju64(cycles), ju64(insns)]))
                        .collect(),
                ),
            ),
    };
    Json::obj()
        .set("schema", Json::Str(CHECKPOINT_SCHEMA.into()))
        .set("config_digest", Json::Str(format!("{:016x}", cp.config_digest)))
        .set("gpr", Json::Arr(cp.gpr.iter().map(|&g| ju64(u64::from(g))).collect()))
        .set("cr", ju64(u64::from(cp.cr)))
        .set("lr", ju64(u64::from(cp.lr)))
        .set("ctr", ju64(u64::from(cp.ctr)))
        .set("pc", ju64(u64::from(cp.pc)))
        .set("mem_size", ju64(cp.mem_size as u64))
        .set(
            "pages",
            Json::Arr(
                cp.pages
                    .iter()
                    .map(|(base, bytes)| {
                        Json::obj()
                            .set("base", ju64(u64::from(*base)))
                            .set("hex", Json::Str(hex_encode(bytes)))
                    })
                    .collect(),
            ),
        )
        .set("code_base", ju64(u64::from(cp.code_base)))
        .set("code_len", ju64(cp.code_len as u64))
        .set("halted", Json::Bool(cp.halted))
        .set("insns_total", ju64(cp.insns_total))
        .set("watchdog", watchdog)
        .set("profile", profile)
        .set("last_commit_seen", ju64(cp.last_commit_seen))
        .set("core", core_to_json(&cp.core))
}

/// Serialize a checkpoint to pretty-printed JSON text.
pub fn render(cp: &Checkpoint) -> String {
    to_json(cp).render()
}

/// Reconstruct a checkpoint from its JSON document.
///
/// # Errors
///
/// Returns a message on a wrong schema marker, missing fields, or values
/// out of range for their targets.
pub fn from_json(doc: &Json) -> Result<Checkpoint, String> {
    check_schema(doc, CHECKPOINT_SCHEMA).map_err(|e| e.to_string())?;
    let digest_hex = field(doc, "config_digest")?.as_str().ok_or("config_digest: expected hex")?;
    let config_digest =
        u64::from_str_radix(digest_hex, 16).map_err(|_| "config_digest: bad hex".to_string())?;
    let gpr_list = get_arr(doc, "gpr")?;
    if gpr_list.len() != 32 {
        return Err(format!("gpr: expected 32 registers, got {}", gpr_list.len()));
    }
    let mut gpr = [0u32; 32];
    for (slot, j) in gpr.iter_mut().zip(gpr_list) {
        *slot = u32::try_from(pu64(j)?).map_err(|_| "gpr out of range")?;
    }
    let mut pages = Vec::new();
    for p in get_arr(doc, "pages")? {
        let base = get_u32(p, "base")?;
        let bytes = hex_decode(field(p, "hex")?.as_str().ok_or("page hex: expected string")?)?;
        pages.push((base, bytes));
    }
    let w = field(doc, "watchdog")?;
    let opt_u64 = |j: &Json| -> Result<Option<u64>, String> {
        match j {
            Json::Null => Ok(None),
            other => pu64(other).map(Some),
        }
    };
    let watchdog = Watchdog {
        max_cycles: opt_u64(field(w, "max_cycles")?)?,
        max_instructions: opt_u64(field(w, "max_instructions")?)?,
    };
    let profile = match field(doc, "profile")? {
        Json::Null => None,
        p => {
            let mut regions = Vec::new();
            for r in get_arr(p, "regions")? {
                regions.push(ProfileRegion {
                    name: field(r, "name")?.as_str().ok_or("region name")?.to_string(),
                    start: get_u32(r, "start")?,
                    end: get_u32(r, "end")?,
                });
            }
            let mut charged = Vec::new();
            for c in get_arr(p, "charged")? {
                let parts = c.as_array().ok_or("charged entry: expected array")?;
                if parts.len() != 2 {
                    return Err("charged entry: expected 2 elements".into());
                }
                charged.push((pu64(&parts[0])?, pu64(&parts[1])?));
            }
            Some((regions, charged))
        }
    };
    Ok(Checkpoint {
        config_digest,
        gpr,
        cr: get_u32(doc, "cr")?,
        lr: get_u32(doc, "lr")?,
        ctr: get_u32(doc, "ctr")?,
        pc: get_u32(doc, "pc")?,
        mem_size: get_usize(doc, "mem_size")?,
        pages,
        code_base: get_u32(doc, "code_base")?,
        code_len: get_usize(doc, "code_len")?,
        halted: get_bool(doc, "halted")?,
        insns_total: get_u64(doc, "insns_total")?,
        watchdog,
        profile,
        last_commit_seen: get_u64(doc, "last_commit_seen")?,
        core: core_from_json(field(doc, "core")?)?,
    })
}

/// Parse a checkpoint from JSON text.
///
/// # Errors
///
/// Returns a message on malformed JSON or any structural problem (see
/// [`from_json`]).
pub fn parse(text: &str) -> Result<Checkpoint, String> {
    from_json(&Json::parse(text)?)
}

// ----------------------------------------------------------------------
// Divergence repro document
// ----------------------------------------------------------------------

/// Schema identifier embedded in every divergence-repro document.
pub const DIVERGENCE_SCHEMA: &str = "bioarch-divergence/v1";

/// A minimal, self-contained lockstep-divergence reproduction: restore
/// [`DivergenceRepro::start`], re-apply the defect under test, and replay
/// [`DivergenceRepro::span`] instructions under `LockstepMode::Full` to
/// hit [`DivergenceRepro::divergence`] again (see
/// `power5_sim::shrink_divergence` and `examples/divergence_triage.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceRepro {
    /// Workload seed the diverging run was built from.
    pub seed: u64,
    /// Core-config digest; a replaying machine must match it (the
    /// embedded checkpoint carries the same digest and `restore`
    /// enforces it).
    pub config_digest: u64,
    /// Machine state just before the minimal window.
    pub start: Checkpoint,
    /// Instructions to replay from `start` under full lockstep.
    pub span: u64,
    /// `insns_total` index of the divergent instruction.
    pub first_divergent: u64,
    /// The recorded mismatch.
    pub divergence: Divergence,
}

fn divergence_record_to_json(d: &Divergence) -> Json {
    Json::obj()
        .set("pc", ju64(u64::from(d.pc)))
        .set("instruction", ju64(d.instruction))
        .set("field", Json::Str(d.field.code()))
        .set("expected", ju64(d.expected))
        .set("actual", ju64(d.actual))
        .set("note", Json::Str(d.note.clone()))
        .set("recent_pcs", Json::Arr(d.recent_pcs.iter().map(|&pc| ju64(u64::from(pc))).collect()))
}

fn divergence_record_from_json(doc: &Json) -> Result<Divergence, String> {
    let code = field(doc, "field")?.as_str().ok_or("field: expected string")?;
    let arch_field =
        ArchField::parse(code).ok_or_else(|| format!("unknown architectural field {code:?}"))?;
    let recent_pcs = get_arr(doc, "recent_pcs")?
        .iter()
        .map(|j| {
            pu64(j).and_then(|v| u32::try_from(v).map_err(|_| "recent pc out of range".into()))
        })
        .collect::<Result<_, _>>()?;
    Ok(Divergence {
        pc: get_u32(doc, "pc")?,
        instruction: get_u64(doc, "instruction")?,
        field: arch_field,
        expected: get_u64(doc, "expected")?,
        actual: get_u64(doc, "actual")?,
        note: field(doc, "note")?.as_str().ok_or("note: expected string")?.to_string(),
        recent_pcs,
    })
}

/// Serialize a divergence repro to the JSON document model.
pub fn divergence_to_json(repro: &DivergenceRepro) -> Json {
    Json::obj()
        .set("schema", Json::Str(DIVERGENCE_SCHEMA.into()))
        .set("seed", ju64(repro.seed))
        .set("config_digest", Json::Str(format!("{:016x}", repro.config_digest)))
        .set("span", ju64(repro.span))
        .set("first_divergent", ju64(repro.first_divergent))
        .set("divergence", divergence_record_to_json(&repro.divergence))
        .set("start", to_json(&repro.start))
}

/// Serialize a divergence repro to pretty-printed JSON text.
pub fn render_divergence(repro: &DivergenceRepro) -> String {
    divergence_to_json(repro).render()
}

/// Reconstruct a divergence repro from its JSON document.
///
/// # Errors
///
/// Returns a message on a wrong schema marker, missing fields, or values
/// out of range (including inside the embedded checkpoint).
pub fn divergence_from_json(doc: &Json) -> Result<DivergenceRepro, String> {
    check_schema(doc, DIVERGENCE_SCHEMA).map_err(|e| e.to_string())?;
    let digest_hex = field(doc, "config_digest")?.as_str().ok_or("config_digest: expected hex")?;
    let config_digest =
        u64::from_str_radix(digest_hex, 16).map_err(|_| "config_digest: bad hex".to_string())?;
    let start = from_json(field(doc, "start")?)?;
    if start.config_digest != config_digest {
        return Err("embedded checkpoint's config digest disagrees with the repro's".into());
    }
    Ok(DivergenceRepro {
        seed: get_u64(doc, "seed")?,
        config_digest,
        start,
        span: get_u64(doc, "span")?,
        first_divergent: get_u64(doc, "first_divergent")?,
        divergence: divergence_record_from_json(field(doc, "divergence")?)?,
    })
}

/// Parse a divergence repro from JSON text.
///
/// # Errors
///
/// Returns a message on malformed JSON or any structural problem (see
/// [`divergence_from_json`]).
pub fn parse_divergence(text: &str) -> Result<DivergenceRepro, String> {
    divergence_from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use power5_sim::config::CoreConfig;
    use power5_sim::machine::Machine;

    fn machine_mid_run() -> Machine {
        let prog = ppc_asm::assemble(
            "
entry:
    li r3, 0
    li r4, 500
    mtctr r4
loop:
    addi r3, r3, 1
    cmpwi cr0, r3, 250
    blt cr0, skip
    addi r5, r5, 2
skip:
    bdnz loop
    trap
",
            0x1000,
        )
        .expect("assembles");
        let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 0x40000);
        m.set_watchdog(power5_sim::Watchdog {
            max_cycles: Some(1_000_000),
            max_instructions: None,
        });
        let r = m.run_timed(700).expect("no trap");
        assert!(!r.halted);
        m
    }

    #[test]
    fn checkpoint_roundtrips_through_json_text() {
        let m = machine_mid_run();
        let cp = m.checkpoint();
        let text = render(&cp);
        assert!(text.contains(CHECKPOINT_SCHEMA));
        let back = parse(&text).expect("parses");
        assert_eq!(back, cp);
        // Deterministic rendering.
        assert_eq!(render(&back), text);
    }

    #[test]
    fn resume_from_parsed_checkpoint_is_bit_exact() {
        // Gold: run to completion in one machine.
        let mut gold = machine_mid_run();
        gold.run_timed(u64::MAX).expect("gold completes");

        // Split: checkpoint mid-run, serialize, restore elsewhere, finish.
        let m = machine_mid_run();
        let text = render(&m.checkpoint());
        let cp = parse(&text).expect("parses");
        let prog = ppc_asm::assemble("entry:\n    trap\n", 0x1000).expect("assembles");
        let mut resumed = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 0x40000);
        resumed.restore(&cp).expect("restores");
        resumed.run_timed(u64::MAX).expect("resumed completes");

        assert!(gold.halted() && resumed.halted());
        assert_eq!(gold.counters(), resumed.counters());
        assert_eq!(gold.cpu().pc, resumed.cpu().pc);
        assert_eq!(gold.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn rejects_wrong_schema_and_truncated_documents() {
        let cp = machine_mid_run().checkpoint();
        let text = render(&cp);
        assert!(parse(&text.replace("/v1", "/v9")).is_err());
        assert!(parse("{}").is_err());
        assert!(parse("not json").is_err());
    }

    #[test]
    fn divergence_repro_roundtrips_and_rejects_wrong_schema() {
        let m = machine_mid_run();
        let start = m.checkpoint();
        let repro = DivergenceRepro {
            seed: 42,
            config_digest: start.config_digest,
            start,
            span: 17,
            first_divergent: 712,
            divergence: Divergence {
                pc: 0x101c,
                instruction: 712,
                field: ArchField::Gpr(4),
                expected: 7,
                actual: 9,
                note: "isel picked the wrong arm".into(),
                recent_pcs: vec![0x1014, 0x1018, 0x101c],
            },
        };
        let text = render_divergence(&repro);
        assert!(text.contains(DIVERGENCE_SCHEMA));
        let back = parse_divergence(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(render_divergence(&back), text);

        assert!(parse_divergence(&text.replace("divergence/v1", "divergence/v9")).is_err());
        // A tampered digest must be caught against the embedded checkpoint.
        let tampered =
            text.replacen(&format!("{:016x}", repro.config_digest), "00000000deadbeef", 1);
        assert!(parse_divergence(&tampered).is_err());
    }

    #[test]
    fn hex_page_codec_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex_decode(&hex).expect("decodes"), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
