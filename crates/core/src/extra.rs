//! Extension workload beyond the paper's four applications: a
//! Phylip-style **Sankoff parsimony** kernel.
//!
//! The paper's conclusion says its results "can be extended to … the
//! phylogeny reconstruction application Phylip". This module tests that
//! claim: Sankoff's small-parsimony DP is a *min-plus* recurrence — the
//! mirror image of the alignment kernels' max chains — and its
//! `if (m > t) m = t;` statements are equally value-dependent. If the
//! paper is right, predication should buy a comparable improvement here
//! without any alignment-specific tuning.

use crate::apps::{gaps, RunError, Scale, Variant};
use crate::kernels::{render, Consts, Flavor};
use bioalign::msa::{pairwise_distances, upgma, GuideTree};
use bioalign::parsimony::{sankoff_site, CostMatrix};
use bioseq::generate::SeqGen;
use bioseq::{Alphabet, Sequence, SubstitutionMatrix};
use power5_sim::{CoreConfig, Counters, Machine};

const SANKOFF_BRANCHY: &str = "
fn sankoff_site(s: int, nnodes: int, kids: ptr, leaf: bptr, w: ptr, dp: ptr, nsites: int) -> int {
    let n = 0;
    while (n < nnodes) {
        let c1 = kids[n * 2];
        if (c1 < 0) {
            let r = leaf[kids[n * 2 + 1] * nsites + s];
            let k = 0;
            while (k < 4) {
                if (k == r) { dp[n * 4 + k] = 0; } else { dp[n * 4 + k] = 1000000; }
                k = k + 1;
            }
        } else {
            let c2 = kids[n * 2 + 1];
            let k = 0;
            while (k < 4) {
                let m1 = dp[c1 * 4] + w[k * 4];
                let t = dp[c1 * 4 + 1] + w[k * 4 + 1];
                if (m1 > t) { m1 = t; }
                t = dp[c1 * 4 + 2] + w[k * 4 + 2];
                if (m1 > t) { m1 = t; }
                t = dp[c1 * 4 + 3] + w[k * 4 + 3];
                if (m1 > t) { m1 = t; }
                let m2 = dp[c2 * 4] + w[k * 4];
                t = dp[c2 * 4 + 1] + w[k * 4 + 1];
                if (m2 > t) { m2 = t; }
                t = dp[c2 * 4 + 2] + w[k * 4 + 2];
                if (m2 > t) { m2 = t; }
                t = dp[c2 * 4 + 3] + w[k * 4 + 3];
                if (m2 > t) { m2 = t; }
                dp[n * 4 + k] = m1 + m2;
                k = k + 1;
            }
        }
        n = n + 1;
    }
    let root = (nnodes - 1) * 4;
    let best = dp[root];
    if (best > dp[root + 1]) { best = dp[root + 1]; }
    if (best > dp[root + 2]) { best = dp[root + 2]; }
    if (best > dp[root + 3]) { best = dp[root + 3]; }
    return best;
}
";

const SANKOFF_HAND: &str = "
fn sankoff_site(s: int, nnodes: int, kids: ptr, leaf: bptr, w: ptr, dp: ptr, nsites: int) -> int {
    let n = 0;
    while (n < nnodes) {
        let c1 = kids[n * 2];
        if (c1 < 0) {
            let r = leaf[kids[n * 2 + 1] * nsites + s];
            let k = 0;
            while (k < 4) {
                if (k == r) { dp[n * 4 + k] = 0; } else { dp[n * 4 + k] = 1000000; }
                k = k + 1;
            }
        } else {
            let c2 = kids[n * 2 + 1];
            let k = 0;
            while (k < 4) {
                let m1 = dp[c1 * 4] + w[k * 4];
                m1 = min(m1, dp[c1 * 4 + 1] + w[k * 4 + 1]);
                m1 = min(m1, dp[c1 * 4 + 2] + w[k * 4 + 2]);
                m1 = min(m1, dp[c1 * 4 + 3] + w[k * 4 + 3]);
                let m2 = dp[c2 * 4] + w[k * 4];
                m2 = min(m2, dp[c2 * 4 + 1] + w[k * 4 + 1]);
                m2 = min(m2, dp[c2 * 4 + 2] + w[k * 4 + 2]);
                m2 = min(m2, dp[c2 * 4 + 3] + w[k * 4 + 3]);
                dp[n * 4 + k] = m1 + m2;
                k = k + 1;
            }
        }
        n = n + 1;
    }
    let root = (nnodes - 1) * 4;
    let best = dp[root];
    best = min(best, dp[root + 1]);
    best = min(best, dp[root + 2]);
    best = min(best, dp[root + 3]);
    return best;
}
";

const SANKOFF_MAIN: &str = "
fn main(pb: ptr) -> int {
    let nnodes = pb[0];
    let nsites = pb[1];
    let kids: ptr = pb[2];
    let leaf: bptr = pb[3];
    let w: ptr = pb[4];
    let dp: ptr = pb[5];
    let out: ptr = pb[6];
    let total = 0;
    let s = 0;
    while (s < nsites) {
        let sc = sankoff_site(s, nnodes, kids, leaf, w, dp, nsites);
        out[s] = sc;
        total = total + sc;
        s = s + 1;
    }
    return total;
}
";

/// Serialized tree: nodes in postorder (children before parents); for a
/// leaf, `kids = [-1, sequence_index]`; for an internal node, the two
/// child node ids.
fn serialize_tree(tree: &GuideTree, kids: &mut Vec<i32>) -> i32 {
    match tree {
        GuideTree::Leaf(i) => {
            kids.push(-1);
            kids.push(*i as i32);
            (kids.len() / 2 - 1) as i32
        }
        GuideTree::Node { left, right, .. } => {
            let l = serialize_tree(left, kids);
            let r = serialize_tree(right, kids);
            kids.push(l);
            kids.push(r);
            (kids.len() / 2 - 1) as i32
        }
    }
}

/// Result of one parsimony run (a reduced [`crate::apps::AppRun`]).
#[derive(Debug, Clone)]
pub struct PhylipRun {
    /// Performance counters.
    pub counters: Counters,
    /// Whether all per-site scores matched the golden model.
    pub validated: bool,
    /// Hammocks converted / rejected by the if-converter.
    pub converted_hammocks: usize,
    /// Rejected hammocks.
    pub rejected_hammocks: usize,
}

/// The Phylip-style extension workload: DNA sequences evolved along a
/// guide tree, scored with Sankoff parsimony.
#[derive(Debug, Clone)]
pub struct PhylipWorkload {
    seqs: Vec<Sequence>,
    tree: GuideTree,
    cost: CostMatrix,
    expected_sites: Vec<i32>,
}

impl PhylipWorkload {
    /// Generate a workload: a DNA family, a UPGMA guide tree over it, and
    /// golden per-site parsimony scores.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (ntaxa, nsites) = match scale {
            Scale::Test => (6, 60),
            Scale::ClassC => (12, 600),
        };
        let mut g = SeqGen::new(Alphabet::Dna, seed);
        let seqs = g.family(ntaxa, nsites, 0.35, 0.0);
        let dist = pairwise_distances(&seqs, &SubstitutionMatrix::dna(5, -4), gaps());
        let tree = upgma(&dist);
        let cost = CostMatrix::ts_tv(1, 2);
        let expected_sites =
            (0..nsites).map(|site| sankoff_site(&tree, &seqs, site, &cost)).collect();
        PhylipWorkload { seqs, tree, cost, expected_sites }
    }

    /// The golden per-site scores.
    pub fn expected_sites(&self) -> &[i32] {
        &self.expected_sites
    }

    /// Compile with `variant`'s options and run on `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on compile, assembly, or simulation failures.
    pub fn run(&self, variant: Variant, config: &CoreConfig) -> Result<PhylipRun, RunError> {
        let kernel = match variant.flavor() {
            Flavor::Branchy => SANKOFF_BRANCHY,
            Flavor::Hand => SANKOFF_HAND,
        };
        let source = render(&format!("{kernel}\n{SANKOFF_MAIN}"), &Consts::default());
        let compiled = kernelc::compile(&source, &variant.options())?;
        let assembled = ppc_asm::assemble(&compiled.asm, 0x1000)?;
        let mut machine = Machine::new(
            config.clone(),
            &assembled.bytes,
            0x1000,
            assembled.symbols["__start"],
            4 << 20,
        );
        // Layout.
        let nsites = self.seqs[0].len();
        let mut kids = Vec::new();
        serialize_tree(&self.tree, &mut kids);
        let nnodes = kids.len() / 2;
        let kids_addr = 0x8_0000u32;
        let leaf_addr = kids_addr + 4 * kids.len() as u32 + 64;
        let leaf_bytes: Vec<u8> =
            self.seqs.iter().flat_map(|s| s.codes().iter().copied()).collect();
        let w_addr = leaf_addr + leaf_bytes.len() as u32 + 64;
        let dp_addr = w_addr + 64 + 64;
        let out_addr = dp_addr + 4 * (nnodes as u32) * 4 + 64;
        let pb_addr = out_addr + 4 * nsites as u32 + 64;
        let mem = machine.mem_mut();
        mem.write_i32s(kids_addr, &kids).expect("fits");
        mem.write_bytes(leaf_addr, &leaf_bytes).expect("fits");
        mem.write_i32s(w_addr, self.cost.as_row_major()).expect("fits");
        mem.write_i32s(
            pb_addr,
            &[
                nnodes as i32,
                nsites as i32,
                kids_addr as i32,
                leaf_addr as i32,
                w_addr as i32,
                dp_addr as i32,
                out_addr as i32,
            ],
        )
        .expect("fits");
        machine.cpu_mut().gpr[1] = (4 << 20) - 128;
        machine.cpu_mut().gpr[3] = pb_addr;
        let result = machine.run_timed(500_000_000)?;
        if !result.halted {
            return Err(RunError::Budget);
        }
        let out = machine.mem().read_i32s(out_addr, nsites).expect("readable");
        Ok(PhylipRun {
            counters: machine.counters(),
            validated: out == self.expected_sites,
            converted_hammocks: compiled.converted_hammocks,
            rejected_hammocks: compiled.rejected_hammocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate_and_min_predication_helps() {
        let wl = PhylipWorkload::new(Scale::Test, 7);
        let base = wl.run(Variant::Baseline, &CoreConfig::power5()).unwrap();
        assert!(base.validated);
        assert!(base.counters.branches.misprediction_rate() > 0.02);
        for v in Variant::all() {
            let run = wl.run(v, &CoreConfig::power5()).unwrap();
            assert!(run.validated, "{v:?} produced wrong parsimony scores");
        }
        let hand = wl.run(Variant::HandMax, &CoreConfig::power5()).unwrap();
        assert!(
            hand.counters.cycles < base.counters.cycles,
            "min-predication should help: {} vs {}",
            hand.counters.cycles,
            base.counters.cycles
        );
        assert!(hand.counters.predicated_ops > 0);
    }

    #[test]
    fn compiler_converts_the_min_patterns() {
        let wl = PhylipWorkload::new(Scale::Test, 9);
        let comp = wl.run(Variant::CompilerMax, &CoreConfig::power5()).unwrap();
        assert!(comp.validated);
        // The six inner min-patterns plus the root mins convert; the
        // leaf-initialization store-hammock is rejected.
        assert!(comp.converted_hammocks >= 6, "converted {}", comp.converted_hammocks);
        assert!(comp.rejected_hammocks >= 1, "rejected {}", comp.rejected_hammocks);
    }

    #[test]
    fn tree_serialization_is_postorder() {
        let wl = PhylipWorkload::new(Scale::Test, 11);
        let mut kids = Vec::new();
        let root = serialize_tree(&wl.tree, &mut kids);
        let nnodes = kids.len() / 2;
        assert_eq!(root as usize, nnodes - 1);
        for n in 0..nnodes {
            let c1 = kids[n * 2];
            if c1 >= 0 {
                assert!((c1 as usize) < n, "child after parent");
                assert!((kids[n * 2 + 1] as usize) < n);
            }
        }
    }
}
