//! Plan7 profile hidden Markov models in HMMER2's integer log-odds form.
//!
//! `hmmpfam` (the Hmmer workload in the paper) aligns a query sequence
//! against a database of profile HMMs with the integer Viterbi kernel
//! `P7Viterbi`. HMMER2 pre-scales all probabilities to integer log-odds
//! scores (`INTSCALE = 1000`), which is why the kernel is pure fixed-point
//! arithmetic — a property the paper's FXU experiments depend on. This
//! module reproduces that representation.
//!
//! A Plan7 model of length `M` has per-node match/insert emission scores and
//! seven per-node transition scores (`M→M`, `M→I`, `M→D`, `I→M`, `I→I`,
//! `D→M`, `D→D`) plus begin→match entry and match→end exit scores.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// HMMER2's integer score scale: scores are `round(log2(p / null) * 1000)`.
pub const INTSCALE: f64 = 1000.0;

/// Score used for impossible transitions/emissions (a large negative value
/// that cannot underflow when a handful of them are added together).
pub const NEG_INF_SCORE: i32 = -100_000;

/// Error parsing a [`ProfileHmm`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHmmError {
    /// 1-based line (0 when the whole document is malformed).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseHmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseHmmError {}

/// Per-node state transitions of a Plan7 model, as indices into
/// [`ProfileHmm::transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Match k → Match k+1
    MM,
    /// Match k → Insert k
    MI,
    /// Match k → Delete k+1
    MD,
    /// Insert k → Match k+1
    IM,
    /// Insert k → Insert k
    II,
    /// Delete k → Match k+1
    DM,
    /// Delete k → Delete k+1
    DD,
}

/// A Plan7 profile HMM with integer log-odds scores.
///
/// # Example
///
/// ```
/// use bioseq::hmm::ProfileHmm;
///
/// let hmm = ProfileHmm::random(40, 0xBEEF);
/// assert_eq!(hmm.len(), 40);
/// // Match emissions are integer log-odds; a consensus residue scores high.
/// let best = (0..20).map(|r| hmm.match_score(1, r)).max().unwrap();
/// assert!(best > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileHmm {
    name: String,
    m: usize,
    /// Match emission scores, row-major `[node][residue]`, nodes 1..=M at
    /// rows 1..=M (row 0 unused, matching HMMER2's 1-based indexing).
    msc: Vec<i32>,
    /// Insert emission scores, same layout.
    isc: Vec<i32>,
    /// Transition scores `[kind][node]`, kinds in [`Transition`] order.
    tsc: [Vec<i32>; 7],
    /// Begin → Match_k entry scores, 1-based.
    bsc: Vec<i32>,
    /// Match_k → End exit scores, 1-based.
    esc: Vec<i32>,
    k: usize,
}

fn ilogodds(p: f64, null: f64) -> i32 {
    if p <= 0.0 {
        NEG_INF_SCORE
    } else {
        ((p / null).log2() * INTSCALE).round() as i32
    }
}

impl ProfileHmm {
    /// Number of match nodes (`M`).
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the model has zero nodes (never true for built models).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Alphabet size used for emissions (20 protein residues plus ambiguity
    /// codes mapped to slightly negative scores).
    pub fn alphabet_size(&self) -> usize {
        self.k
    }

    /// Match emission score at `node` (1-based) for residue code `res`.
    #[inline]
    pub fn match_score(&self, node: usize, res: u8) -> i32 {
        self.msc[node * self.k + res as usize]
    }

    /// Insert emission score at `node` (1-based) for residue code `res`.
    #[inline]
    pub fn insert_score(&self, node: usize, res: u8) -> i32 {
        self.isc[node * self.k + res as usize]
    }

    /// Transition score of `kind` out of `node` (1-based).
    #[inline]
    pub fn transition(&self, kind: Transition, node: usize) -> i32 {
        self.tsc[kind as usize][node]
    }

    /// Begin → Match `node` entry score (1-based).
    #[inline]
    pub fn begin_score(&self, node: usize) -> i32 {
        self.bsc[node]
    }

    /// Match `node` → End exit score (1-based).
    #[inline]
    pub fn end_score(&self, node: usize) -> i32 {
        self.esc[node]
    }

    /// Raw match emission table (row-major `[node][residue]`, row 0 unused)
    /// for serialization into simulated memory.
    pub fn msc_raw(&self) -> &[i32] {
        &self.msc
    }

    /// Raw insert emission table, same layout as [`Self::msc_raw`].
    pub fn isc_raw(&self) -> &[i32] {
        &self.isc
    }

    /// Raw transition table for `kind` (index 0 unused).
    pub fn tsc_raw(&self, kind: Transition) -> &[i32] {
        &self.tsc[kind as usize]
    }

    /// Raw begin scores (index 0 unused).
    pub fn bsc_raw(&self) -> &[i32] {
        &self.bsc
    }

    /// Raw end scores (index 0 unused).
    pub fn esc_raw(&self) -> &[i32] {
        &self.esc
    }

    /// Build a model from per-node match emission probability columns.
    ///
    /// `columns[k][r]` is the probability of residue `r` at node `k+1`; each
    /// column must sum to ≈ 1 over the 20 core residues. Transition
    /// probabilities are the classic Plan7 defaults (match-heavy).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or any column has the wrong arity.
    pub fn from_match_columns(name: impl Into<String>, columns: &[Vec<f64>]) -> Self {
        assert!(!columns.is_empty(), "a profile HMM needs at least one node");
        let k = Alphabet::Protein.size();
        let core = Alphabet::Protein.core_size();
        let m = columns.len();
        let null = 1.0 / core as f64;

        let mut msc = vec![NEG_INF_SCORE; (m + 1) * k];
        let mut isc = vec![NEG_INF_SCORE; (m + 1) * k];
        for (ki, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), core, "emission column must cover 20 residues");
            let node = ki + 1;
            for r in 0..core {
                msc[node * k + r] = ilogodds(col[r], null);
            }
            // Ambiguity codes score like HMMER: X = 0 (null), B/Z slightly
            // negative, * impossible.
            msc[node * k + 20] = -500; // B
            msc[node * k + 21] = -500; // Z
            msc[node * k + 22] = 0; // X
            msc[node * k + 23] = NEG_INF_SCORE; // *
            for r in 0..core {
                // Inserts emit from the background → score 0.
                isc[node * k + r] = 0;
            }
            isc[node * k + 22] = 0;
        }

        // Plan7 default transitions (probabilities → integer log-odds with a
        // null transition model of 1.0, i.e. plain log2 * INTSCALE).
        let t = |p: f64| ilogodds(p, 1.0);
        let mut tsc: [Vec<i32>; 7] = Default::default();
        for v in tsc.iter_mut() {
            *v = vec![NEG_INF_SCORE; m + 1];
        }
        #[allow(clippy::needless_range_loop)]
        for node in 1..=m {
            tsc[Transition::MM as usize][node] = t(0.90);
            tsc[Transition::MI as usize][node] = t(0.05);
            tsc[Transition::MD as usize][node] = t(0.05);
            tsc[Transition::IM as usize][node] = t(0.60);
            tsc[Transition::II as usize][node] = t(0.40);
            tsc[Transition::DM as usize][node] = t(0.70);
            tsc[Transition::DD as usize][node] = t(0.30);
        }
        // Final node cannot transit to node M+1 states other than E.
        tsc[Transition::MI as usize][m] = NEG_INF_SCORE;
        tsc[Transition::MD as usize][m] = NEG_INF_SCORE;
        tsc[Transition::DD as usize][m] = NEG_INF_SCORE;

        // Uniform local entry/exit (hmmls-style): allow entering at node 1
        // cheaply and anywhere else at a penalty; exits symmetric.
        let mut bsc = vec![NEG_INF_SCORE; m + 1];
        let mut esc = vec![NEG_INF_SCORE; m + 1];
        for node in 1..=m {
            bsc[node] = if node == 1 { t(0.5) } else { t(0.5 / m as f64) };
            esc[node] = if node == m { t(0.5) } else { t(0.5 / m as f64) };
        }

        ProfileHmm { name: name.into(), m, msc, isc, tsc, bsc, esc, k }
    }

    /// Build a model from a gap-free family alignment (all sequences the
    /// same length), with +1 pseudocounts — the `hmmbuild` stand-in.
    ///
    /// # Panics
    ///
    /// Panics if the family is empty, members differ in length, or the
    /// alphabet is not protein.
    pub fn from_family(name: impl Into<String>, family: &[Sequence]) -> Self {
        assert!(!family.is_empty(), "family must be non-empty");
        let len = family[0].len();
        assert!(len > 0, "family sequences must be non-empty");
        let core = Alphabet::Protein.core_size();
        for s in family {
            assert_eq!(s.alphabet(), Alphabet::Protein, "profile HMMs are protein models");
            assert_eq!(s.len(), len, "family members must be aligned (equal length)");
        }
        let mut columns = Vec::with_capacity(len);
        for pos in 0..len {
            let mut counts = vec![1.0f64; core]; // +1 pseudocount
            for s in family {
                let c = s.codes()[pos] as usize;
                if c < core {
                    counts[c] += 1.0;
                }
            }
            let total: f64 = counts.iter().sum();
            columns.push(counts.into_iter().map(|c| c / total).collect());
        }
        ProfileHmm::from_match_columns(name, &columns)
    }

    /// A random but well-formed model of length `m`, seeded — each node has
    /// one strongly preferred consensus residue (70 %) with the remainder
    /// spread uniformly, resembling a real Pfam profile's information
    /// content.
    pub fn random(m: usize, seed: u64) -> Self {
        assert!(m > 0, "a profile HMM needs at least one node");
        let core = Alphabet::Protein.core_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let columns: Vec<Vec<f64>> = (0..m)
            .map(|_| {
                let consensus = rng.gen_range(0..core);
                (0..core)
                    .map(|r| {
                        if r == consensus {
                            0.70 + 0.30 / core as f64
                        } else {
                            0.30 / core as f64
                        }
                    })
                    .collect()
            })
            .collect();
        ProfileHmm::from_match_columns(format!("rand{seed:x}_m{m}"), &columns)
    }

    /// Serialize to a plain-text format in the spirit of HMMER2's `.hmm`
    /// files: a header, then one whitespace-separated line per node with
    /// the nine transition/entry/exit scores, then the match and insert
    /// emission tables.
    ///
    /// # Example
    ///
    /// ```
    /// use bioseq::hmm::ProfileHmm;
    ///
    /// let hmm = ProfileHmm::random(12, 3);
    /// let text = hmm.to_text();
    /// let back = ProfileHmm::from_text(&text)?;
    /// assert_eq!(hmm, back);
    /// # Ok::<(), bioseq::hmm::ParseHmmError>(())
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "HMMER2-like profile");
        let _ = writeln!(out, "NAME  {}", self.name);
        let _ = writeln!(out, "LENG  {}", self.m);
        let _ = writeln!(out, "ALPH  {}", self.k);
        out.push_str("TRANS tmm tim tdm tmi tii tmd tdd bsc esc\n");
        for node in 0..=self.m {
            let _ = writeln!(
                out,
                "T {} {} {} {} {} {} {} {} {} {}",
                node,
                self.tsc[0][node],
                self.tsc[1][node],
                self.tsc[2][node],
                self.tsc[3][node],
                self.tsc[4][node],
                self.tsc[5][node],
                self.tsc[6][node],
                self.bsc[node],
                self.esc[node],
            );
        }
        for (label, table) in [("M", &self.msc), ("I", &self.isc)] {
            for node in 0..=self.m {
                let _ = write!(out, "{label} {node}");
                for res in 0..self.k {
                    let _ = write!(out, " {}", table[node * self.k + res]);
                }
                out.push('\n');
            }
        }
        out.push_str("//\n");
        out
    }

    /// Parse a model previously written by [`ProfileHmm::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseHmmError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, ParseHmmError> {
        let err = |line: usize, msg: &str| ParseHmmError { line, message: msg.to_string() };
        let mut name = String::new();
        let mut m = 0usize;
        let mut k = 0usize;
        let mut tsc: Option<[Vec<i32>; 7]> = None;
        let mut bsc = Vec::new();
        let mut esc = Vec::new();
        let mut msc = Vec::new();
        let mut isc = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let mut parts = raw.split_whitespace();
            match parts.next() {
                Some("NAME") => name = parts.next().unwrap_or("").to_string(),
                Some("LENG") => {
                    m = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad LENG"))?;
                }
                Some("ALPH") => {
                    k = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad ALPH"))?;
                    let mut t: [Vec<i32>; 7] = Default::default();
                    for v in t.iter_mut() {
                        *v = vec![NEG_INF_SCORE; m + 1];
                    }
                    tsc = Some(t);
                    bsc = vec![NEG_INF_SCORE; m + 1];
                    esc = vec![NEG_INF_SCORE; m + 1];
                    msc = vec![NEG_INF_SCORE; (m + 1) * k];
                    isc = vec![NEG_INF_SCORE; (m + 1) * k];
                }
                Some("T") => {
                    let t = tsc.as_mut().ok_or_else(|| err(line, "T before ALPH"))?;
                    let node: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n <= m)
                        .ok_or_else(|| err(line, "bad node index"))?;
                    let vals: Vec<i32> = parts
                        .map(|v| v.parse::<i32>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(line, "bad transition score"))?;
                    if vals.len() != 9 {
                        return Err(err(line, "expected 9 transition scores"));
                    }
                    for (i, t_i) in t.iter_mut().enumerate() {
                        t_i[node] = vals[i];
                    }
                    bsc[node] = vals[7];
                    esc[node] = vals[8];
                }
                Some(label @ ("M" | "I")) => {
                    if tsc.is_none() {
                        return Err(err(line, "emissions before ALPH"));
                    }
                    let node: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n <= m)
                        .ok_or_else(|| err(line, "bad node index"))?;
                    let vals: Vec<i32> = parts
                        .map(|v| v.parse::<i32>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(line, "bad emission score"))?;
                    if vals.len() != k {
                        return Err(err(line, "wrong emission arity"));
                    }
                    let table = if label == "M" { &mut msc } else { &mut isc };
                    table[node * k..(node + 1) * k].copy_from_slice(&vals);
                }
                _ => {}
            }
        }
        let tsc = tsc.ok_or_else(|| err(0, "missing ALPH header"))?;
        if m == 0 {
            return Err(err(0, "missing or zero LENG"));
        }
        Ok(ProfileHmm { name, m, msc, isc, tsc, bsc, esc, k })
    }

    /// The consensus sequence: at each node, the residue with the highest
    /// match emission score.
    pub fn consensus(&self) -> Sequence {
        let core = Alphabet::Protein.core_size() as u8;
        let codes = (1..=self.m)
            .map(|node| (0..core).max_by_key(|&r| self.match_score(node, r)).unwrap())
            .collect();
        Sequence::from_codes(format!("{}_consensus", self.name), Alphabet::Protein, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SeqGen;

    #[test]
    fn random_model_shape() {
        let hmm = ProfileHmm::random(25, 1);
        assert_eq!(hmm.len(), 25);
        assert!(!hmm.is_empty());
        assert_eq!(hmm.alphabet_size(), 24);
        assert_eq!(hmm.msc_raw().len(), 26 * 24);
    }

    #[test]
    fn random_model_is_deterministic() {
        assert_eq!(ProfileHmm::random(10, 7), ProfileHmm::random(10, 7));
        assert_ne!(ProfileHmm::random(10, 7), ProfileHmm::random(10, 8));
    }

    #[test]
    fn consensus_scores_positive_everywhere() {
        let hmm = ProfileHmm::random(30, 3);
        let cons = hmm.consensus();
        for (i, &r) in cons.codes().iter().enumerate() {
            assert!(hmm.match_score(i + 1, r) > 0, "node {} consensus not positive", i + 1);
        }
    }

    #[test]
    fn non_consensus_scores_negative() {
        let hmm = ProfileHmm::random(30, 3);
        let cons = hmm.consensus();
        for (i, &r) in cons.codes().iter().enumerate() {
            let other = (r + 1) % 20;
            assert!(hmm.match_score(i + 1, other) < 0);
        }
    }

    #[test]
    fn transitions_are_negative_log_odds() {
        let hmm = ProfileHmm::random(12, 5);
        for node in 1..12 {
            assert!(hmm.transition(Transition::MM, node) < 0);
            assert!(hmm.transition(Transition::MM, node) > hmm.transition(Transition::MI, node));
        }
        // Last node has no MI/MD continuation.
        assert_eq!(hmm.transition(Transition::MI, 12), NEG_INF_SCORE);
    }

    #[test]
    fn begin_end_scores_favor_full_length() {
        let hmm = ProfileHmm::random(20, 9);
        assert!(hmm.begin_score(1) > hmm.begin_score(5));
        assert!(hmm.end_score(20) > hmm.end_score(5));
    }

    #[test]
    fn from_family_prefers_family_consensus() {
        let mut g = SeqGen::new(Alphabet::Protein, 42);
        let fam = g.family(8, 50, 0.1, 0.0);
        let hmm = ProfileHmm::from_family("fam", &fam);
        assert_eq!(hmm.len(), 50);
        // The ancestor's residues should score well in most columns.
        let anc = &fam[0];
        let positive =
            anc.codes().iter().enumerate().filter(|&(i, &r)| hmm.match_score(i + 1, r) > 0).count();
        assert!(positive > 40, "only {positive}/50 ancestor residues score positive");
    }

    #[test]
    fn insert_scores_are_null() {
        let hmm = ProfileHmm::random(5, 11);
        for node in 1..=5 {
            for r in 0..20u8 {
                assert_eq!(hmm.insert_score(node, r), 0);
            }
        }
    }

    #[test]
    fn stop_residue_is_impossible_in_match() {
        let hmm = ProfileHmm::random(5, 11);
        assert_eq!(hmm.match_score(3, 23), NEG_INF_SCORE);
    }

    #[test]
    fn text_round_trip_preserves_model() {
        let hmm = ProfileHmm::from_family("fam", &{
            let mut g = SeqGen::new(Alphabet::Protein, 77);
            g.family(5, 20, 0.2, 0.0)
        });
        let text = hmm.to_text();
        let back = ProfileHmm::from_text(&text).unwrap();
        assert_eq!(hmm, back);
        assert!(text.starts_with("HMMER2-like"));
        assert!(text.trim_end().ends_with("//"));
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(ProfileHmm::from_text("").is_err());
        assert!(ProfileHmm::from_text("NAME x\nLENG 3\n").is_err()); // no ALPH
        let e =
            ProfileHmm::from_text("NAME x\nLENG 2\nALPH 24\nT 9 0 0 0 0 0 0 0 0 0\n").unwrap_err();
        assert!(e.message.contains("node index"), "{e}");
        let e = ProfileHmm::from_text("NAME x\nLENG 2\nALPH 24\nT 1 1 2 3\n").unwrap_err();
        assert!(e.message.contains("9 transition"), "{e}");
    }

    #[test]
    fn parsed_model_scores_like_the_original() {
        let hmm = ProfileHmm::random(15, 5);
        let back = ProfileHmm::from_text(&hmm.to_text()).unwrap();
        let cons = hmm.consensus();
        for (i, &r) in cons.codes().iter().enumerate() {
            assert_eq!(hmm.match_score(i + 1, r), back.match_score(i + 1, r));
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_family_rejects_ragged() {
        let a = Sequence::from_text("a", Alphabet::Protein, "MKV").unwrap();
        let b = Sequence::from_text("b", Alphabet::Protein, "MK").unwrap();
        let _ = ProfileHmm::from_family("bad", &[a, b]);
    }
}
