//! Residue alphabets and compact residue coding.
//!
//! Sequences are stored as small integer codes (`u8`) rather than ASCII so
//! that substitution-matrix lookup in the dynamic-programming kernels is a
//! direct array index — exactly how BLAST, FASTA, and HMMER lay out their
//! inner loops.

use std::fmt;

/// The 24-letter protein residue ordering used by the NCBI BLOSUM matrices:
/// the 20 standard amino acids followed by the ambiguity codes `B`, `Z`,
/// `X`, and the stop/gap sentinel `*`.
pub const PROTEIN_LETTERS: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// DNA nucleotide ordering: `A`, `C`, `G`, `T`, plus the ambiguity code `N`.
pub const DNA_LETTERS: &[u8; 5] = b"ACGTN";

/// A residue alphabet: either nucleotides or amino acids.
///
/// The alphabet determines how ASCII letters map to compact residue codes
/// and how large substitution matrices must be.
///
/// # Example
///
/// ```
/// use bioseq::Alphabet;
///
/// assert_eq!(Alphabet::Protein.encode(b'W'), Some(17));
/// assert_eq!(Alphabet::Protein.decode(17), b'W');
/// assert_eq!(Alphabet::Dna.size(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Alphabet {
    /// Nucleotide alphabet (`ACGT` + `N`).
    Dna,
    /// Amino-acid alphabet in BLOSUM ordering (20 + `B`/`Z`/`X`/`*`).
    Protein,
}

impl Alphabet {
    /// Number of distinct residue codes, including ambiguity codes.
    pub fn size(self) -> usize {
        match self {
            Alphabet::Dna => DNA_LETTERS.len(),
            Alphabet::Protein => PROTEIN_LETTERS.len(),
        }
    }

    /// Number of *unambiguous* residues (4 for DNA, 20 for protein).
    /// Random generation draws only from these.
    pub fn core_size(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// The ASCII letters of this alphabet in code order.
    pub fn letters(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_LETTERS,
            Alphabet::Protein => PROTEIN_LETTERS,
        }
    }

    /// Map an ASCII letter (case-insensitive) to its residue code.
    ///
    /// Returns `None` for characters outside the alphabet.
    pub fn encode(self, letter: u8) -> Option<u8> {
        let upper = letter.to_ascii_uppercase();
        self.letters().iter().position(|&l| l == upper).map(|i| i as u8)
    }

    /// Map a residue code back to its ASCII letter.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range for this alphabet.
    pub fn decode(self, code: u8) -> u8 {
        self.letters()[code as usize]
    }

    /// Whether `code` is a valid residue code for this alphabet.
    pub fn is_valid_code(self, code: u8) -> bool {
        (code as usize) < self.size()
    }

    /// The code used for "unknown residue" (`N` for DNA, `X` for protein).
    pub fn unknown_code(self) -> u8 {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 22,
        }
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alphabet::Dna => write!(f, "DNA"),
            Alphabet::Protein => write!(f, "protein"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_round_trip_all_letters() {
        for (i, &l) in PROTEIN_LETTERS.iter().enumerate() {
            assert_eq!(Alphabet::Protein.encode(l), Some(i as u8));
            assert_eq!(Alphabet::Protein.decode(i as u8), l);
        }
    }

    #[test]
    fn dna_round_trip_all_letters() {
        for (i, &l) in DNA_LETTERS.iter().enumerate() {
            assert_eq!(Alphabet::Dna.encode(l), Some(i as u8));
            assert_eq!(Alphabet::Dna.decode(i as u8), l);
        }
    }

    #[test]
    fn encode_is_case_insensitive() {
        assert_eq!(Alphabet::Protein.encode(b'w'), Alphabet::Protein.encode(b'W'));
        assert_eq!(Alphabet::Dna.encode(b'a'), Some(0));
    }

    #[test]
    fn encode_rejects_foreign_characters() {
        assert_eq!(Alphabet::Dna.encode(b'E'), None);
        assert_eq!(Alphabet::Protein.encode(b'J'), None);
        assert_eq!(Alphabet::Protein.encode(b'1'), None);
        assert_eq!(Alphabet::Protein.encode(b' '), None);
    }

    #[test]
    fn sizes_are_consistent() {
        assert_eq!(Alphabet::Dna.size(), 5);
        assert_eq!(Alphabet::Dna.core_size(), 4);
        assert_eq!(Alphabet::Protein.size(), 24);
        assert_eq!(Alphabet::Protein.core_size(), 20);
    }

    #[test]
    fn unknown_codes_decode_to_ambiguity_letters() {
        assert_eq!(Alphabet::Dna.decode(Alphabet::Dna.unknown_code()), b'N');
        assert_eq!(Alphabet::Protein.decode(Alphabet::Protein.unknown_code()), b'X');
    }

    #[test]
    fn validity_matches_size() {
        assert!(Alphabet::Dna.is_valid_code(4));
        assert!(!Alphabet::Dna.is_valid_code(5));
        assert!(Alphabet::Protein.is_valid_code(23));
        assert!(!Alphabet::Protein.is_valid_code(24));
    }

    #[test]
    fn display_names() {
        assert_eq!(Alphabet::Dna.to_string(), "DNA");
        assert_eq!(Alphabet::Protein.to_string(), "protein");
    }
}
