//! Deterministic synthetic workload generation.
//!
//! The paper runs the BioPerf class-C inputs: large protein databases and
//! query sets derived from real genomic data. Those inputs are not
//! redistributable here, so this module generates *statistically equivalent*
//! stand-ins: uniform random sequences, mutated homolog families with
//! controlled residue identity, and databases with planted homologs. All
//! generation is seeded, so every experiment in the reproduction is
//! bit-reproducible.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded sequence generator.
///
/// # Example
///
/// ```
/// use bioseq::{Alphabet, generate::SeqGen};
///
/// let mut g = SeqGen::new(Alphabet::Protein, 7);
/// let a = g.uniform(50);
/// let mut g2 = SeqGen::new(Alphabet::Protein, 7);
/// assert_eq!(a, g2.uniform(50)); // same seed, same sequence
/// ```
#[derive(Debug)]
pub struct SeqGen {
    alphabet: Alphabet,
    rng: StdRng,
    counter: u64,
}

impl SeqGen {
    /// Create a generator for `alphabet` seeded with `seed`.
    pub fn new(alphabet: Alphabet, seed: u64) -> Self {
        SeqGen { alphabet, rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    /// The generator's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    fn next_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{:05}", self.counter)
    }

    /// A uniformly random sequence of `len` core residues.
    pub fn uniform(&mut self, len: usize) -> Sequence {
        let core = self.alphabet.core_size() as u8;
        let codes = (0..len).map(|_| self.rng.gen_range(0..core)).collect();
        let name = self.next_name("syn");
        Sequence::from_codes(name, self.alphabet, codes)
    }

    /// A point-mutated copy of `template`: each residue is replaced by a
    /// different random residue with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `0.0..=1.0`.
    pub fn mutate(&mut self, template: &Sequence, rate: f64) -> Sequence {
        assert!((0.0..=1.0).contains(&rate), "mutation rate must be in [0,1]");
        let core = self.alphabet.core_size() as u8;
        let codes = template
            .codes()
            .iter()
            .map(|&c| {
                if self.rng.gen_bool(rate) {
                    // Draw a replacement different from the original so the
                    // requested rate is the realized substitution rate.
                    let mut r = self.rng.gen_range(0..core.saturating_sub(1));
                    if r >= c {
                        r += 1;
                    }
                    r.min(core - 1)
                } else {
                    c
                }
            })
            .collect();
        let name = self.next_name("mut");
        Sequence::from_codes(name, self.alphabet, codes)
    }

    /// A copy of `template` with insertions and deletions: at each position
    /// a deletion occurs with probability `indel_rate / 2` and an insertion
    /// of 1–3 random residues with probability `indel_rate / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `indel_rate` is not within `0.0..=1.0`.
    pub fn indel(&mut self, template: &Sequence, indel_rate: f64) -> Sequence {
        assert!((0.0..=1.0).contains(&indel_rate), "indel rate must be in [0,1]");
        let core = self.alphabet.core_size() as u8;
        let mut codes = Vec::with_capacity(template.len());
        for &c in template.codes() {
            let roll: f64 = self.rng.gen();
            if roll < indel_rate / 2.0 {
                // deletion: skip this residue
                continue;
            }
            codes.push(c);
            if roll > 1.0 - indel_rate / 2.0 {
                let ins_len = self.rng.gen_range(1..=3);
                for _ in 0..ins_len {
                    codes.push(self.rng.gen_range(0..core));
                }
            }
        }
        let name = self.next_name("ind");
        Sequence::from_codes(name, self.alphabet, codes)
    }

    /// A homolog of `template` with both substitutions and indels — the
    /// general "evolved relative" used to plant database hits.
    pub fn homolog(&mut self, template: &Sequence, sub_rate: f64, indel_rate: f64) -> Sequence {
        let mutated = self.mutate(template, sub_rate);
        self.indel(&mutated, indel_rate)
    }

    /// A family of `n` homologs of a fresh random ancestor of length `len`,
    /// each at substitution rate `sub_rate` and indel rate `indel_rate` from
    /// the ancestor. The ancestor itself is the first element.
    ///
    /// Families are the Clustalw input model and the training input for
    /// profile HMMs.
    pub fn family(
        &mut self,
        n: usize,
        len: usize,
        sub_rate: f64,
        indel_rate: f64,
    ) -> Vec<Sequence> {
        assert!(n >= 1, "a family has at least one member");
        let ancestor = self.uniform(len);
        let mut fam = Vec::with_capacity(n);
        for _ in 1..n {
            fam.push(self.homolog(&ancestor, sub_rate, indel_rate));
        }
        let mut out = vec![ancestor];
        out.append(&mut fam);
        out
    }

    /// A database of `n_random` random sequences with `homologs_of_query`
    /// planted homologs of `query` (20% substitution, 5% indels), shuffled
    /// deterministically. Sequence lengths are uniform in `len_range`.
    ///
    /// This is the Blast/Fasta/Hmmer database model.
    ///
    /// # Panics
    ///
    /// Panics if `len_range` is empty.
    pub fn database(
        &mut self,
        query: &Sequence,
        n_random: usize,
        homologs_of_query: usize,
        len_range: std::ops::Range<usize>,
    ) -> Vec<Sequence> {
        assert!(!len_range.is_empty(), "length range must be non-empty");
        let mut db = Vec::with_capacity(n_random + homologs_of_query);
        for _ in 0..n_random {
            let len = self.rng.gen_range(len_range.clone());
            db.push(self.uniform(len));
        }
        for _ in 0..homologs_of_query {
            db.push(self.homolog(query, 0.20, 0.05));
        }
        // Deterministic Fisher-Yates shuffle using our own RNG.
        for i in (1..db.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            db.swap(i, j);
        }
        db
    }
}

/// Fractional residue identity between two equal-length sequences.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn identity(a: &Sequence, b: &Sequence) -> f64 {
    assert_eq!(a.len(), b.len(), "identity needs equal lengths");
    if a.is_empty() {
        return 1.0;
    }
    let same = a.codes().iter().zip(b.codes()).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_reproducible_and_in_core_alphabet() {
        let mut g1 = SeqGen::new(Alphabet::Protein, 1);
        let mut g2 = SeqGen::new(Alphabet::Protein, 1);
        let a = g1.uniform(200);
        let b = g2.uniform(200);
        assert_eq!(a.codes(), b.codes());
        assert!(a.codes().iter().all(|&c| c < 20));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SeqGen::new(Alphabet::Dna, 1).uniform(100);
        let b = SeqGen::new(Alphabet::Dna, 2).uniform(100);
        assert_ne!(a.codes(), b.codes());
    }

    #[test]
    fn mutate_rate_zero_is_identity() {
        let mut g = SeqGen::new(Alphabet::Protein, 3);
        let t = g.uniform(150);
        let m = g.mutate(&t, 0.0);
        assert_eq!(t.codes(), m.codes());
    }

    #[test]
    fn mutate_rate_one_changes_everything() {
        let mut g = SeqGen::new(Alphabet::Protein, 3);
        let t = g.uniform(150);
        let m = g.mutate(&t, 1.0);
        assert!(t.codes().iter().zip(m.codes()).all(|(a, b)| a != b));
    }

    #[test]
    fn mutate_hits_approximately_requested_rate() {
        let mut g = SeqGen::new(Alphabet::Protein, 5);
        let t = g.uniform(5000);
        let m = g.mutate(&t, 0.3);
        let id = identity(&t, &m);
        assert!((id - 0.7).abs() < 0.03, "identity {id} far from 0.7");
    }

    #[test]
    fn indel_changes_length_but_rate_zero_does_not() {
        let mut g = SeqGen::new(Alphabet::Protein, 9);
        let t = g.uniform(400);
        assert_eq!(g.indel(&t, 0.0).len(), 400);
        let changed = g.indel(&t, 0.3);
        assert_ne!(changed.len(), 400);
    }

    #[test]
    fn family_has_requested_size_and_similar_members() {
        let mut g = SeqGen::new(Alphabet::Protein, 11);
        let fam = g.family(6, 300, 0.15, 0.0);
        assert_eq!(fam.len(), 6);
        for m in &fam[1..] {
            let id = identity(&fam[0], m);
            assert!(id > 0.7, "family member identity {id} too low");
        }
    }

    #[test]
    fn database_contains_requested_counts() {
        let mut g = SeqGen::new(Alphabet::Protein, 13);
        let q = g.uniform(120);
        let db = g.database(&q, 30, 5, 80..160);
        assert_eq!(db.len(), 35);
        assert!(db.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn database_is_deterministic() {
        let mk = || {
            let mut g = SeqGen::new(Alphabet::Protein, 21);
            let q = g.uniform(60);
            g.database(&q, 10, 2, 40..80)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn identity_bounds() {
        let mut g = SeqGen::new(Alphabet::Dna, 17);
        let t = g.uniform(50);
        assert_eq!(identity(&t, &t), 1.0);
        let e1 = Sequence::from_codes("e1", Alphabet::Dna, vec![]);
        let e2 = Sequence::from_codes("e2", Alphabet::Dna, vec![]);
        assert_eq!(identity(&e1, &e2), 1.0);
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn mutate_rejects_bad_rate() {
        let mut g = SeqGen::new(Alphabet::Dna, 1);
        let t = g.uniform(10);
        let _ = g.mutate(&t, 1.5);
    }
}
