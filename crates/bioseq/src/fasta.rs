//! FASTA format reading and writing.
//!
//! BioPerf inputs ship as FASTA files; the reproduction keeps the format so
//! examples can exchange data with real tools.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error while parsing FASTA text.
#[derive(Debug)]
pub enum ParseFastaError {
    /// Residue text before any `>` header line.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A residue character outside the alphabet.
    InvalidResidue {
        /// 1-based line number.
        line: usize,
        /// The offending character.
        byte: u8,
        /// Alphabet being parsed against.
        alphabet: Alphabet,
    },
    /// A byte outside the ASCII range (FASTA is an ASCII format; this
    /// also covers invalid UTF-8, which would otherwise surface as an
    /// opaque I/O error with no line number).
    NotAscii {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A header with no residue lines before the next header or EOF
    /// (a truncated or empty record).
    EmptyRecord {
        /// The record's name (may be empty).
        name: String,
        /// 1-based line number of the record's header.
        line: usize,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ParseFastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastaError::MissingHeader { line } => {
                write!(f, "line {line}: residue data before first '>' header")
            }
            ParseFastaError::InvalidResidue { line, byte, alphabet } => {
                write!(f, "line {line}: invalid {alphabet} residue {:?}", *byte as char)
            }
            ParseFastaError::NotAscii { line, byte } => {
                write!(f, "line {line}: non-ASCII byte {byte:#04x} in FASTA input")
            }
            ParseFastaError::EmptyRecord { name, line } => {
                write!(f, "line {line}: record {name:?} has no residues (truncated input?)")
            }
            ParseFastaError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseFastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseFastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseFastaError {
    fn from(e: io::Error) -> Self {
        ParseFastaError::Io(e)
    }
}

/// Parse all records from FASTA text held in a string.
///
/// Header lines start with `>`; the first whitespace-delimited token is the
/// sequence name. Blank lines are ignored. Residues are case-insensitive.
///
/// # Errors
///
/// Returns [`ParseFastaError`] on malformed input.
///
/// # Example
///
/// ```
/// use bioseq::{fasta, Alphabet};
///
/// let records = fasta::parse_str(">a desc\nMKV\nWL\n>b\nACDE\n", Alphabet::Protein)?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].name(), "a");
/// assert_eq!(records[0].to_text(), "MKVWL");
/// # Ok::<(), bioseq::fasta::ParseFastaError>(())
/// ```
pub fn parse_str(text: &str, alphabet: Alphabet) -> Result<Vec<Sequence>, ParseFastaError> {
    read(text.as_bytes(), alphabet)
}

/// Parse all records from a buffered reader.
///
/// A mutable reference to a reader also works here (`&mut r`), so a reader
/// can be reused after this call.
///
/// # Errors
///
/// Returns [`ParseFastaError`] on malformed input or I/O failure.
pub fn read<R: BufRead>(
    mut reader: R,
    alphabet: Alphabet,
) -> Result<Vec<Sequence>, ParseFastaError> {
    let mut records = Vec::new();
    // (name, 1-based header line) of the record being accumulated.
    let mut open: Option<(String, usize)> = None;
    let mut codes: Vec<u8> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;

    let mut flush =
        |open: &mut Option<(String, usize)>, codes: &mut Vec<u8>| -> Result<(), ParseFastaError> {
            if let Some((name, header_line)) = open.take() {
                if codes.is_empty() {
                    return Err(ParseFastaError::EmptyRecord { name, line: header_line });
                }
                records.push(Sequence::from_codes(name, alphabet, std::mem::take(codes)));
            }
            Ok(())
        };

    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        lineno += 1;
        // Strip the terminator (and a CR before it, for CRLF files), then
        // ASCII-trim the rest; FASTA is byte-oriented, so we never go
        // through String and invalid UTF-8 cannot abort the parse.
        while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            buf.pop();
        }
        let trimmed = buf.as_slice().trim_ascii();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(&byte) = trimmed.iter().find(|b| !b.is_ascii()) {
            return Err(ParseFastaError::NotAscii { line: lineno, byte });
        }
        if let Some(header) = trimmed.strip_prefix(b">") {
            flush(&mut open, &mut codes)?;
            let token = header
                .split(|b: &u8| b.is_ascii_whitespace())
                .find(|t| !t.is_empty())
                .unwrap_or(b"");
            let token = String::from_utf8(token.to_vec()).expect("header token is ASCII");
            open = Some((token, lineno));
        } else {
            if open.is_none() {
                return Err(ParseFastaError::MissingHeader { line: lineno });
            }
            for &byte in trimmed {
                match alphabet.encode(byte) {
                    Some(code) => codes.push(code),
                    None => {
                        return Err(ParseFastaError::InvalidResidue {
                            line: lineno,
                            byte,
                            alphabet,
                        })
                    }
                }
            }
        }
    }
    flush(&mut open, &mut codes)?;
    Ok(records)
}

/// Write records as FASTA with 60-column residue lines.
///
/// A mutable reference to a writer also works here (`&mut w`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(mut writer: W, records: &[Sequence]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, ">{}", rec.name())?;
        let text = rec.to_text();
        for chunk in text.as_bytes().chunks(60) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Render records to a FASTA string.
pub fn to_string(records: &[Sequence]) -> String {
    let mut buf = Vec::new();
    write(&mut buf, records).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_two_records() {
        let recs = parse_str(">a\nMKV\n>b x y\nWL\n", Alphabet::Protein).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name(), "a");
        assert_eq!(recs[1].name(), "b");
        assert_eq!(recs[1].to_text(), "WL");
    }

    #[test]
    fn parse_joins_wrapped_lines_and_skips_blanks() {
        let recs = parse_str(">a\nMK\n\nVW\n", Alphabet::Protein).unwrap();
        assert_eq!(recs[0].to_text(), "MKVW");
    }

    #[test]
    fn parse_rejects_leading_residues() {
        let err = parse_str("MKV\n>a\nWL\n", Alphabet::Protein).unwrap_err();
        assert!(matches!(err, ParseFastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn parse_rejects_bad_residue_with_line_number() {
        let err = parse_str(">a\nMKV\nZ1\n", Alphabet::Protein).unwrap_err();
        match err {
            ParseFastaError::InvalidResidue { line, byte, .. } => {
                assert_eq!(line, 3);
                assert_eq!(byte, b'1');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse_str("", Alphabet::Dna).unwrap().is_empty());
    }

    #[test]
    fn header_with_no_name_is_allowed() {
        let recs = parse_str(">\nACGT\n", Alphabet::Dna).unwrap();
        assert_eq!(recs[0].name(), "");
        assert_eq!(recs[0].len(), 4);
    }

    #[test]
    fn write_wraps_at_60_columns() {
        let long = "A".repeat(125);
        let rec = Sequence::from_text("long", Alphabet::Protein, &long).unwrap();
        let out = to_string(&[rec]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], ">long");
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[2].len(), 60);
        assert_eq!(lines[3].len(), 5);
    }

    #[test]
    fn round_trip_preserves_records() {
        let input = vec![
            Sequence::from_text("x", Alphabet::Dna, "ACGTACGT").unwrap(),
            Sequence::from_text("y", Alphabet::Dna, "TTTT").unwrap(),
        ];
        let text = to_string(&input);
        let output = parse_str(&text, Alphabet::Dna).unwrap();
        assert_eq!(input, output);
    }

    #[test]
    fn truncated_record_at_eof_is_an_error() {
        let err = parse_str(">a\nMKV\n>b\n", Alphabet::Protein).unwrap_err();
        match err {
            ParseFastaError::EmptyRecord { name, line } => {
                assert_eq!(name, "b");
                assert_eq!(line, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_record_mid_file_is_an_error() {
        let err = parse_str(">a\n\n>b\nACGT\n", Alphabet::Dna).unwrap_err();
        match err {
            ParseFastaError::EmptyRecord { name, line } => {
                assert_eq!(name, "a");
                assert_eq!(line, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ascii_residue_byte_is_reported_with_line() {
        let err = parse_str(">a\nAC\u{e9}GT\n", Alphabet::Dna).unwrap_err();
        match err {
            ParseFastaError::NotAscii { line, byte } => {
                assert_eq!(line, 2);
                assert!(byte >= 0x80);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_bytes_get_a_typed_error_not_an_io_error() {
        // 0xFF is never valid UTF-8; `lines()`-based parsing used to
        // surface this as an opaque io::Error with no line number.
        let bytes: &[u8] = b">a\nAC\xffGT\n";
        let err = read(bytes, Alphabet::Dna).unwrap_err();
        match err {
            ParseFastaError::NotAscii { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, 0xFF);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let recs = parse_str(">a desc\r\nMKV\r\nWL\r\n>b\r\nACDE\r\n", Alphabet::Protein).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name(), "a");
        assert_eq!(recs[0].to_text(), "MKVWL");
        assert_eq!(recs[1].to_text(), "ACDE");
    }

    #[test]
    fn read_accepts_mut_reference() {
        let mut cursor = std::io::Cursor::new(b">a\nACGT\n".to_vec());
        let recs = read(&mut cursor, Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 1);
    }
}
