//! Biological sequence substrate for the POWER5 BioPerf reproduction.
//!
//! This crate provides everything the workload side of the study needs:
//!
//! * [`Alphabet`]s (DNA and protein) with compact residue codes,
//! * [`Sequence`] containers and FASTA I/O ([`fasta`]),
//! * deterministic, seeded synthetic workload generation ([`generate`]):
//!   random sequences, mutation models, sequence families, and databases
//!   with planted homologs — the stand-in for the BioPerf class-C inputs,
//! * substitution matrices ([`matrix`], including the real BLOSUM62) and
//!   affine gap penalties,
//! * Plan7 profile hidden Markov models ([`hmm`]) in the integer log-odds
//!   form used by HMMER2's `P7Viterbi`.
//!
//! The paper's workloads operate on protein sequence data; the branch
//! behaviour its dynamic-programming kernels exhibit depends only on the
//! *distribution of substitution scores*, which the synthetic generators
//! here reproduce (controlled-identity families scored under BLOSUM62).
//!
//! # Example
//!
//! ```
//! use bioseq::{Alphabet, generate::SeqGen, matrix::SubstitutionMatrix};
//!
//! let mut gen = SeqGen::new(Alphabet::Protein, 42);
//! let query = gen.uniform(120);
//! let homolog = gen.mutate(&query, 0.25);
//! let blosum = SubstitutionMatrix::blosum62();
//! assert!(blosum.score_seq(&query, &query) > blosum.score_seq(&query, &homolog));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod fasta;
pub mod generate;
pub mod hmm;
pub mod matrix;
pub mod seq;

pub use alphabet::Alphabet;
pub use matrix::{GapPenalties, SubstitutionMatrix};
pub use seq::Sequence;
