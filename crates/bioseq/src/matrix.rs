//! Substitution matrices and gap penalties.
//!
//! The dynamic-programming kernels the paper studies spend their cycles in
//! `max()` chains over values drawn from these matrices; the *distribution*
//! of scores (mostly small negatives with occasional positives) is what
//! makes the resulting conditional branches value-dependent and therefore
//! hard to predict. We ship the real NCBI BLOSUM62 so the reproduction sees
//! the same score statistics as the original workloads.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;
use std::fmt;

/// NCBI BLOSUM62, 24×24, row/column order `ARNDCQEGHILKMFPSTWYVBZX*`.
#[rustfmt::skip]
const BLOSUM62: [[i8; 24]; 24] = [
    [ 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0,-2,-1, 0,-4],
    [-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3,-1, 0,-1,-4],
    [-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3, 3, 0,-1,-4],
    [-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3, 4, 1,-1,-4],
    [ 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1,-3,-3,-2,-4],
    [-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2, 0, 3,-1,-4],
    [-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4],
    [ 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3,-1,-2,-1,-4],
    [-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3, 0, 0,-1,-4],
    [-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3,-3,-3,-1,-4],
    [-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1,-4,-3,-1,-4],
    [-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2, 0, 1,-1,-4],
    [-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1,-3,-1,-1,-4],
    [-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1,-3,-3,-1,-4],
    [-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2,-2,-1,-2,-4],
    [ 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2, 0, 0, 0,-4],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0,-1,-1, 0,-4],
    [-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3,-4,-3,-2,-4],
    [-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1,-3,-2,-1,-4],
    [ 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4,-3,-2,-1,-4],
    [-2,-1, 3, 4,-3, 0, 1,-1, 0,-3,-4, 0,-3,-3,-2, 0,-1,-4,-3,-3, 4, 1,-1,-4],
    [-1, 0, 0, 1,-3, 3, 4,-2, 0,-3,-3, 1,-1,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4],
    [ 0,-1,-1,-1,-2,-1,-1,-1,-1,-1,-1,-1,-1,-1,-2, 0, 0,-2,-1,-1,-1,-1,-1,-4],
    [-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4, 1],
];

/// A square substitution matrix over an [`Alphabet`].
///
/// Scores are `i32` internally so downstream DP code never overflows when
/// accumulating.
///
/// # Example
///
/// ```
/// use bioseq::{Alphabet, SubstitutionMatrix};
///
/// let m = SubstitutionMatrix::blosum62();
/// let trp = Alphabet::Protein.encode(b'W').unwrap();
/// assert_eq!(m.score(trp, trp), 11); // W/W is BLOSUM62's largest score
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    name: String,
    alphabet: Alphabet,
    n: usize,
    scores: Vec<i32>,
}

impl SubstitutionMatrix {
    /// The real NCBI BLOSUM62 protein matrix.
    pub fn blosum62() -> Self {
        let n = 24;
        let mut scores = Vec::with_capacity(n * n);
        for row in BLOSUM62.iter() {
            scores.extend(row.iter().map(|&v| v as i32));
        }
        SubstitutionMatrix { name: "BLOSUM62".to_string(), alphabet: Alphabet::Protein, n, scores }
    }

    /// A DNA match/mismatch matrix (`match_score` on the diagonal,
    /// `mismatch` elsewhere; `N` scores `mismatch` against everything
    /// including itself, as in NCBI megablast's ambiguity handling).
    pub fn dna(match_score: i32, mismatch: i32) -> Self {
        let n = Alphabet::Dna.size();
        let unknown = Alphabet::Dna.unknown_code() as usize;
        let mut scores = vec![mismatch; n * n];
        for i in 0..n {
            if i != unknown {
                scores[i * n + i] = match_score;
            }
        }
        SubstitutionMatrix {
            name: format!("DNA(+{match_score}/{mismatch})"),
            alphabet: Alphabet::Dna,
            n,
            scores,
        }
    }

    /// A log-odds matrix derived from the synthetic mutation model of
    /// [`crate::generate::SeqGen::mutate`]: residues survive with
    /// probability `1 - rate` and otherwise mutate uniformly to one of the
    /// 19 other residues, over a uniform background. Scores are
    /// `round(scale · log2(p(a,b) / (q(a) q(b))))` — the Dayhoff/PAM
    /// construction applied to this repository's own evolution model, so
    /// alignments of generated families are scored under the matching
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate < 1`.
    pub fn from_mutation_model(rate: f64, scale: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "mutation rate must be in (0,1)");
        let core = Alphabet::Protein.core_size();
        let n = Alphabet::Protein.size();
        let q = 1.0 / core as f64;
        // Joint probability of observing (a, b) as an aligned pair when b
        // evolved from a (symmetric by construction).
        let p_same = q * (1.0 - rate);
        let p_diff = q * rate / (core - 1) as f64;
        let mut scores = vec![0i32; n * n];
        let lo = |p: f64| ((p / (q * q)).log2() * scale).round() as i32;
        for a in 0..core {
            for b in 0..core {
                scores[a * n + b] = if a == b { lo(p_same) } else { lo(p_diff) };
            }
        }
        // Ambiguity codes: neutral-ish, matching BLOSUM conventions.
        let min = *scores.iter().take(core * n).min().expect("non-empty");
        for a in 0..n {
            for b in 0..n {
                if a >= core || b >= core {
                    scores[a * n + b] = if a == 23 || b == 23 { min } else { 0 };
                }
            }
        }
        SubstitutionMatrix {
            name: format!("mutmodel({rate:.2})"),
            alphabet: Alphabet::Protein,
            n,
            scores,
        }
    }

    /// An identity matrix over any alphabet, useful in tests.
    pub fn identity(alphabet: Alphabet, match_score: i32, mismatch: i32) -> Self {
        let n = alphabet.size();
        let mut scores = vec![mismatch; n * n];
        for i in 0..n {
            scores[i * n + i] = match_score;
        }
        SubstitutionMatrix { name: format!("identity({alphabet})"), alphabet, n, scores }
    }

    /// Matrix name (e.g. `"BLOSUM62"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Alphabet this matrix scores.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Matrix dimension (number of residue codes).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Score for aligning residue codes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either code is out of range.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize * self.n + b as usize]
    }

    /// The raw row-major score table (length `dim() * dim()`), in the layout
    /// the simulated kernels consume directly from memory.
    pub fn as_row_major(&self) -> &[i32] {
        &self.scores
    }

    /// Sum of positional scores of two equal-length sequences (no gaps).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or alphabets mismatch.
    pub fn score_seq(&self, a: &Sequence, b: &Sequence) -> i64 {
        assert_eq!(a.len(), b.len(), "ungapped scoring needs equal lengths");
        assert_eq!(a.alphabet(), self.alphabet);
        assert_eq!(b.alphabet(), self.alphabet);
        a.codes().iter().zip(b.codes()).map(|(&x, &y)| self.score(x, y) as i64).sum()
    }

    /// Whether the matrix is symmetric (all real substitution matrices are).
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|i| {
            (0..self.n).all(|j| self.scores[i * self.n + j] == self.scores[j * self.n + i])
        })
    }

    /// Largest score in the matrix.
    pub fn max_score(&self) -> i32 {
        *self.scores.iter().max().expect("matrix is non-empty")
    }

    /// Smallest score in the matrix.
    pub fn min_score(&self) -> i32 {
        *self.scores.iter().min().expect("matrix is non-empty")
    }
}

impl fmt::Display for SubstitutionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}x{})", self.name, self.n, self.n)
    }
}

/// Affine gap penalties: opening a gap costs `open + extend`, each further
/// gapped column costs `extend`. Values are positive costs.
///
/// These correspond to the paper's `Wg` (gap initiation) and `Ws`
/// (gap extension).
///
/// # Example
///
/// ```
/// use bioseq::GapPenalties;
///
/// let gp = GapPenalties::new(10, 2);
/// assert_eq!(gp.cost(3), 16); // 10 + 3*2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GapPenalties {
    /// Gap-open cost (`Wg`), charged once per gap.
    pub open: i32,
    /// Gap-extension cost (`Ws`), charged per gapped column.
    pub extend: i32,
}

impl GapPenalties {
    /// Create affine penalties.
    ///
    /// # Panics
    ///
    /// Panics if either penalty is negative (penalties are costs).
    pub fn new(open: i32, extend: i32) -> Self {
        assert!(open >= 0 && extend >= 0, "gap penalties are non-negative costs");
        GapPenalties { open, extend }
    }

    /// Total cost of a gap of `len` columns.
    pub fn cost(&self, len: u32) -> i64 {
        if len == 0 {
            0
        } else {
            self.open as i64 + self.extend as i64 * len as i64
        }
    }
}

impl Default for GapPenalties {
    /// BLAST's default protein gap costs (existence 10, extension 1... we use
    /// the BioPerf ssearch defaults of 10/2).
    fn default() -> Self {
        GapPenalties::new(10, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_is_symmetric() {
        assert!(SubstitutionMatrix::blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_spot_values() {
        let m = SubstitutionMatrix::blosum62();
        let code = |c: u8| Alphabet::Protein.encode(c).unwrap();
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        assert_eq!(m.score(code(b'W'), code(b'W')), 11);
        assert_eq!(m.score(code(b'C'), code(b'C')), 9);
        assert_eq!(m.score(code(b'E'), code(b'Q')), 2);
        assert_eq!(m.score(code(b'I'), code(b'L')), 2);
        assert_eq!(m.score(code(b'G'), code(b'W')), -2);
        assert_eq!(m.score(code(b'*'), code(b'*')), 1);
        assert_eq!(m.score(code(b'A'), code(b'*')), -4);
    }

    #[test]
    fn blosum62_diagonal_dominates_rows() {
        // Every standard residue scores itself at least as high as any
        // substitution (true for BLOSUM62 over the 20 standard residues).
        let m = SubstitutionMatrix::blosum62();
        for i in 0..20u8 {
            let diag = m.score(i, i);
            for j in 0..20u8 {
                assert!(diag >= m.score(i, j), "diag {i} vs {j}");
            }
        }
    }

    #[test]
    fn blosum62_extrema() {
        let m = SubstitutionMatrix::blosum62();
        assert_eq!(m.max_score(), 11);
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    fn dna_matrix_scores() {
        let m = SubstitutionMatrix::dna(5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 1), -4);
        // N vs N is a mismatch.
        let n = Alphabet::Dna.unknown_code();
        assert_eq!(m.score(n, n), -4);
        assert!(m.is_symmetric());
    }

    #[test]
    fn identity_matrix_scores() {
        let m = SubstitutionMatrix::identity(Alphabet::Protein, 1, 0);
        assert_eq!(m.score(3, 3), 1);
        assert_eq!(m.score(3, 4), 0);
    }

    #[test]
    fn score_seq_sums_positions() {
        let m = SubstitutionMatrix::blosum62();
        let a = Sequence::from_text("a", Alphabet::Protein, "AW").unwrap();
        let b = Sequence::from_text("b", Alphabet::Protein, "AW").unwrap();
        assert_eq!(m.score_seq(&a, &b), 4 + 11);
    }

    #[test]
    fn row_major_layout_matches_score() {
        let m = SubstitutionMatrix::blosum62();
        let raw = m.as_row_major();
        for a in 0..24u8 {
            for b in 0..24u8 {
                assert_eq!(raw[a as usize * 24 + b as usize], m.score(a, b));
            }
        }
    }

    #[test]
    fn mutation_model_matrix_properties() {
        let m = SubstitutionMatrix::from_mutation_model(0.2, 2.0);
        assert!(m.is_symmetric());
        // Diagonal positive, off-diagonal negative for a conservative rate.
        assert!(m.score(0, 0) > 0);
        assert!(m.score(0, 1) < 0);
        // Higher mutation rate → milder mismatch penalty.
        let loose = SubstitutionMatrix::from_mutation_model(0.6, 2.0);
        assert!(loose.score(0, 1) > m.score(0, 1));
        assert!(loose.score(0, 0) < m.score(0, 0));
    }

    #[test]
    fn mutation_model_matrix_scores_its_own_homologs_positively() {
        use crate::generate::SeqGen;
        let rate = 0.25;
        let m = SubstitutionMatrix::from_mutation_model(rate, 2.0);
        let mut g = SeqGen::new(Alphabet::Protein, 8);
        let a = g.uniform(400);
        let b = g.mutate(&a, rate);
        let c = g.uniform(400);
        // True homologs score positive, random pairs negative (the
        // defining property of a log-odds matrix).
        assert!(m.score_seq(&a, &b) > 0, "homolog score {}", m.score_seq(&a, &b));
        assert!(m.score_seq(&a, &c) < 0, "random score {}", m.score_seq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn mutation_model_rejects_bad_rate() {
        let _ = SubstitutionMatrix::from_mutation_model(1.0, 2.0);
    }

    #[test]
    fn gap_cost_is_affine() {
        let gp = GapPenalties::new(11, 1);
        assert_eq!(gp.cost(0), 0);
        assert_eq!(gp.cost(1), 12);
        assert_eq!(gp.cost(10), 21);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gap_penalties_reject_negative() {
        let _ = GapPenalties::new(-1, 2);
    }

    #[test]
    fn default_gap_penalties() {
        let gp = GapPenalties::default();
        assert_eq!((gp.open, gp.extend), (10, 2));
    }
}
