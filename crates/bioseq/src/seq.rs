//! Sequence containers.

use crate::alphabet::Alphabet;
use std::fmt;

/// Error produced when textual residues cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSequenceError {
    /// Offending ASCII byte.
    pub byte: u8,
    /// Position of the offending byte within the residue text.
    pub position: usize,
    /// Alphabet the text was parsed against.
    pub alphabet: Alphabet,
}

impl fmt::Display for ParseSequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} residue {:?} at position {}",
            self.alphabet, self.byte as char, self.position
        )
    }
}

impl std::error::Error for ParseSequenceError {}

/// A named biological sequence stored as compact residue codes.
///
/// Residues are stored encoded (see [`Alphabet::encode`]) so inner loops can
/// index substitution matrices directly, mirroring how the real BioPerf
/// applications preprocess their inputs.
///
/// # Example
///
/// ```
/// use bioseq::{Alphabet, Sequence};
///
/// let s = Sequence::from_text("query1", Alphabet::Protein, "MKVW")?;
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.to_text(), "MKVW");
/// # Ok::<(), bioseq::seq::ParseSequenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sequence {
    name: String,
    alphabet: Alphabet,
    residues: Vec<u8>,
}

impl Sequence {
    /// Create a sequence from already-encoded residue codes.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range for `alphabet`; codes are produced
    /// internally so an out-of-range code is a logic error.
    pub fn from_codes(name: impl Into<String>, alphabet: Alphabet, codes: Vec<u8>) -> Self {
        assert!(
            codes.iter().all(|&c| alphabet.is_valid_code(c)),
            "residue code out of range for {alphabet}"
        );
        Sequence { name: name.into(), alphabet, residues: codes }
    }

    /// Parse a sequence from ASCII residue text (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSequenceError`] on the first character outside the
    /// alphabet. Whitespace is *not* skipped; use [`crate::fasta`] for file
    /// formats.
    pub fn from_text(
        name: impl Into<String>,
        alphabet: Alphabet,
        text: impl AsRef<str>,
    ) -> Result<Self, ParseSequenceError> {
        let mut residues = Vec::with_capacity(text.as_ref().len());
        for (position, &byte) in text.as_ref().as_bytes().iter().enumerate() {
            match alphabet.encode(byte) {
                Some(code) => residues.push(code),
                None => return Err(ParseSequenceError { byte, position, alphabet }),
            }
        }
        Ok(Sequence { name: name.into(), alphabet, residues })
    }

    /// The sequence's name (FASTA header without `>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sequence's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Encoded residues.
    pub fn codes(&self) -> &[u8] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence contains no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Decode back to ASCII text.
    pub fn to_text(&self) -> String {
        self.residues.iter().map(|&c| self.alphabet.decode(c) as char).collect()
    }

    /// A renamed copy of this sequence.
    pub fn renamed(&self, name: impl Into<String>) -> Sequence {
        Sequence { name: name.into(), alphabet: self.alphabet, residues: self.residues.clone() }
    }

    /// A sub-sequence covering `range` (half-open, in residue indices).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Sequence {
        Sequence {
            name: format!("{}[{}..{}]", self.name, range.start, range.end),
            alphabet: self.alphabet,
            residues: self.residues[range].to_vec(),
        }
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ">{} ({} aa)", self.name, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_round_trips() {
        let s = Sequence::from_text("s", Alphabet::Protein, "ARNDcqeghilkMFPSTWYV").unwrap();
        assert_eq!(s.to_text(), "ARNDCQEGHILKMFPSTWYV");
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_text_reports_position_of_bad_residue() {
        let err = Sequence::from_text("s", Alphabet::Dna, "ACGU").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'U');
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn empty_sequence_is_fine() {
        let s = Sequence::from_text("e", Alphabet::Dna, "").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.to_text(), "");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_codes_rejects_bad_codes() {
        let _ = Sequence::from_codes("bad", Alphabet::Dna, vec![0, 9]);
    }

    #[test]
    fn slice_takes_subrange_and_renames() {
        let s = Sequence::from_text("s", Alphabet::Protein, "MKVWLA").unwrap();
        let sub = s.slice(1..4);
        assert_eq!(sub.to_text(), "KVW");
        assert_eq!(sub.name(), "s[1..4]");
    }

    #[test]
    fn renamed_keeps_residues() {
        let s = Sequence::from_text("a", Alphabet::Dna, "ACGT").unwrap();
        let r = s.renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.codes(), s.codes());
    }

    #[test]
    fn display_mentions_name_and_length() {
        let s = Sequence::from_text("prot7", Alphabet::Protein, "MKV").unwrap();
        assert_eq!(s.to_string(), ">prot7 (3 aa)");
    }
}
