//! Recursive-descent parser for the kernel language.
//!
//! Grammar (EBNF, whitespace-insensitive):
//!
//! ```text
//! program   := function+
//! function  := "fn" ident "(" [param {"," param}] ")" ["->" "int"] block
//! param     := ident ":" ("int" | "ptr" | "bptr")
//! block     := "{" stmt* "}"
//! stmt      := "let" ident "=" expr ";"
//!            | "if" "(" cond ")" block ["else" block]
//!            | "while" "(" cond ")" block
//!            | "return" expr ";"
//!            | ident "=" expr ";"
//!            | ident "[" expr "]" "=" expr ";"
//!            | ident "(" args ")" ";"
//! cond      := orcond
//! orcond    := andcond {"||" andcond}
//! andcond   := atomcond {"&&" atomcond}
//! atomcond  := "!" atomcond | "(" cond ")" | expr cmpop expr
//! expr      := shift {("&"|"|"|"^") shift}
//! shift     := additive {("<<"|">>") additive}
//! additive  := term {("+"|"-") term}
//! term      := unary {("*"|"/") unary}
//! unary     := "-" unary | primary
//! primary   := literal | ident | ident "[" expr "]" | "(" expr ")"
//!            | "max" "(" expr "," expr ")" | "min" "(" expr "," expr ")"
//!            | ident "(" args ")"
//! ```
//!
//! Comparisons appear only in condition position — arithmetic expressions
//! never materialize booleans, so the baseline code generator never needs
//! branchy boolean materialization and every conditional branch in the
//! output corresponds to a source-level `if`/`while`.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CompileError;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parse a token stream into a [`Program`].
///
/// # Errors
///
/// Returns [`CompileError`] on any syntax violation.
pub fn parse(toks: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let mut functions = Vec::new();
    while !p.at_end() {
        functions.push(p.function()?);
    }
    if functions.is_empty() {
        return Err(CompileError { line: 1, message: "empty program".into() });
    }
    Ok(Program { functions })
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn function(&mut self) -> Result<Function, CompileError> {
        let line = self.line();
        if !self.eat_keyword("fn") {
            return Err(self.err("expected `fn`"));
        }
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let tyname = self.ident()?;
                let ty = match tyname.as_str() {
                    "int" => Ty::Int,
                    "ptr" => Ty::WordPtr,
                    "bptr" => Ty::BytePtr,
                    other => return Err(self.err(format!("unknown type {other:?}"))),
                };
                params.push(Param { name: pname, ty });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let returns_value = if self.eat_punct("->") {
            let t = self.ident()?;
            if t != "int" {
                return Err(self.err("only `int` can be returned"));
            }
            true
        } else {
            false
        };
        let body = self.block()?;
        Ok(Function { name, params, returns_value, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_keyword("let") {
            let name = self.ident()?;
            let ty = if self.eat_punct(":") {
                match self.ident()?.as_str() {
                    "int" => Ty::Int,
                    "ptr" => Ty::WordPtr,
                    "bptr" => Ty::BytePtr,
                    other => {
                        return Err(self.err(format!("unknown type {other:?}")));
                    }
                }
            } else {
                Ty::Int
            };
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let { name, ty, value, line });
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.cond()?;
            self.expect_punct(")")?;
            let then_block = self.block()?;
            let else_block = if self.eat_keyword("else") {
                if matches!(self.peek(), Some(Tok::Ident(s)) if s == "if") {
                    // else-if chains nest.
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then_block, else_block, line });
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.cond()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_keyword("return") {
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return { value, line });
        }
        // Assignment, array store, or call statement.
        let name = self.ident()?;
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store { array: name, index, value, line });
        }
        if self.eat_punct("=") {
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assign { name, value, line });
        }
        if self.eat_punct("(") {
            let args = self.args()?;
            self.expect_punct(";")?;
            return Ok(Stmt::CallStmt { call: Expr::Call { name, args }, line });
        }
        Err(self.err(format!("expected statement after {name:?}")))
    }

    fn args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if self.eat_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_punct(")") {
                return Ok(args);
            }
            self.expect_punct(",")?;
        }
    }

    fn cond(&mut self) -> Result<Cond, CompileError> {
        let mut lhs = self.and_cond()?;
        while self.eat_punct("||") {
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond, CompileError> {
        let mut lhs = self.atom_cond()?;
        while self.eat_punct("&&") {
            let rhs = self.atom_cond()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom_cond(&mut self) -> Result<Cond, CompileError> {
        if self.eat_punct("!") {
            return Ok(Cond::Not(Box::new(self.atom_cond()?)));
        }
        // Parenthesized condition vs parenthesized expression: try a
        // condition first by look-ahead (save/restore position).
        if matches!(self.peek(), Some(Tok::Punct("("))) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(c) = self.cond() {
                if self.eat_punct(")") {
                    // Could still be `(expr) < (expr)` misparsed; a
                    // condition followed by a comparison operator means we
                    // actually consumed only the lhs expression — handled
                    // by falling through when the next token is a cmp op.
                    if !self.peek_is_cmp() {
                        return Ok(c);
                    }
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.bump() {
            Some(Tok::Punct("==")) => CmpOp::Eq,
            Some(Tok::Punct("!=")) => CmpOp::Ne,
            Some(Tok::Punct("<")) => CmpOp::Lt,
            Some(Tok::Punct("<=")) => CmpOp::Le,
            Some(Tok::Punct(">")) => CmpOp::Gt,
            Some(Tok::Punct(">=")) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp { op, lhs, rhs })
    }

    fn peek_is_cmp(&self) -> bool {
        matches!(self.peek(), Some(Tok::Punct("==" | "!=" | "<" | "<=" | ">" | ">=")))
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("&")) => BinOp::And,
                Some(Tok::Punct("|")) => BinOp::Or,
                Some(Tok::Punct("^")) => BinOp::Xor,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.shift()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("<<")) => BinOp::Shl,
                Some(Tok::Punct(">>")) => BinOp::Shr,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => BinOp::Add,
                Some(Tok::Punct("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => BinOp::Mul,
                Some(Tok::Punct("/")) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Lit(v))
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if (name == "max" || name == "min") && matches!(self.peek(), Some(Tok::Punct("(")))
                {
                    self.pos += 1;
                    let a = self.expr()?;
                    self.expect_punct(",")?;
                    let b = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(if name == "max" {
                        Expr::Max(Box::new(a), Box::new(b))
                    } else {
                        Expr::Min(Box::new(a), Box::new(b))
                    });
                }
                if matches!(self.peek(), Some(Tok::Punct("("))) {
                    self.pos += 1;
                    let args = self.args()?;
                    return Ok(Expr::Call { name, args });
                }
                if matches!(self.peek(), Some(Tok::Punct("["))) && self.peek2().is_some() {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index { array: name, index: Box::new(index) });
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_function() {
        let p = parse_src("fn main() -> int { return 0; }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert!(p.functions[0].returns_value);
        assert_eq!(p.functions[0].body.len(), 1);
    }

    #[test]
    fn params_with_types() {
        let p = parse_src("fn f(a: int, v: ptr, s: bptr) { return 0; }");
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].ty, Ty::Int);
        assert_eq!(f.params[1].ty, Ty::WordPtr);
        assert_eq!(f.params[2].ty, Ty::BytePtr);
        assert!(!f.returns_value);
    }

    #[test]
    fn precedence_mul_over_add_over_shift_over_bitand() {
        let p = parse_src("fn f() { let x = 1 + 2 * 3 << 1 & 7; }");
        let Stmt::Let { value, .. } = &p.functions[0].body[0] else { panic!() };
        // ((1 + (2*3)) << 1) & 7
        let Expr::Bin { op: BinOp::And, lhs, .. } = value else { panic!("{value:?}") };
        let Expr::Bin { op: BinOp::Shl, lhs: add, .. } = lhs.as_ref() else { panic!() };
        let Expr::Bin { op: BinOp::Add, rhs: mul, .. } = add.as_ref() else { panic!() };
        assert!(matches!(mul.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn if_else_and_while() {
        let p = parse_src(
            "fn f(n: int) -> int {
                let i = 0;
                while (i < n) {
                    if (i > 3) { i = i + 2; } else { i = i + 1; }
                }
                return i;
            }",
        );
        let body = &p.functions[0].body;
        assert!(matches!(&body[1], Stmt::While { .. }));
        let Stmt::While { body: wb, .. } = &body[1] else { panic!() };
        let Stmt::If { else_block, .. } = &wb[0] else { panic!() };
        assert_eq!(else_block.len(), 1);
    }

    #[test]
    fn else_if_chains() {
        let p = parse_src(
            "fn f(x: int) -> int {
                if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; }
                return 3;
            }",
        );
        let Stmt::If { else_block, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(&else_block[0], Stmt::If { .. }));
    }

    #[test]
    fn array_load_and_store() {
        let p = parse_src("fn f(a: ptr, i: int) { a[i + 1] = a[i] + 2; }");
        let Stmt::Store { array, value, .. } = &p.functions[0].body[0] else { panic!() };
        assert_eq!(array, "a");
        assert!(matches!(value, Expr::Bin { op: BinOp::Add, .. }));
    }

    #[test]
    fn max_min_intrinsics() {
        let p = parse_src("fn f(a: int, b: int) -> int { return max(a, min(b, 0)); }");
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        let Expr::Max(_, inner) = value else { panic!() };
        assert!(matches!(inner.as_ref(), Expr::Min(_, _)));
    }

    #[test]
    fn calls_statement_and_assignment() {
        let p = parse_src(
            "fn g(x: int) -> int { return x; }
             fn main() -> int { g(1); let y = g(2); return y; }",
        );
        assert_eq!(p.functions.len(), 2);
        assert!(matches!(&p.functions[1].body[0], Stmt::CallStmt { .. }));
    }

    #[test]
    fn compound_conditions() {
        let p = parse_src(
            "fn f(a: int, b: int) { while (a < 10 && (b > 0 || !(a == b))) { a = a + 1; } }",
        );
        let Stmt::While { cond, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(cond, Cond::And(_, _)));
    }

    #[test]
    fn parenthesized_expr_as_cmp_operand() {
        let p = parse_src("fn f(a: int, b: int) { if ((a + b) < 0) { a = 0; } }");
        let Stmt::If { cond, .. } = &p.functions[0].body[0] else { panic!() };
        let Cond::Cmp { op: CmpOp::Lt, lhs, .. } = cond else { panic!("{cond:?}") };
        assert!(matches!(lhs, Expr::Bin { op: BinOp::Add, .. }));
    }

    #[test]
    fn error_messages_have_lines() {
        let toks = lex("fn f() {\n  let x = ;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_program_rejected() {
        let e = parse(&lex("").unwrap()).unwrap_err();
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn comparison_outside_condition_rejected() {
        let toks = lex("fn f(a: int) { let x = a < 3; }").unwrap();
        assert!(parse(&toks).is_err());
    }
}
