//! A direct AST interpreter for the kernel language.
//!
//! The interpreter defines the language's reference semantics (32-bit
//! wrapping arithmetic, PowerPC-style shift/division behaviour) and exists
//! for differential testing: any program must produce identical results
//! when (a) interpreted, (b) compiled to the baseline ISA and simulated,
//! and (c) compiled with any predication mode and simulated. The
//! workspace's integration tests run exactly that comparison on random
//! programs.

use crate::ast::*;
use crate::CompileError;
use std::collections::HashMap;

/// Interpreter memory: word- and byte-addressable, like the simulated
/// machine (little-endian, flat).
#[derive(Debug, Clone)]
pub struct InterpMemory {
    bytes: Vec<u8>,
}

impl InterpMemory {
    /// Zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        InterpMemory { bytes: vec![0; size] }
    }

    /// Read the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (interpreted programs are trusted
    /// test inputs).
    pub fn load_word(&self, addr: u32) -> i32 {
        let a = addr as usize;
        i32::from_le_bytes(self.bytes[a..a + 4].try_into().expect("in bounds"))
    }

    /// Write the word at byte address `addr`.
    pub fn store_word(&mut self, addr: u32, v: i32) {
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read the byte at `addr`, zero-extended.
    pub fn load_byte(&self, addr: u32) -> i32 {
        self.bytes[addr as usize] as i32
    }

    /// Write the low byte of `v` at `addr`.
    pub fn store_byte(&mut self, addr: u32, v: i32) {
        self.bytes[addr as usize] = v as u8;
    }

    /// Bulk-write words (host-side setup).
    pub fn write_words(&mut self, addr: u32, words: &[i32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store_word(addr + 4 * i as u32, w);
        }
    }

    /// Bulk-write bytes.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }
}

struct Frame {
    vars: HashMap<String, i32>,
    types: HashMap<String, Ty>,
}

enum Flow {
    Normal,
    Return(i32),
}

/// Interpret `program`, calling `main` with `args`, against `memory`.
/// Returns `main`'s result (0 if it returns no value).
///
/// # Errors
///
/// Returns [`CompileError`]-style diagnostics for the same conditions the
/// compiler rejects (unknown variables/functions, arity mismatches), plus
/// a step-budget overrun for non-terminating programs.
pub fn run(
    program: &Program,
    args: &[i32],
    memory: &mut InterpMemory,
    step_budget: u64,
) -> Result<i32, CompileError> {
    let mut interp = Interp { program, memory, steps: step_budget };
    interp.call("main", args, 0)
}

struct Interp<'a> {
    program: &'a Program,
    memory: &'a mut InterpMemory,
    steps: u64,
}

impl Interp<'_> {
    fn err(&self, line: usize, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }

    fn tick(&mut self, line: usize) -> Result<(), CompileError> {
        if self.steps == 0 {
            return Err(self.err(line, "interpreter step budget exhausted"));
        }
        self.steps -= 1;
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[i32], line: usize) -> Result<i32, CompileError> {
        let f = self
            .program
            .functions
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| self.err(line, format!("unknown function {name:?}")))?;
        if f.params.len() != args.len() {
            return Err(self.err(
                line,
                format!("{name} expects {} arguments, got {}", f.params.len(), args.len()),
            ));
        }
        let mut frame = Frame { vars: HashMap::new(), types: HashMap::new() };
        for (p, &v) in f.params.iter().zip(args) {
            frame.vars.insert(p.name.clone(), v);
            frame.types.insert(p.name.clone(), p.ty);
        }
        match self.block(&f.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(0),
        }
    }

    fn block(&mut self, stmts: &[Stmt], frame: &mut Frame) -> Result<Flow, CompileError> {
        for s in stmts {
            match self.stmt(s, frame)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<Flow, CompileError> {
        match s {
            Stmt::Let { name, ty, value, line } => {
                self.tick(*line)?;
                let v = self.expr(value, frame, *line)?;
                frame.vars.insert(name.clone(), v);
                frame.types.insert(name.clone(), *ty);
                Ok(Flow::Normal)
            }
            Stmt::Assign { name, value, line } => {
                self.tick(*line)?;
                let v = self.expr(value, frame, *line)?;
                if !frame.vars.contains_key(name) {
                    return Err(self.err(*line, format!("unknown variable {name:?}")));
                }
                frame.vars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Store { array, index, value, line } => {
                self.tick(*line)?;
                let base = *frame
                    .vars
                    .get(array)
                    .ok_or_else(|| self.err(*line, format!("unknown array {array:?}")))?;
                let ty = frame.types.get(array).copied().unwrap_or(Ty::WordPtr);
                let idx = self.expr(index, frame, *line)?;
                let v = self.expr(value, frame, *line)?;
                match ty {
                    Ty::BytePtr => self.memory.store_byte((base).wrapping_add(idx) as u32, v),
                    _ => self.memory.store_word((base).wrapping_add(idx.wrapping_mul(4)) as u32, v),
                }
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_block, else_block, line } => {
                self.tick(*line)?;
                if self.cond(cond, frame, *line)? {
                    self.block(then_block, frame)
                } else {
                    self.block(else_block, frame)
                }
            }
            Stmt::While { cond, body, line } => {
                while self.cond(cond, frame, *line)? {
                    self.tick(*line)?;
                    match self.block(body, frame)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, line } => {
                self.tick(*line)?;
                let v = self.expr(value, frame, *line)?;
                Ok(Flow::Return(v))
            }
            Stmt::CallStmt { call, line } => {
                self.tick(*line)?;
                let _ = self.expr(call, frame, *line)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn cond(&mut self, c: &Cond, frame: &mut Frame, line: usize) -> Result<bool, CompileError> {
        Ok(match c {
            Cond::Cmp { op, lhs, rhs } => {
                let a = self.expr(lhs, frame, line)?;
                let b = self.expr(rhs, frame, line)?;
                match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }
            }
            Cond::And(a, b) => self.cond(a, frame, line)? && self.cond(b, frame, line)?,
            Cond::Or(a, b) => self.cond(a, frame, line)? || self.cond(b, frame, line)?,
            Cond::Not(inner) => !self.cond(inner, frame, line)?,
        })
    }

    fn expr(&mut self, e: &Expr, frame: &mut Frame, line: usize) -> Result<i32, CompileError> {
        Ok(match e {
            Expr::Lit(v) => *v as i32,
            Expr::Var(name) => *frame
                .vars
                .get(name)
                .ok_or_else(|| self.err(line, format!("unknown variable {name:?}")))?,
            Expr::Index { array, index } => {
                let base = *frame
                    .vars
                    .get(array)
                    .ok_or_else(|| self.err(line, format!("unknown array {array:?}")))?;
                let ty = frame.types.get(array).copied().unwrap_or(Ty::WordPtr);
                let idx = self.expr(index, frame, line)?;
                match ty {
                    Ty::BytePtr => self.memory.load_byte(base.wrapping_add(idx) as u32),
                    _ => self.memory.load_word(base.wrapping_add(idx.wrapping_mul(4)) as u32),
                }
            }
            Expr::Neg(inner) => self.expr(inner, frame, line)?.wrapping_neg(),
            Expr::Bin { op, lhs, rhs } => {
                let a = self.expr(lhs, frame, line)?;
                let b = self.expr(rhs, frame, line)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    // divw semantics: undefined cases yield 0.
                    BinOp::Div => {
                        if b == 0 || (a == i32::MIN && b == -1) {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    // slw/sraw semantics: 6-bit amount, >31 saturates.
                    BinOp::Shl => {
                        let sh = (b as u32) & 0x3F;
                        if sh > 31 {
                            0
                        } else {
                            ((a as u32) << sh) as i32
                        }
                    }
                    BinOp::Shr => {
                        let sh = (b as u32) & 0x3F;
                        if sh > 31 {
                            a >> 31
                        } else {
                            a >> sh
                        }
                    }
                }
            }
            Expr::Max(x, y) => {
                let a = self.expr(x, frame, line)?;
                let b = self.expr(y, frame, line)?;
                a.max(b)
            }
            Expr::Min(x, y) => {
                let a = self.expr(x, frame, line)?;
                let b = self.expr(y, frame, line)?;
                a.min(b)
            }
            Expr::Select { cond, then_val, else_val } => {
                // Both sides evaluate (that is the point of predication);
                // order matches codegen: then, else, condition.
                let t = self.expr(then_val, frame, line)?;
                let f = self.expr(else_val, frame, line)?;
                if self.cond(cond, frame, line)? {
                    t
                } else {
                    f
                }
            }
            Expr::Call { name, args } => {
                let vals: Vec<i32> =
                    args.iter().map(|a| self.expr(a, frame, line)).collect::<Result<_, _>>()?;
                self.call(name, &vals, line)?
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn interp(src: &str, args: &[i32]) -> i32 {
        let p = parse(&lex(src).unwrap()).unwrap();
        let mut mem = InterpMemory::new(1 << 16);
        run(&p, args, &mut mem, 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "
            fn main(n: int) -> int {
                let s = 0;
                let i = 1;
                while (i <= n) {
                    if (i / 2 * 2 == i) { s = s + i; }
                    i = i + 1;
                }
                return s;
            }";
        // Sum of evens 1..=10 = 30.
        assert_eq!(interp(src, &[10]), 30);
    }

    #[test]
    fn memory_and_types() {
        let src = "
            fn main(w: ptr, b: bptr) -> int {
                w[0] = 300;
                b[0] = 300;
                return w[0] + b[0];
            }";
        let p = parse(&lex(src).unwrap()).unwrap();
        let mut mem = InterpMemory::new(1 << 16);
        // 300 truncates to 44 in a byte.
        assert_eq!(run(&p, &[0x100, 0x200], &mut mem, 10_000).unwrap(), 300 + 44);
    }

    #[test]
    fn calls_and_recursion_free_chains() {
        let src = "
            fn double(x: int) -> int { return x * 2; }
            fn main(x: int) -> int { let y = double(x); return double(y); }";
        assert_eq!(interp(src, &[5]), 20);
    }

    #[test]
    fn wrapping_and_division_rules() {
        assert_eq!(interp("fn main() -> int { return 2147483647 + 1; }", &[]), i32::MIN);
        assert_eq!(interp("fn main(a: int) -> int { return a / 0; }", &[5]), 0);
        assert_eq!(interp("fn main(a: int, b: int) -> int { return a / b; }", &[i32::MIN, -1]), 0);
        assert_eq!(interp("fn main(a: int) -> int { return a >> 40; }", &[-8]), -1);
        assert_eq!(interp("fn main(a: int) -> int { return a << 40; }", &[-8]), 0);
    }

    #[test]
    fn step_budget_catches_infinite_loops() {
        let src = "fn main() -> int { let x = 0; while (x < 1) { x = x * 1; } return x; }";
        let p = parse(&lex(src).unwrap()).unwrap();
        let mut mem = InterpMemory::new(1024);
        let e = run(&p, &[], &mut mem, 1000).unwrap_err();
        assert!(e.message.contains("budget"));
    }

    #[test]
    fn max_min_intrinsics() {
        assert_eq!(
            interp("fn main(a: int, b: int) -> int { return max(a, min(b, 10)); }", &[3, 99]),
            10
        );
        assert_eq!(
            interp("fn main(a: int, b: int) -> int { return max(a, min(b, 10)); }", &[-5, -9]),
            -5
        );
    }
}
