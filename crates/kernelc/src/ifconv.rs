//! The if-conversion pass — the reproduction of the paper's modified
//! gcc 4.1.1 (Section IV-B).
//!
//! The pass rewrites *hammocks* (single-assignment `if`/`if-else` regions)
//! into predicated code:
//!
//! * **max/min patterns** — `if (x < y) { x = y; }` and friends become the
//!   `max()` intrinsic (lowered to `maxw` or `cmp`+`isel` by the code
//!   generator, depending on the target);
//! * **general hammocks** — `if (c) x = e;` / `if (c) x = e1; else x = e2;`
//!   become a select (lowered to `isel`). These are converted only for the
//!   `isel` target: a plain `maxw` cannot express an arbitrary select,
//!   which is exactly the paper's observation that the compiler finds
//!   "other predicated opportunities than max functionality" for Blast.
//!
//! Conversion executes the hammock's loads unconditionally, so — like the
//! paper's compiler — the pass must prove each load safe:
//!
//! * a load `a[i]` is safe if the *identical* access already executed
//!   unconditionally earlier in the same block (including in the hammock's
//!   own condition), with
//! * **no intervening store or call** (stores kill the whole known-safe
//!   set: without alias information the compiler "must ensure that memory
//!   operands … are not aliased — a task that is … often extremely
//!   difficult for a compiler"), and
//! * no intervening reassignment of any variable the access's index uses.
//!
//! Kernels that keep DP state in memory arrays with interleaved stores
//! (Clustalw's `forward_pass`, Hmmer's `P7Viterbi`) therefore lose many
//! hammocks to the safety analysis, while register-carried kernels
//! (Blast's gapped extension, Fasta's `dropgsw` inner loop) convert fully
//! — reproducing Figure 3's hand-vs-compiler split.

use crate::ast::*;
use crate::IfConversion;
use std::collections::HashSet;

/// Run the pass over `program` in the given mode. Returns
/// `(converted, rejected)` hammock counts.
pub fn run(program: &mut Program, mode: IfConversion) -> (usize, usize) {
    let mut stats = (0, 0);
    if mode == IfConversion::Off {
        return stats;
    }
    let allow_select = mode == IfConversion::Full;
    for f in &mut program.functions {
        convert_block(&mut f.body, allow_select, &mut stats);
    }
    stats
}

/// Canonical key of a load expression, plus the variables its index uses.
fn load_key(array: &str, index: &Expr) -> (String, HashSet<String>) {
    let key = format!("{array}[{index:?}]");
    let mut vars = HashSet::new();
    vars.insert(array.to_string());
    index.visit(&mut |e| {
        if let Expr::Var(v) = e {
            vars.insert(v.clone());
        }
    });
    (key, vars)
}

/// Set of loads proven to have executed unconditionally.
#[derive(Default)]
struct SafeLoads {
    entries: Vec<(String, HashSet<String>)>,
}

impl SafeLoads {
    fn add_expr(&mut self, e: &Expr) {
        e.visit(&mut |node| {
            if let Expr::Index { array, index } = node {
                let entry = load_key(array, index);
                if !self.entries.iter().any(|(k, _)| *k == entry.0) {
                    self.entries.push(entry);
                }
            }
        });
    }

    fn add_cond(&mut self, c: &Cond) {
        c.visit_exprs(&mut |node| {
            if let Expr::Index { array, index } = node {
                let entry = load_key(array, index);
                if !self.entries.iter().any(|(k, _)| *k == entry.0) {
                    self.entries.push(entry);
                }
            }
        });
    }

    fn kill_var(&mut self, var: &str) {
        self.entries.retain(|(_, vars)| !vars.contains(var));
    }

    fn kill_all(&mut self) {
        self.entries.clear();
    }

    fn contains(&self, array: &str, index: &Expr) -> bool {
        let key = format!("{array}[{index:?}]");
        self.entries.iter().any(|(k, _)| *k == key)
    }
}

/// Whether every load in `e` is already proven safe, and the expression is
/// otherwise side-effect-free and cheap enough to speculate (no calls, no
/// division — gcc's if-conversion refuses trapping operations).
fn expr_safe(e: &Expr, safe: &SafeLoads) -> bool {
    let mut ok = true;
    e.visit(&mut |node| match node {
        Expr::Call { .. } => ok = false,
        Expr::Bin { op: BinOp::Div, .. } => ok = false,
        Expr::Index { array, index } if !safe.contains(array, index) => {
            ok = false;
        }
        _ => {}
    });
    ok
}

/// Match `if (…) { x = y; }` max/min shapes. Returns the replacement.
///
/// The matcher is deliberately *strict* — the compared value must be a
/// plain variable or literal. Expression operands defeat it, just as the
/// paper reports hoisted loads "obfuscating available max opportunities
/// (i.e., confuses the pattern matcher)"; such hammocks are still
/// convertible by the general `isel` path.
fn match_minmax(cond: &Cond, then_block: &[Stmt], else_block: &[Stmt]) -> Option<Stmt> {
    if !else_block.is_empty() || then_block.len() != 1 {
        return None;
    }
    let Stmt::Assign { name, value, line } = &then_block[0] else {
        return None;
    };
    let Cond::Cmp { op, lhs, rhs } = cond else {
        return None;
    };
    let x = Expr::Var(name.clone());
    // Normalize to `x <op> other`.
    let (op, other) = if *lhs == x {
        (*op, rhs)
    } else if *rhs == x {
        (op.swapped(), lhs)
    } else {
        return None;
    };
    if value != other {
        return None;
    }
    if !matches!(other, Expr::Var(_) | Expr::Lit(_)) {
        return None;
    }
    // `if (x < y) x = y`  →  x = max(x, y)
    // `if (x > y) x = y`  →  x = min(x, y)
    let repl = match op {
        CmpOp::Lt | CmpOp::Le => Expr::Max(Box::new(x), Box::new(other.clone())),
        CmpOp::Gt | CmpOp::Ge => Expr::Min(Box::new(x), Box::new(other.clone())),
        _ => return None,
    };
    Some(Stmt::Assign { name: name.clone(), value: repl, line: *line })
}

/// If a converted hammock's values are exactly the comparison's operands,
/// the select *is* a min/max: `select(l < r, r, l)` ≡ `max(l, r)`. Returns
/// the equivalent intrinsic expression, or `None`.
fn as_minmax(cond: &Cond, tval: &Expr, eval: &Expr) -> Option<Expr> {
    let Cond::Cmp { op, lhs, rhs } = cond else {
        return None;
    };
    let straight = tval == rhs && eval == lhs; // select(l op r, r, l)
    let flipped = tval == lhs && eval == rhs; // select(l op r, l, r)
    let l = Box::new(lhs.clone());
    let r = Box::new(rhs.clone());
    match (op, straight, flipped) {
        (CmpOp::Lt | CmpOp::Le, true, _) => Some(Expr::Max(l, r)),
        (CmpOp::Gt | CmpOp::Ge, true, _) => Some(Expr::Min(l, r)),
        (CmpOp::Lt | CmpOp::Le, _, true) => Some(Expr::Min(l, r)),
        (CmpOp::Gt | CmpOp::Ge, _, true) => Some(Expr::Max(l, r)),
        _ => None,
    }
}

/// A hammock whose body assigns a *memory* location (`if (c) a[i] = e;`).
/// These can never be if-converted without masked stores — the shape
/// behind the paper's "abundant array memory references" limitation — but
/// they are counted as missed opportunities.
fn is_store_hammock(then_block: &[Stmt], else_block: &[Stmt]) -> bool {
    matches!(then_block, [Stmt::Store { .. }]) && matches!(else_block, [] | [Stmt::Store { .. }])
}

/// Match a general single-assignment hammock. Returns
/// `(var, then_value, else_value, line)`.
fn match_hammock<'a>(
    then_block: &'a [Stmt],
    else_block: &'a [Stmt],
) -> Option<(&'a str, &'a Expr, Option<&'a Expr>, usize)> {
    if then_block.len() != 1 {
        return None;
    }
    let Stmt::Assign { name, value, line } = &then_block[0] else {
        return None;
    };
    match else_block {
        [] => Some((name, value, None, *line)),
        [Stmt::Assign { name: ename, value: evalue, .. }] if ename == name => {
            Some((name, value, Some(evalue), *line))
        }
        _ => None,
    }
}

fn convert_block(block: &mut [Stmt], allow_select: bool, stats: &mut (usize, usize)) {
    let mut safe = SafeLoads::default();
    for stmt in block.iter_mut() {
        // First, recurse into nested structures and attempt conversion of
        // this statement itself.
        let replacement: Option<Stmt> = match stmt {
            Stmt::If { cond, then_block, else_block, .. } => {
                convert_block(then_block, allow_select, stats);
                convert_block(else_block, allow_select, stats);
                // Try the max/min pattern (any predicated target).
                if let Some(repl) = match_minmax(cond, then_block, else_block) {
                    // Operand safety: the compared value must be safe to
                    // evaluate unconditionally (it already is — it was in
                    // the condition), and the assigned value equals it.
                    let cond_safe = safe_with_cond(&safe, cond);
                    let ok = match &repl {
                        Stmt::Assign { value: Expr::Max(a, b) | Expr::Min(a, b), .. } => {
                            expr_safe(a, &cond_safe) && expr_safe(b, &cond_safe)
                        }
                        _ => false,
                    };
                    if ok {
                        stats.0 += 1;
                        Some(repl)
                    } else {
                        stats.1 += 1;
                        None
                    }
                } else if !matches!(cond, Cond::Cmp { .. }) {
                    // Compound conditions keep their short-circuit
                    // branches; a matching hammock shape is still a missed
                    // opportunity worth counting.
                    if match_hammock(then_block, else_block).is_some() {
                        stats.1 += 1;
                    }
                    None
                } else {
                    // General hammock: needs isel.
                    match match_hammock(then_block, else_block) {
                        Some((name, tval, eval_opt, line)) if allow_select => {
                            let cond_safe = safe_with_cond(&safe, cond);
                            let else_val = eval_opt.cloned().unwrap_or(Expr::Var(name.to_string()));
                            if expr_safe(tval, &cond_safe) && expr_safe(&else_val, &cond_safe) {
                                stats.0 += 1;
                                // Recognize min/max shapes among general
                                // hammocks so the selected operands are
                                // evaluated once (the compare reuses them)
                                // instead of appearing in both the compare
                                // and the select.
                                let value =
                                    as_minmax(cond, tval, &else_val).unwrap_or(Expr::Select {
                                        cond: Box::new(cond.clone()),
                                        then_val: Box::new(tval.clone()),
                                        else_val: Box::new(else_val),
                                    });
                                Some(Stmt::Assign { name: name.to_string(), value, line })
                            } else {
                                stats.1 += 1;
                                None
                            }
                        }
                        Some(_) => {
                            stats.1 += 1;
                            None
                        }
                        None => {
                            if is_store_hammock(then_block, else_block) {
                                stats.1 += 1;
                            }
                            None
                        }
                    }
                }
            }
            Stmt::While { body, .. } => {
                convert_block(body, allow_select, stats);
                None
            }
            _ => None,
        };
        if let Some(repl) = replacement {
            *stmt = repl;
        }

        // Then update the safety state as this statement executes.
        match stmt {
            Stmt::Let { name, value, .. } | Stmt::Assign { name, value, .. } => {
                if value.has_call() {
                    safe.kill_all();
                } else {
                    safe.add_expr(value);
                }
                let name = name.clone();
                safe.kill_var(&name);
            }
            Stmt::Store { .. } | Stmt::CallStmt { .. } => {
                // Conservative aliasing: any store (or callee) may alias
                // any known-safe load.
                safe.kill_all();
            }
            Stmt::If { .. } | Stmt::While { .. } => {
                // Inner blocks may assign anything.
                safe.kill_all();
            }
            Stmt::Return { .. } => {}
        }
    }
}

/// The safe set extended with the loads the condition itself performs
/// (they execute unconditionally when the hammock is reached).
fn safe_with_cond(base: &SafeLoads, cond: &Cond) -> SafeLoads {
    let mut s = SafeLoads { entries: base.entries.clone() };
    s.add_cond(cond);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::IfConversion::{Full, MaxPatterns};

    fn convert(src: &str, mode: IfConversion) -> (Program, usize, usize) {
        let mut p = parse(&lex(src).unwrap()).unwrap();
        let (c, r) = run(&mut p, mode);
        (p, c, r)
    }

    fn body(p: &Program) -> &[Stmt] {
        &p.functions[0].body
    }

    #[test]
    fn max_pattern_converts() {
        let (p, c, r) =
            convert("fn f(a: int, b: int) -> int { if (a < b) { a = b; } return a; }", MaxPatterns);
        assert_eq!((c, r), (1, 0));
        let Stmt::Assign { value, .. } = &body(&p)[0] else { panic!("{:?}", body(&p)[0]) };
        assert!(matches!(value, Expr::Max(_, _)));
    }

    #[test]
    fn reversed_max_pattern_converts() {
        let (p, c, _) =
            convert("fn f(a: int, b: int) -> int { if (b > a) { a = b; } return a; }", MaxPatterns);
        assert_eq!(c, 1);
        let Stmt::Assign { value, .. } = &body(&p)[0] else { panic!() };
        assert!(matches!(value, Expr::Max(_, _)));
    }

    #[test]
    fn min_pattern_converts() {
        let (p, c, _) =
            convert("fn f(a: int, b: int) -> int { if (a > b) { a = b; } return a; }", MaxPatterns);
        assert_eq!(c, 1);
        let Stmt::Assign { value, .. } = &body(&p)[0] else { panic!() };
        assert!(matches!(value, Expr::Min(_, _)));
    }

    #[test]
    fn general_hammock_needs_isel_target() {
        let src = "fn f(a: int, b: int) -> int { if (a < 0) { b = a + 1; } return b; }";
        let (p, c, r) = convert(src, Full);
        assert_eq!((c, r), (1, 0));
        let Stmt::Assign { value, .. } = &body(&p)[0] else { panic!() };
        assert!(matches!(value, Expr::Select { .. }));

        let (p2, c2, r2) = convert(src, MaxPatterns);
        assert_eq!((c2, r2), (0, 1));
        assert!(matches!(&body(&p2)[0], Stmt::If { .. }));
    }

    #[test]
    fn if_else_minmax_shape_becomes_min() {
        // `x = a < b ? a : b` *is* min(a, b); the pass recognizes it so the
        // operands are evaluated once.
        let (p, c, _) = convert(
            "fn f(a: int, b: int) -> int {
                let x = 0;
                if (a < b) { x = a; } else { x = b; }
                return x;
            }",
            Full,
        );
        assert_eq!(c, 1);
        let Stmt::Assign { value, .. } = &body(&p)[1] else { panic!() };
        assert!(matches!(value, Expr::Min(_, _)), "{value:?}");
    }

    #[test]
    fn if_else_general_hammock_converts_to_select() {
        let (p, c, _) = convert(
            "fn f(a: int, b: int) -> int {
                let x = 0;
                if (a < b) { x = a + 1; } else { x = b - 1; }
                return x;
            }",
            Full,
        );
        assert_eq!(c, 1);
        let Stmt::Assign { value, .. } = &body(&p)[1] else { panic!() };
        let Expr::Select { else_val, .. } = value else { panic!("{value:?}") };
        assert!(matches!(else_val.as_ref(), Expr::Bin { .. }));
    }

    #[test]
    fn unproven_load_blocks_conversion() {
        // x[i] was never loaded before the hammock: cannot speculate.
        let (p, c, r) = convert(
            "fn f(x: ptr, i: int, c: int) -> int {
                let v = 0;
                if (c > 0) { v = x[i]; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (0, 1));
        assert!(matches!(&body(&p)[1], Stmt::If { .. }));
    }

    #[test]
    fn prior_identical_load_allows_conversion() {
        // The paper's safe case: the same access already executed.
        let (_, c, r) = convert(
            "fn f(x: ptr, i: int, c: int) -> int {
                let v = x[i];
                if (c > 0) { v = x[i] + 1; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (1, 0));
    }

    #[test]
    fn load_in_condition_is_safe() {
        // `if (x[i-1] > C) c = x[i];` from the paper — but here the
        // then-load matches a condition load, so it converts.
        let (_, c, r) = convert(
            "fn f(x: ptr, i: int) -> int {
                let v = 0;
                if (x[i] > 3) { v = x[i]; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (1, 0));
    }

    #[test]
    fn papers_unprovable_example_is_rejected() {
        // `if (x[i-1] > C) c = x[i];` — x[i] never executed; rejected.
        let (_, c, r) = convert(
            "fn f(x: ptr, i: int) -> int {
                let v = 0;
                if (x[i - 1] > 3) { v = x[i]; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (0, 1));
    }

    #[test]
    fn intervening_store_kills_safety() {
        // The aliasing rule: a store between the load and the hammock.
        let (_, c, r) = convert(
            "fn f(x: ptr, y: ptr, i: int, c: int) -> int {
                let v = x[i];
                y[i] = 7;
                if (c > 0) { v = x[i] + 1; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (0, 1));
    }

    #[test]
    fn index_reassignment_kills_safety() {
        let (_, c, r) = convert(
            "fn f(x: ptr, i: int, c: int) -> int {
                let v = x[i];
                i = i + 1;
                if (c > 0) { v = x[i] + 1; }
                return v;
            }",
            Full,
        );
        assert_eq!((c, r), (0, 1));
    }

    #[test]
    fn register_only_hammocks_always_convert() {
        let (_, c, r) = convert(
            "fn f(a: int, b: int, d: int) -> int {
                let x = a + b;
                if (x < 0) { x = 0; }
                if (d < x) { d = x; }
                return d;
            }",
            Full,
        );
        assert_eq!((c, r), (2, 0));
    }

    #[test]
    fn hammocks_inside_loops_convert() {
        let (p, c, _) = convert(
            "fn f(n: int) -> int {
                let best = 0;
                let i = 0;
                while (i < n) {
                    let v = i * 3;
                    if (best < v) { best = v; }
                    i = i + 1;
                }
                return best;
            }",
            MaxPatterns,
        );
        assert_eq!(c, 1);
        let Stmt::While { body: wb, .. } = &body(&p)[2] else { panic!() };
        assert!(matches!(&wb[1], Stmt::Assign { value: Expr::Max(_, _), .. }));
    }

    #[test]
    fn compound_conditions_not_converted() {
        let (_, c, r) = convert(
            "fn f(a: int, b: int) -> int {
                if (a < 0 && b < 0) { a = 0; }
                return a;
            }",
            Full,
        );
        assert_eq!(c, 0);
        assert_eq!(r, 1);
    }

    #[test]
    fn multi_statement_bodies_left_alone() {
        let (p, c, _) = convert(
            "fn f(a: int, b: int) -> int {
                if (a < 0) { a = 0; b = 1; }
                return a + b;
            }",
            Full,
        );
        assert_eq!(c, 0);
        assert!(matches!(&body(&p)[0], Stmt::If { .. }));
    }

    #[test]
    fn division_is_never_speculated() {
        let (_, c, r) = convert(
            "fn f(a: int, b: int) -> int {
                let x = 0;
                if (b > 0) { x = a / b; }
                return x;
            }",
            Full,
        );
        assert_eq!((c, r), (0, 1));
    }
}
