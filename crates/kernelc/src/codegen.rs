//! Code generation: AST → PowerPC-subset assembly text.
//!
//! The generator is deliberately simple and predictable — every
//! conditional branch in its output corresponds to a source-level
//! `if`/`while` (or a baseline-lowered `max()`), so the branch statistics
//! the simulator gathers map directly to source constructs.
//!
//! Register convention (a reduced PowerPC ELF ABI):
//!
//! * `r1` — stack pointer (grows down; the run-time harness initializes it);
//! * `r3`–`r10` — argument registers, `r3` also the return value;
//! * `r3`–`r12` — expression scratch;
//! * `r14`–`r31` — locals (params are copied in on entry); functions save
//!   and restore exactly the locals they use;
//! * `r0` — prologue/epilogue temporary.

use crate::ast::*;
use crate::{CompileError, Target};
use std::collections::HashMap;
use std::fmt::Write as _;

const FIRST_LOCAL: u8 = 14;
const MAX_LOCALS: usize = 18; // r14..r31
const SCRATCH: std::ops::Range<u8> = 3..13; // r3..r12

/// Emit assembly for a whole program.
///
/// A `__start` stub is emitted that calls `main` (if present) and traps;
/// kernels without `main` can still be entered at their own labels by the
/// harness.
///
/// # Errors
///
/// Returns [`CompileError`] on semantic errors (unknown variables, too
/// many locals/arguments, byte-array misuse, calls in nested expression
/// position).
pub fn emit(program: &Program, target: Target) -> Result<String, CompileError> {
    let mut out = String::new();
    let known: HashMap<&str, &Function> =
        program.functions.iter().map(|f| (f.name.as_str(), f)).collect();
    if known.contains_key("main") {
        out.push_str("__start:\n    bl main\n    trap\n");
    }
    for f in &program.functions {
        let mut cg = FnCodegen::new(f, target, &known)?;
        cg.run()?;
        out.push_str(&cg.text);
    }
    Ok(out)
}

struct FnCodegen<'a> {
    f: &'a Function,
    target: Target,
    known: &'a HashMap<&'a str, &'a Function>,
    text: String,
    locals: HashMap<String, (u8, Ty)>,
    free: Vec<u8>,
    label_n: usize,
    nonleaf: bool,
    frame: i32,
    lr_slot: i32,
    arg_slot: i32,
    n_saved: usize,
}

/// An expression result: the register holding it and whether the codegen
/// owns (and must free) it.
#[derive(Clone, Copy)]
struct Val {
    reg: u8,
    owned: bool,
}

impl<'a> FnCodegen<'a> {
    fn new(
        f: &'a Function,
        target: Target,
        known: &'a HashMap<&'a str, &'a Function>,
    ) -> Result<Self, CompileError> {
        if f.params.len() > 8 {
            return Err(CompileError {
                line: f.line,
                message: format!("function {} has more than 8 parameters", f.name),
            });
        }
        // Collect locals: params first, then every distinct `let`.
        let mut locals = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            if locals.insert(p.name.clone(), (FIRST_LOCAL + i as u8, p.ty)).is_some() {
                return Err(CompileError {
                    line: f.line,
                    message: format!("duplicate parameter {:?}", p.name),
                });
            }
        }
        let mut next = FIRST_LOCAL + f.params.len() as u8;
        collect_lets(&f.body, &mut |name, ty, line| {
            if !locals.contains_key(name) {
                if (next - FIRST_LOCAL) as usize >= MAX_LOCALS {
                    return Err(CompileError {
                        line,
                        message: format!("function {} uses more than {MAX_LOCALS} locals", f.name),
                    });
                }
                locals.insert(name.to_string(), (next, ty));
                next += 1;
            }
            Ok(())
        })?;
        let nonleaf = body_has_call(&f.body);
        let n_saved = (next - FIRST_LOCAL) as usize;
        let save_bytes = 4 * n_saved as i32;
        let lr_slot = save_bytes;
        let arg_slot = save_bytes + if nonleaf { 4 } else { 0 };
        let frame_raw = arg_slot + if nonleaf { 32 } else { 0 };
        let frame = (frame_raw + 7) & !7;
        Ok(FnCodegen {
            f,
            target,
            known,
            text: String::new(),
            locals,
            free: SCRATCH.rev().collect(),
            label_n: 0,
            nonleaf,
            frame,
            lr_slot,
            arg_slot,
            n_saved,
        })
    }

    fn err(&self, line: usize, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }

    fn ins(&mut self, s: impl AsRef<str>) {
        let _ = writeln!(self.text, "    {}", s.as_ref());
    }

    fn label(&mut self, l: &str) {
        let _ = writeln!(self.text, "{l}:");
    }

    fn fresh_label(&mut self, hint: &str) -> String {
        self.label_n += 1;
        format!(".L{}_{}{}", self.f.name, hint, self.label_n)
    }

    fn alloc(&mut self, line: usize) -> Result<u8, CompileError> {
        self.free
            .pop()
            .ok_or_else(|| self.err(line, "expression too complex (out of scratch registers)"))
    }

    fn release(&mut self, v: Val) {
        if v.owned {
            self.free.push(v.reg);
        }
    }

    fn run(&mut self) -> Result<(), CompileError> {
        self.label(&self.f.name.clone());
        if self.frame > 0 {
            self.ins(format!("addi r1, r1, -{}", self.frame));
        }
        for i in 0..self.n_saved {
            self.ins(format!("stw r{}, {}(r1)", FIRST_LOCAL as usize + i, 4 * i));
        }
        if self.nonleaf {
            self.ins("mflr r0");
            self.ins(format!("stw r0, {}(r1)", self.lr_slot));
        }
        for i in 0..self.f.params.len() {
            self.ins(format!("mr r{}, r{}", FIRST_LOCAL as usize + i, 3 + i));
        }
        let body = self.f.body.clone();
        self.block(&body)?;
        let ret = format!(".L{}_ret", self.f.name);
        self.label(&ret);
        if self.nonleaf {
            self.ins(format!("lwz r0, {}(r1)", self.lr_slot));
            self.ins("mtlr r0");
        }
        for i in 0..self.n_saved {
            self.ins(format!("lwz r{}, {}(r1)", FIRST_LOCAL as usize + i, 4 * i));
        }
        if self.frame > 0 {
            self.ins(format!("addi r1, r1, {}", self.frame));
        }
        self.ins("blr");
        Ok(())
    }

    fn local(&self, name: &str, line: usize) -> Result<(u8, Ty), CompileError> {
        self.locals
            .get(name)
            .copied()
            .ok_or_else(|| self.err(line, format!("unknown variable {name:?}")))
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let { name, value, line, .. } | Stmt::Assign { name, value, line } => {
                // Pointer-typed locals may be reassigned too (row swaps,
                // pointer arithmetic).
                let (reg, _ty) = self.local(name, *line)?;
                if let Expr::Call { .. } = value {
                    self.call(value, Some(reg), *line)?;
                } else {
                    let v = self.eval(value, *line)?;
                    if v.reg != reg {
                        self.ins(format!("mr r{}, r{}", reg, v.reg));
                    }
                    self.release(v);
                }
                Ok(())
            }
            Stmt::Store { array, index, value, line } => {
                let (base, ty) = self.local(array, *line)?;
                let v = self.eval(value, *line)?;
                match ty {
                    Ty::WordPtr => {
                        if let Expr::Lit(n) = index {
                            let disp = n * 4;
                            if (-32768..=32767).contains(&disp) {
                                self.ins(format!("stw r{}, {}(r{})", v.reg, disp, base));
                                self.release(v);
                                return Ok(());
                            }
                        }
                        let i = self.eval(index, *line)?;
                        let off = self.alloc(*line)?;
                        self.ins(format!("slwi r{off}, r{}, 2", i.reg));
                        self.ins(format!("stwx r{}, r{}, r{}", v.reg, base, off));
                        self.free.push(off);
                        self.release(i);
                    }
                    Ty::BytePtr => {
                        let i = self.eval(index, *line)?;
                        let addr = self.alloc(*line)?;
                        self.ins(format!("add r{addr}, r{}, r{}", base, i.reg));
                        self.ins(format!("stb r{}, 0(r{addr})", v.reg));
                        self.free.push(addr);
                        self.release(i);
                    }
                    Ty::Int => return Err(self.err(*line, format!("{array:?} is not an array"))),
                }
                self.release(v);
                Ok(())
            }
            Stmt::If { cond, then_block, else_block, .. } => {
                let else_l = self.fresh_label("else");
                let end_l = self.fresh_label("endif");
                let target = if else_block.is_empty() { &end_l } else { &else_l };
                self.branch_cond(cond, target, false)?;
                self.block(then_block)?;
                if !else_block.is_empty() {
                    self.ins(format!("b {end_l}"));
                    self.label(&else_l);
                    self.block(else_block)?;
                }
                self.label(&end_l);
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                // Bottom-tested loop: one taken branch per iteration.
                let test_l = self.fresh_label("test");
                let body_l = self.fresh_label("body");
                self.ins(format!("b {test_l}"));
                self.label(&body_l);
                self.block(body)?;
                self.label(&test_l);
                self.branch_cond(cond, &body_l, true)?;
                Ok(())
            }
            Stmt::Return { value, line } => {
                if let Expr::Call { name, .. } = value {
                    // Tail position call: the result is already in r3.
                    let returns = self.known.get(name.as_str()).is_some_and(|f| f.returns_value);
                    self.call(value, None, *line)?;
                    if !returns {
                        return Err(self.err(*line, format!("{name} returns no value")));
                    }
                } else {
                    let v = self.eval(value, *line)?;
                    if v.reg != 3 {
                        self.ins(format!("mr r3, r{}", v.reg));
                    }
                    self.release(v);
                }
                self.ins(format!("b .L{}_ret", self.f.name));
                Ok(())
            }
            Stmt::CallStmt { call, line } => {
                self.call(call, None, *line)?;
                Ok(())
            }
        }
    }

    /// Compile a call; the result (if wanted) lands in local register
    /// `dest`. Calls are only legal in statement position, so no scratch
    /// registers are live here.
    fn call(&mut self, call: &Expr, dest: Option<u8>, line: usize) -> Result<(), CompileError> {
        let Expr::Call { name, args } = call else {
            return Err(self.err(line, "internal: call() on non-call"));
        };
        let callee = self
            .known
            .get(name.as_str())
            .ok_or_else(|| self.err(line, format!("unknown function {name:?}")))?;
        if callee.params.len() != args.len() {
            return Err(self.err(
                line,
                format!("{name} expects {} arguments, got {}", callee.params.len(), args.len()),
            ));
        }
        if args.len() > 8 {
            return Err(self.err(line, "more than 8 call arguments"));
        }
        // Stage arguments through the frame to avoid clobbering argument
        // registers while later arguments are evaluated.
        for (i, a) in args.iter().enumerate() {
            if a.has_call() {
                return Err(self.err(line, "nested calls are not supported"));
            }
            let v = self.eval(a, line)?;
            self.ins(format!("stw r{}, {}(r1)", v.reg, self.arg_slot + 4 * i as i32));
            self.release(v);
        }
        for i in 0..args.len() {
            self.ins(format!("lwz r{}, {}(r1)", 3 + i, self.arg_slot + 4 * i as i32));
        }
        self.ins(format!("bl {name}"));
        if let Some(d) = dest {
            if !callee.returns_value {
                return Err(self.err(line, format!("{name} returns no value")));
            }
            self.ins(format!("mr r{d}, r3"));
        }
        Ok(())
    }

    /// Evaluate an integer expression; the result register is returned.
    fn eval(&mut self, e: &Expr, line: usize) -> Result<Val, CompileError> {
        match e {
            Expr::Lit(v) => {
                let reg = self.alloc(line)?;
                self.load_imm(reg, *v, line)?;
                Ok(Val { reg, owned: true })
            }
            Expr::Var(name) => {
                let (reg, _) = self.local(name, line)?;
                Ok(Val { reg, owned: false })
            }
            Expr::Index { array, index } => {
                let (base, ty) = self.local(array, line)?;
                let dest = self.alloc(line)?;
                match ty {
                    Ty::WordPtr => {
                        if let Expr::Lit(n) = index.as_ref() {
                            let disp = n * 4;
                            if (-32768..=32767).contains(&disp) {
                                self.ins(format!("lwz r{dest}, {disp}(r{base})"));
                                return Ok(Val { reg: dest, owned: true });
                            }
                        }
                        let i = self.eval(index, line)?;
                        self.ins(format!("slwi r{dest}, r{}, 2", i.reg));
                        self.release(i);
                        self.ins(format!("lwzx r{dest}, r{base}, r{dest}"));
                    }
                    Ty::BytePtr => {
                        if let Expr::Lit(n) = index.as_ref() {
                            if (-32768..=32767).contains(n) {
                                self.ins(format!("lbz r{dest}, {n}(r{base})"));
                                return Ok(Val { reg: dest, owned: true });
                            }
                        }
                        let i = self.eval(index, line)?;
                        self.ins(format!("lbzx r{dest}, r{base}, r{}", i.reg));
                        self.release(i);
                    }
                    Ty::Int => return Err(self.err(line, format!("{array:?} is not an array"))),
                }
                Ok(Val { reg: dest, owned: true })
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner, line)?;
                let dest = if v.owned { v.reg } else { self.alloc(line)? };
                self.ins(format!("neg r{dest}, r{}", v.reg));
                Ok(Val { reg: dest, owned: true })
            }
            Expr::Bin { op, lhs, rhs } => self.bin(*op, lhs, rhs, line),
            Expr::Max(a, b) => self.minmax(a, b, true, line),
            Expr::Min(a, b) => self.minmax(a, b, false, line),
            Expr::Select { cond, then_val, else_val } => {
                self.select(cond, then_val, else_val, line)
            }
            Expr::Call { .. } => {
                Err(self.err(line, "calls are only allowed as a whole statement (`x = f(...);`)"))
            }
        }
    }

    fn load_imm(&mut self, reg: u8, v: i64, line: usize) -> Result<(), CompileError> {
        if !(-(1i64 << 31)..(1i64 << 31)).contains(&v) {
            return Err(self.err(line, format!("literal {v} exceeds 32 bits")));
        }
        let v = v as i32;
        if (-32768..=32767).contains(&v) {
            self.ins(format!("li r{reg}, {v}"));
        } else {
            let hi = (v as u32 >> 16) as i32;
            let lo = v as u32 & 0xFFFF;
            // lis + ori builds any 32-bit constant.
            let hi = if hi >= 0x8000 { hi - 0x10000 } else { hi };
            self.ins(format!("lis r{reg}, {hi}"));
            if lo != 0 {
                self.ins(format!("ori r{reg}, r{reg}, {lo}"));
            }
        }
        Ok(())
    }

    fn bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: usize) -> Result<Val, CompileError> {
        // Immediate forms.
        if let Expr::Lit(n) = rhs {
            let n = *n;
            match op {
                BinOp::Add if (-32768..=32767).contains(&n) => {
                    let a = self.eval(lhs, line)?;
                    let dest = if a.owned { a.reg } else { self.alloc(line)? };
                    self.ins(format!("addi r{dest}, r{}, {n}", a.reg));
                    return Ok(Val { reg: dest, owned: true });
                }
                BinOp::Sub if (-32767..=32768).contains(&n) => {
                    let a = self.eval(lhs, line)?;
                    let dest = if a.owned { a.reg } else { self.alloc(line)? };
                    self.ins(format!("addi r{dest}, r{}, {}", a.reg, -n));
                    return Ok(Val { reg: dest, owned: true });
                }
                BinOp::Shl if (0..32).contains(&n) => {
                    let a = self.eval(lhs, line)?;
                    let dest = if a.owned { a.reg } else { self.alloc(line)? };
                    self.ins(format!("slwi r{dest}, r{}, {n}", a.reg));
                    return Ok(Val { reg: dest, owned: true });
                }
                BinOp::Shr if (0..32).contains(&n) => {
                    let a = self.eval(lhs, line)?;
                    let dest = if a.owned { a.reg } else { self.alloc(line)? };
                    self.ins(format!("srawi r{dest}, r{}, {n}", a.reg));
                    return Ok(Val { reg: dest, owned: true });
                }
                BinOp::Mul if n > 0 && (n as u64).is_power_of_two() && n < (1 << 31) => {
                    let sh = (n as u64).trailing_zeros();
                    let a = self.eval(lhs, line)?;
                    let dest = if a.owned { a.reg } else { self.alloc(line)? };
                    self.ins(format!("slwi r{dest}, r{}, {sh}", a.reg));
                    return Ok(Val { reg: dest, owned: true });
                }
                _ => {}
            }
        }
        let a = self.eval(lhs, line)?;
        let b = self.eval(rhs, line)?;
        let dest = if a.owned {
            a.reg
        } else if b.owned {
            b.reg
        } else {
            self.alloc(line)?
        };
        let mn = match op {
            BinOp::Add => "add",
            BinOp::Sub => "subf",
            BinOp::Mul => "mullw",
            BinOp::Div => "divw",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "slw",
            BinOp::Shr => "sraw",
        };
        match op {
            // subf rt, ra, rb computes rb - ra.
            BinOp::Sub => self.ins(format!("subf r{dest}, r{}, r{}", b.reg, a.reg)),
            _ => self.ins(format!("{mn} r{dest}, r{}, r{}", a.reg, b.reg)),
        }
        // Free whichever owned register we did not reuse.
        if a.owned && dest != a.reg {
            self.free.push(a.reg);
        }
        if b.owned && dest != b.reg {
            self.free.push(b.reg);
        }
        Ok(Val { reg: dest, owned: true })
    }

    fn minmax(
        &mut self,
        a: &Expr,
        b: &Expr,
        is_max: bool,
        line: usize,
    ) -> Result<Val, CompileError> {
        let va = self.eval(a, line)?;
        let vb = self.eval(b, line)?;
        let dest = self.alloc(line)?;
        match (self.target, is_max) {
            (Target::Max, true) => {
                self.ins(format!("maxw r{dest}, r{}, r{}", va.reg, vb.reg));
            }
            (Target::Max, false) | (Target::Isel, _) => {
                // cmp + isel: max -> gt bit, min -> lt bit.
                self.ins(format!("cmpw cr0, r{}, r{}", va.reg, vb.reg));
                let bit = if is_max { "4*cr0+gt" } else { "4*cr0+lt" };
                self.ins(format!("isel r{dest}, r{}, r{}, {bit}", va.reg, vb.reg));
            }
            (Target::Baseline, _) => {
                // Branchy lowering: the value-dependent branch the paper
                // measures.
                let skip = self.fresh_label("mm");
                self.ins(format!("mr r{dest}, r{}", va.reg));
                self.ins(format!("cmpw cr0, r{}, r{dest}", vb.reg));
                let cond = if is_max { "ble" } else { "bge" };
                self.ins(format!("{cond} cr0, {skip}"));
                self.ins(format!("mr r{dest}, r{}", vb.reg));
                self.label(&skip);
            }
        }
        self.release(va);
        self.release(vb);
        Ok(Val { reg: dest, owned: true })
    }

    fn select(
        &mut self,
        cond: &Cond,
        then_val: &Expr,
        else_val: &Expr,
        line: usize,
    ) -> Result<Val, CompileError> {
        let Cond::Cmp { op, lhs, rhs } = cond else {
            return Err(self.err(line, "internal: select on compound condition"));
        };
        if self.target == Target::Baseline {
            return Err(self.err(line, "internal: select emitted for baseline target"));
        }
        let tv = self.eval(then_val, line)?;
        let ev = self.eval(else_val, line)?;
        let cl = self.eval(lhs, line)?;
        let cr = self.eval(rhs, line)?;
        self.ins(format!("cmpw cr0, r{}, r{}", cl.reg, cr.reg));
        self.release(cl);
        self.release(cr);
        let dest = self.alloc(line)?;
        // isel picks RA when the bit is true; express <=/>=/!= by swapping.
        let (bit, t, e) = match op {
            CmpOp::Lt => ("lt", tv.reg, ev.reg),
            CmpOp::Gt => ("gt", tv.reg, ev.reg),
            CmpOp::Eq => ("eq", tv.reg, ev.reg),
            CmpOp::Ge => ("lt", ev.reg, tv.reg),
            CmpOp::Le => ("gt", ev.reg, tv.reg),
            CmpOp::Ne => ("eq", ev.reg, tv.reg),
        };
        self.ins(format!("isel r{dest}, r{t}, r{e}, 4*cr0+{bit}"));
        self.release(tv);
        self.release(ev);
        Ok(Val { reg: dest, owned: true })
    }

    /// Emit branches so control transfers to `target` iff `cond` evaluates
    /// to `when` (short-circuit for `&&`/`||`).
    fn branch_cond(&mut self, cond: &Cond, target: &str, when: bool) -> Result<(), CompileError> {
        match cond {
            Cond::Not(inner) => self.branch_cond(inner, target, !when),
            Cond::And(a, b) => {
                if when {
                    let skip = self.fresh_label("and");
                    self.branch_cond(a, &skip, false)?;
                    self.branch_cond(b, target, true)?;
                    self.label(&skip);
                } else {
                    self.branch_cond(a, target, false)?;
                    self.branch_cond(b, target, false)?;
                }
                Ok(())
            }
            Cond::Or(a, b) => {
                if when {
                    self.branch_cond(a, target, true)?;
                    self.branch_cond(b, target, true)?;
                } else {
                    let skip = self.fresh_label("or");
                    self.branch_cond(a, &skip, true)?;
                    self.branch_cond(b, target, false)?;
                    self.label(&skip);
                }
                Ok(())
            }
            Cond::Cmp { op, lhs, rhs } => {
                let line = 0;
                let a = self.eval(lhs, line)?;
                // cmpwi when the rhs is a small literal.
                let use_imm = matches!(rhs, Expr::Lit(n) if (-32768..=32767).contains(n));
                if use_imm {
                    let Expr::Lit(n) = rhs else { unreachable!() };
                    self.ins(format!("cmpwi cr0, r{}, {n}", a.reg));
                } else {
                    let b = self.eval(rhs, line)?;
                    self.ins(format!("cmpw cr0, r{}, r{}", a.reg, b.reg));
                    self.release(b);
                }
                self.release(a);
                let mnemonic = match (op, when) {
                    (CmpOp::Eq, true) | (CmpOp::Ne, false) => "beq",
                    (CmpOp::Ne, true) | (CmpOp::Eq, false) => "bne",
                    (CmpOp::Lt, true) | (CmpOp::Ge, false) => "blt",
                    (CmpOp::Ge, true) | (CmpOp::Lt, false) => "bge",
                    (CmpOp::Gt, true) | (CmpOp::Le, false) => "bgt",
                    (CmpOp::Le, true) | (CmpOp::Gt, false) => "ble",
                };
                self.ins(format!("{mnemonic} cr0, {target}"));
                Ok(())
            }
        }
    }
}

fn collect_lets(
    stmts: &[Stmt],
    f: &mut impl FnMut(&str, Ty, usize) -> Result<(), CompileError>,
) -> Result<(), CompileError> {
    for s in stmts {
        match s {
            Stmt::Let { name, ty, line, .. } => f(name, *ty, *line)?,
            Stmt::If { then_block, else_block, .. } => {
                collect_lets(then_block, f)?;
                collect_lets(else_block, f)?;
            }
            Stmt::While { body, .. } => collect_lets(body, f)?,
            _ => {}
        }
    }
    Ok(())
}

fn body_has_call(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Let { value, .. } | Stmt::Assign { value, .. } => value.has_call(),
        Stmt::Store { index, value, .. } => index.has_call() || value.has_call(),
        Stmt::If { then_block, else_block, .. } => {
            body_has_call(then_block) || body_has_call(else_block)
        }
        Stmt::While { body, .. } => body_has_call(body),
        Stmt::Return { value, .. } => value.has_call(),
        Stmt::CallStmt { .. } => true,
    })
}

#[cfg(test)]
mod tests {
    use crate::{compile, Options};
    use power5_sim_test_support::run_main;

    /// Minimal in-crate harness: assemble, load, run functionally, return
    /// `main`'s result (r3 at trap).
    mod power5_sim_test_support {
        pub fn run_main(asm: &str, args: &[u32]) -> i32 {
            let prog = ppc_asm::assemble(asm, 0x1000).expect("assembles");
            let mut mem = ppc_isa::Memory::new(1 << 20);
            mem.write_bytes(0x1000, &prog.bytes).unwrap();
            let mut cpu = ppc_isa::CpuState::new(prog.symbols["__start"]);
            cpu.gpr[1] = (1 << 20) - 64; // stack top
            for (i, &a) in args.iter().enumerate() {
                cpu.gpr[3 + i] = a;
            }
            for _ in 0..10_000_000u64 {
                let word = mem.load_u32(cpu.pc).unwrap();
                let insn = ppc_isa::decode(word)
                    .unwrap_or_else(|e| panic!("bad insn at {:#x}: {e}", cpu.pc));
                let ev = ppc_isa::step(&mut cpu, &mut mem, &insn).unwrap();
                if ev.halted {
                    return cpu.gpr[3] as i32;
                }
            }
            panic!("did not halt");
        }

        /// Like `run_main` but with memory pre-populated.
        pub fn run_main_mem(asm: &str, args: &[u32], data: &[(u32, Vec<i32>)]) -> i32 {
            let prog = ppc_asm::assemble(asm, 0x1000).expect("assembles");
            let mut mem = ppc_isa::Memory::new(1 << 20);
            mem.write_bytes(0x1000, &prog.bytes).unwrap();
            for (addr, words) in data {
                mem.write_i32s(*addr, words).unwrap();
            }
            let mut cpu = ppc_isa::CpuState::new(prog.symbols["__start"]);
            cpu.gpr[1] = (1 << 20) - 64;
            for (i, &a) in args.iter().enumerate() {
                cpu.gpr[3 + i] = a;
            }
            for _ in 0..10_000_000u64 {
                let word = mem.load_u32(cpu.pc).unwrap();
                let insn = ppc_isa::decode(word).unwrap();
                let ev = ppc_isa::step(&mut cpu, &mut mem, &insn).unwrap();
                if ev.halted {
                    return cpu.gpr[3] as i32;
                }
            }
            panic!("did not halt");
        }
    }

    fn all_options() -> Vec<Options> {
        vec![
            Options::baseline(),
            Options::hand_max(),
            Options::hand_isel(),
            Options::compiler_max(),
            Options::compiler_isel(),
            Options::combination(),
        ]
    }

    #[test]
    fn arithmetic_basics() {
        let src = "fn main(a: int, b: int) -> int { return (a + b) * 3 - a / b; }";
        for o in all_options() {
            let c = compile(src, &o).unwrap();
            assert_eq!(run_main(&c.asm, &[10, 4]), (10 + 4) * 3 - 10 / 4, "{o:?}");
        }
    }

    #[test]
    fn negative_numbers_and_neg() {
        let src = "fn main(a: int) -> int { return -a + 100; }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[(-5i32) as u32]), 105);
        assert_eq!(run_main(&c.asm, &[7]), 93);
    }

    #[test]
    fn big_literals() {
        let src = "fn main() -> int { return 0x123456 + 1; }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[]), 0x123457);
    }

    #[test]
    fn while_loop_sums() {
        let src = "
            fn main(n: int) -> int {
                let s = 0;
                let i = 1;
                while (i <= n) { s = s + i; i = i + 1; }
                return s;
            }";
        for o in all_options() {
            let c = compile(src, &o).unwrap();
            assert_eq!(run_main(&c.asm, &[100]), 5050, "{o:?}");
        }
    }

    #[test]
    fn if_else_works_in_all_modes() {
        let src = "
            fn main(a: int, b: int) -> int {
                let r = 0;
                if (a < b) { r = 1; } else { r = 2; }
                return r;
            }";
        for o in all_options() {
            let c = compile(src, &o).unwrap();
            assert_eq!(run_main(&c.asm, &[1, 5]), 1, "{o:?}");
            assert_eq!(run_main(&c.asm, &[5, 1]), 2, "{o:?}");
            assert_eq!(run_main(&c.asm, &[5, 5]), 2, "{o:?}");
        }
    }

    #[test]
    fn max_intrinsic_all_lowerings() {
        let src = "fn main(a: int, b: int) -> int { return max(a, min(b, 50)); }";
        for o in all_options() {
            let c = compile(src, &o).unwrap();
            assert_eq!(run_main(&c.asm, &[10, 30]), 30, "{o:?}");
            assert_eq!(run_main(&c.asm, &[10, 99]), 50, "{o:?}");
            assert_eq!(run_main(&c.asm, &[77, 30]), 77, "{o:?}");
            assert_eq!(run_main(&c.asm, &[(-3i32) as u32, (-9i32) as u32]), -3, "{o:?} signed");
        }
    }

    #[test]
    fn hand_max_emits_maxw_hand_isel_emits_isel() {
        let src = "fn main(a: int, b: int) -> int { return max(a, b); }";
        let m = compile(src, &Options::hand_max()).unwrap();
        assert!(m.asm.contains("maxw"));
        assert!(!m.asm.contains("isel"));
        let i = compile(src, &Options::hand_isel()).unwrap();
        assert!(i.asm.contains("isel"));
        assert!(!i.asm.contains("maxw"));
        let b = compile(src, &Options::baseline()).unwrap();
        assert!(!b.asm.contains("maxw") && !b.asm.contains("isel"));
    }

    #[test]
    fn compiler_converts_hammocks_semantics_preserved() {
        let src = "
            fn main(a: int, b: int, d: int) -> int {
                let best = 0;
                if (best < a) { best = a; }
                if (best < b) { best = b; }
                let adj = d;
                if (adj < 0) { adj = 0; }
                return best + adj;
            }";
        let branchy = compile(src, &Options::baseline()).unwrap();
        let conv = compile(src, &Options::compiler_max()).unwrap();
        assert_eq!(conv.converted_hammocks, 3);
        for (a, b, d) in [(3, 9, 5), (9, 3, -5), (0, 0, 0), (-4, -2, -1)] {
            let args = [a as u32, b as u32, d as u32];
            assert_eq!(run_main(&branchy.asm, &args), run_main(&conv.asm, &args));
        }
    }

    #[test]
    fn word_and_byte_arrays() {
        let src = "
            fn main(v: ptr, s: bptr, n: int) -> int {
                let i = 0;
                let acc = 0;
                while (i < n) {
                    acc = acc + v[i] * s[i];
                    i = i + 1;
                }
                v[0] = acc;
                return acc;
            }";
        let c = compile(src, &Options::baseline()).unwrap();
        // words at 0x8000: [2, 3, 4]; bytes at 0x9000: we write as words
        // 0x030201 little-endian gives bytes 1,2,3.
        let r = power5_sim_test_support::run_main_mem(
            &c.asm,
            &[0x8000, 0x9000, 3],
            &[(0x8000, vec![2, 3, 4]), (0x9000, vec![0x030201])],
        );
        assert_eq!(r, 2 + 3 * 2 + 4 * 3);
    }

    #[test]
    fn function_calls_and_stack() {
        let src = "
            fn square(x: int) -> int { return x * x; }
            fn sumsq(a: int, b: int) -> int {
                let p = square(a);
                let q = square(b);
                return p + q;
            }
            fn main(a: int, b: int) -> int { return sumsq(a, b); }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[3, 4]), 25);
    }

    #[test]
    fn callee_saved_locals_survive_calls() {
        let src = "
            fn clobber(x: int) -> int {
                let a = x + 1;
                let b = a + 1;
                let d = b + 1;
                return d;
            }
            fn main(n: int) -> int {
                let keep = n * 7;
                let r = clobber(n);
                return keep + r;
            }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[5]), 35 + 8);
    }

    #[test]
    fn compound_conditions_short_circuit() {
        let src = "
            fn main(a: int, b: int) -> int {
                let r = 0;
                while (a > 0 && b > 0) { a = a - 1; b = b - 2; r = r + 1; }
                if (a == 0 || b <= 0) { r = r + 100; }
                return r;
            }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[10, 6]), 3 + 100);
    }

    #[test]
    fn shifts_and_bitwise() {
        let src = "fn main(a: int) -> int { return ((a << 3) | 5) & 0xFF ^ (a >> 1); }";
        let c = compile(src, &Options::baseline()).unwrap();
        let a = 37i32;
        assert_eq!(run_main(&c.asm, &[a as u32]), ((a << 3) | 5) & 0xFF ^ (a >> 1));
    }

    #[test]
    fn select_semantics_match_branches() {
        let src = "
            fn main(a: int, b: int) -> int {
                let x = 0;
                if (a <= b) { x = a - b; } else { x = b - a; }
                return x;
            }";
        let branchy = compile(src, &Options::baseline()).unwrap();
        let isel = compile(src, &Options::compiler_isel()).unwrap();
        assert_eq!(isel.converted_hammocks, 1);
        assert!(isel.asm.contains("isel"));
        for (a, b) in [(3, 9), (9, 3), (4, 4), (-5, 5)] {
            let args = [a as u32, b as u32];
            assert_eq!(run_main(&branchy.asm, &args), run_main(&isel.asm, &args));
        }
    }

    #[test]
    fn errors_unknown_var_and_function() {
        let e = compile("fn main() -> int { return zz; }", &Options::baseline()).unwrap_err();
        assert!(e.message.contains("zz"));
        let e = compile("fn main() -> int { return g(1); }", &Options::baseline()).unwrap_err();
        assert!(e.message.contains("unknown function"));
        let e = compile(
            "fn g(x: int) -> int { return x; }
             fn main() -> int { return g(1) + 1; }",
            &Options::baseline(),
        )
        .unwrap_err();
        assert!(e.message.contains("statement"));
    }

    #[test]
    fn error_too_many_locals() {
        let mut src = String::from("fn main() -> int {\n");
        for i in 0..20 {
            src.push_str(&format!("let x{i} = {i};\n"));
        }
        src.push_str("return x0; }\n");
        let e = compile(&src, &Options::baseline()).unwrap_err();
        assert!(e.message.contains("locals"));
    }

    #[test]
    fn return_mid_function() {
        let src = "
            fn main(a: int) -> int {
                if (a < 0) { return -1; }
                return 1;
            }";
        let c = compile(src, &Options::baseline()).unwrap();
        assert_eq!(run_main(&c.asm, &[(-3i32) as u32]), -1);
        assert_eq!(run_main(&c.asm, &[3]), 1);
    }
}
