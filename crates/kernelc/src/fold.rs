//! Constant folding and trivial dead-code elimination.
//!
//! Runs after if-conversion and before code generation. Arithmetic is
//! folded with the target's 32-bit wrapping semantics so folding never
//! changes results. Statement-level folding removes `if`/`while` whose
//! conditions are compile-time constant (the address arithmetic the
//! kernel templates bake in produces plenty of foldable subtrees).

use crate::ast::*;

/// Fold a whole program in place. Returns the number of expression nodes
/// and statements eliminated (for tests and diagnostics).
pub fn run(program: &mut Program) -> usize {
    let mut removed = 0;
    for f in &mut program.functions {
        fold_block(&mut f.body, &mut removed);
    }
    removed
}

fn lit(e: &Expr) -> Option<i32> {
    match e {
        Expr::Lit(v) => Some(*v as i32),
        _ => None,
    }
}

fn fold_expr(e: &mut Expr, removed: &mut usize) {
    // Fold children first.
    match e {
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::Index { index, .. } => fold_expr(index, removed),
        Expr::Neg(inner) => fold_expr(inner, removed),
        Expr::Bin { lhs, rhs, .. } => {
            fold_expr(lhs, removed);
            fold_expr(rhs, removed);
        }
        Expr::Max(a, b) | Expr::Min(a, b) => {
            fold_expr(a, removed);
            fold_expr(b, removed);
        }
        Expr::Call { args, .. } => {
            for a in args {
                fold_expr(a, removed);
            }
        }
        Expr::Select { cond, then_val, else_val } => {
            fold_cond(cond, removed);
            fold_expr(then_val, removed);
            fold_expr(else_val, removed);
        }
    }
    // Then fold this node.
    let replacement = match e {
        Expr::Neg(inner) => lit(inner).map(|v| Expr::Lit(v.wrapping_neg() as i64)),
        Expr::Bin { op, lhs, rhs } => match (lit(lhs), lit(rhs)) {
            (Some(a), Some(b)) => {
                let v = match op {
                    BinOp::Add => Some(a.wrapping_add(b)),
                    BinOp::Sub => Some(a.wrapping_sub(b)),
                    BinOp::Mul => Some(a.wrapping_mul(b)),
                    // Fold division only when the target's semantics are
                    // unambiguous (the executor returns 0 for the
                    // undefined cases; keep those visible at runtime).
                    BinOp::Div if b != 0 && !(a == i32::MIN && b == -1) => Some(a / b),
                    BinOp::Div => None,
                    BinOp::And => Some(a & b),
                    BinOp::Or => Some(a | b),
                    BinOp::Xor => Some(a ^ b),
                    BinOp::Shl if (0..32).contains(&b) => Some(((a as u32) << b) as i32),
                    BinOp::Shr if (0..32).contains(&b) => Some(a >> b),
                    _ => None,
                };
                v.map(|v| Expr::Lit(v as i64))
            }
            // Algebraic identities that cannot change faults or values.
            (_, Some(0))
                if matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Shl | BinOp::Shr | BinOp::Or | BinOp::Xor
                ) =>
            {
                Some((**lhs).clone())
            }
            (Some(0), _) if matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor) => {
                Some((**rhs).clone())
            }
            (_, Some(1)) if matches!(op, BinOp::Mul | BinOp::Div) => Some((**lhs).clone()),
            (Some(1), _) if matches!(op, BinOp::Mul) => Some((**rhs).clone()),
            _ => None,
        },
        Expr::Max(a, b) => match (lit(a), lit(b)) {
            (Some(x), Some(y)) => Some(Expr::Lit(x.max(y) as i64)),
            _ => None,
        },
        Expr::Min(a, b) => match (lit(a), lit(b)) {
            (Some(x), Some(y)) => Some(Expr::Lit(x.min(y) as i64)),
            _ => None,
        },
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
        *removed += 1;
    }
}

fn fold_cond(c: &mut Cond, removed: &mut usize) {
    match c {
        Cond::Cmp { lhs, rhs, .. } => {
            fold_expr(lhs, removed);
            fold_expr(rhs, removed);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            fold_cond(a, removed);
            fold_cond(b, removed);
        }
        Cond::Not(inner) => fold_cond(inner, removed),
    }
}

/// Evaluate a condition if it is compile-time constant.
fn const_cond(c: &Cond) -> Option<bool> {
    match c {
        Cond::Cmp { op, lhs, rhs } => {
            let (a, b) = (lit(lhs)?, lit(rhs)?);
            Some(match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            })
        }
        Cond::And(a, b) => match (const_cond(a), const_cond(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Cond::Or(a, b) => match (const_cond(a), const_cond(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Cond::Not(inner) => const_cond(inner).map(|v| !v),
    }
}

fn fold_block(block: &mut Vec<Stmt>, removed: &mut usize) {
    let mut out = Vec::with_capacity(block.len());
    for mut stmt in block.drain(..) {
        match &mut stmt {
            Stmt::Let { value, .. } | Stmt::Assign { value, .. } => fold_expr(value, removed),
            Stmt::Store { index, value, .. } => {
                fold_expr(index, removed);
                fold_expr(value, removed);
            }
            Stmt::Return { value, .. } => fold_expr(value, removed),
            Stmt::CallStmt { call, .. } => fold_expr(call, removed),
            Stmt::If { cond, then_block, else_block, .. } => {
                fold_cond(cond, removed);
                fold_block(then_block, removed);
                fold_block(else_block, removed);
            }
            Stmt::While { cond, body, .. } => {
                fold_cond(cond, removed);
                fold_block(body, removed);
            }
        }
        // Statement-level elimination.
        match stmt {
            Stmt::If { ref cond, ref mut then_block, ref mut else_block, .. } => {
                match const_cond(cond) {
                    Some(true) => {
                        *removed += 1;
                        out.append(then_block);
                    }
                    Some(false) => {
                        *removed += 1;
                        out.append(else_block);
                    }
                    None => out.push(stmt),
                }
            }
            Stmt::While { ref cond, .. } => {
                if const_cond(cond) == Some(false) {
                    // The body never runs (note: `let` declarations inside
                    // still exist at function scope in this language, but
                    // an unexecuted body cannot define values anyone can
                    // legally read before another assignment).
                    *removed += 1;
                } else {
                    out.push(stmt);
                }
            }
            other => out.push(other),
        }
    }
    *block = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn folded(src: &str) -> (Program, usize) {
        let mut p = parse(&lex(src).unwrap()).unwrap();
        let n = run(&mut p);
        (p, n)
    }

    #[test]
    fn arithmetic_folds_to_literals() {
        let (p, n) = folded("fn f() -> int { return (2 + 3) * 4 - 10 / 2; }");
        assert!(n >= 3);
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        assert_eq!(value, &Expr::Lit(15));
    }

    #[test]
    fn wrapping_matches_runtime_semantics() {
        let (p, _) = folded("fn f() -> int { return 2147483647 + 1; }");
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        assert_eq!(value, &Expr::Lit(i32::MIN as i64));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (p, n) = folded("fn f() -> int { return 5 / 0; }");
        assert_eq!(n, 0);
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(value, Expr::Bin { op: BinOp::Div, .. }));
    }

    #[test]
    fn identities_simplify() {
        let (p, n) = folded("fn f(x: int) -> int { return (x + 0) * 1 + (0 + x); }");
        assert!(n >= 3);
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        // x + x after simplification.
        assert_eq!(
            value,
            &Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Var("x".into())),
                rhs: Box::new(Expr::Var("x".into())),
            }
        );
    }

    #[test]
    fn max_min_fold() {
        let (p, _) = folded("fn f() -> int { return max(3, min(9, 7)); }");
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else { panic!() };
        assert_eq!(value, &Expr::Lit(7));
    }

    #[test]
    fn constant_if_splices_taken_branch() {
        let (p, _) = folded(
            "fn f(x: int) -> int {
                if (1 < 2) { x = x + 1; } else { x = x - 1; }
                return x;
            }",
        );
        assert_eq!(p.functions[0].body.len(), 2);
        assert!(matches!(&p.functions[0].body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn dead_while_removed() {
        let (p, n) = folded("fn f(x: int) -> int { while (3 > 4) { x = 0 - 1; } return x; }");
        assert!(n >= 1);
        assert_eq!(p.functions[0].body.len(), 1);
    }

    #[test]
    fn folding_reduces_emitted_instructions() {
        use crate::{compile, Options};
        let src = "fn main() -> int { return 12 * 4 + (100 - 36) / 2; }";
        let c = compile(src, &Options::baseline()).unwrap();
        // One li + return plumbing; certainly no mullw/divw.
        assert!(!c.asm.contains("mullw"));
        assert!(!c.asm.contains("divw"));
        assert!(c.asm.contains("li r"));
    }

    #[test]
    fn nested_conditions_fold() {
        let (p, _) = folded(
            "fn f(x: int) -> int {
                if (1 == 1 && !(2 > 3)) { x = 7; }
                return x;
            }",
        );
        let Stmt::Assign { value, .. } = &p.functions[0].body[0] else {
            panic!("{:?}", p.functions[0].body[0])
        };
        assert_eq!(value, &Expr::Lit(7));
    }
}
