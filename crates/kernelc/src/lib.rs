//! `kernelc` — an optimizing compiler for a small C-like kernel language,
//! targeting the PowerPC-subset ISA.
//!
//! The paper modifies gcc 4.1.1's if-conversion pass to emit the proposed
//! `max` and `isel` instructions, and compares *hand-inserted* predication
//! against *compiler-generated* predication (Figure 3). This crate plays
//! the role of that modified gcc:
//!
//! * the **language** ([`ast`], [`parser`]) is a small C subset with `int`
//!   scalars, word/byte arrays, `if`/`while`/ternary-free control flow,
//!   function calls, and an explicit `max(a, b)` intrinsic that models the
//!   paper's hand-inserted predication;
//! * the **if-conversion pass** ([`ifconv`]) rewrites control-flow
//!   hammocks (`if (c) x = e;`, `if (c) x = e1; else x = e2;`, and the
//!   `if (a < b) a = b;` max pattern) into predicated selects, with the
//!   same conservative safety analysis the paper describes: a load may be
//!   executed unconditionally only if the *same* access provably executed
//!   earlier with no intervening (potentially aliased) store — otherwise
//!   the hammock is left intact, which is exactly why the compiler loses
//!   to hand insertion on Clustalw and Hmmer;
//! * the **code generator** ([`codegen`]) emits textual PowerPC-subset
//!   assembly (assembled by [`ppc_asm`]) and lowers `max`/select according
//!   to [`Target`]: a fused `maxw`, a `cmp`+`isel` pair (one instruction
//!   longer — the paper's explanation for isel's smaller win), or a
//!   compare-and-branch sequence on the baseline ISA.
//!
//! # Example
//!
//! ```
//! use kernelc::{compile, Options, Target};
//!
//! let src = "
//! fn main(a: int, b: int) -> int {
//!     let best = 0;
//!     if (best < a) { best = a; }
//!     if (best < b) { best = b; }
//!     return best;
//! }
//! ";
//! // Baseline: the hammocks stay as compare-and-branch.
//! let base = compile(src, &Options::baseline())?;
//! assert!(!base.asm.contains("maxw"));
//! // Compiler if-conversion with the max instruction: branchless.
//! let conv = compile(src, &Options::compiler_max())?;
//! assert!(conv.asm.contains("maxw"));
//! assert_eq!(conv.converted_hammocks, 2);
//! # Ok::<(), kernelc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod fold;
pub mod ifconv;
pub mod interp;
pub mod lexer;
pub mod parser;

use std::fmt;

/// A compilation error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Which predicated instructions the target machine offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Stock POWER5: no predication; `max()` and converted hammocks lower
    /// to compare-and-branch.
    Baseline,
    /// POWER5 + `isel` (and the `cmp` it requires).
    Isel,
    /// POWER5 + the hypothetical fused `maxw` *and* `isel` (the paper's
    /// fully extended machine; `max()` lowers to one `maxw`, general
    /// selects use `isel`).
    Max,
}

/// How aggressively the if-conversion pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfConversion {
    /// Pass disabled: only explicit `max()` intrinsics are predicated
    /// (the paper's *hand-inserted* mode).
    Off,
    /// Convert only min/max patterns with plain-variable operands — the
    /// paper's max-emitting pattern matcher, which expression operands and
    /// hoisted loads easily "obfuscate".
    MaxPatterns,
    /// Additionally convert general single-assignment hammocks to `isel`
    /// selects ("isel is a more general solution that may be applied in
    /// more situations than max").
    Full,
}

/// Compiler options: target ISA plus the if-conversion mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Target ISA variant.
    pub target: Target,
    /// If-conversion aggressiveness.
    pub if_convert: IfConversion,
}

impl Options {
    /// Stock compiler, stock POWER5 (the paper's baseline bars).
    pub fn baseline() -> Self {
        Options { target: Target::Baseline, if_convert: IfConversion::Off }
    }

    /// Hand-inserted `max` instructions (sources use the `max()`
    /// intrinsic), no compiler conversion.
    pub fn hand_max() -> Self {
        Options { target: Target::Max, if_convert: IfConversion::Off }
    }

    /// Hand-inserted `isel` (the same `max()` intrinsic sites lowered to
    /// `cmp` + `isel`).
    pub fn hand_isel() -> Self {
        Options { target: Target::Isel, if_convert: IfConversion::Off }
    }

    /// Compiler if-conversion emitting `maxw` for recognized max patterns.
    pub fn compiler_max() -> Self {
        Options { target: Target::Max, if_convert: IfConversion::MaxPatterns }
    }

    /// Compiler if-conversion emitting `isel` (max patterns and general
    /// hammocks alike).
    pub fn compiler_isel() -> Self {
        Options { target: Target::Isel, if_convert: IfConversion::Full }
    }

    /// The paper's "Combination": hand-inserted `max()` sources *plus*
    /// the compiler's general `isel` if-conversion for everything else.
    pub fn combination() -> Self {
        Options { target: Target::Max, if_convert: IfConversion::Full }
    }
}

/// A successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Textual PowerPC-subset assembly (assemble with [`ppc_asm`]).
    pub asm: String,
    /// Function names in definition order.
    pub functions: Vec<String>,
    /// Number of hammocks the if-conversion pass converted.
    pub converted_hammocks: usize,
    /// Number of hammocks the pass examined but refused (safety).
    pub rejected_hammocks: usize,
}

/// Compile a kernel-language program to assembly.
///
/// The emitted program contains a `__start` symbol that calls `main` and
/// executes `trap` on return, so the image runs directly on a
/// [`power5-sim` machine](https://docs.rs/power5-sim).
///
/// # Errors
///
/// Returns [`CompileError`] for syntax errors, unknown identifiers, type
/// errors, or resource exhaustion (too many locals for the register file).
pub fn compile(source: &str, options: &Options) -> Result<Compiled, CompileError> {
    let tokens = lexer::lex(source)?;
    let mut program = parser::parse(&tokens)?;
    let (converted, rejected) =
        if options.if_convert != IfConversion::Off && options.target != Target::Baseline {
            ifconv::run(&mut program, options.if_convert)
        } else {
            (0, 0)
        };
    fold::run(&mut program);
    let asm = codegen::emit(&program, options.target)?;
    Ok(Compiled {
        asm,
        functions: program.functions.iter().map(|f| f.name.clone()).collect(),
        converted_hammocks: converted,
        rejected_hammocks: rejected,
    })
}
