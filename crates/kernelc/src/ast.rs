//! Abstract syntax of the kernel language.

/// Value types: scalars and the two array flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit signed integer.
    Int,
    /// Pointer to 32-bit words (`a[i]` is a word load, index scaled by 4).
    WordPtr,
    /// Pointer to bytes (`s[i]` is a zero-extended byte load) — encoded
    /// biological sequences live in these.
    BytePtr,
}

/// Arithmetic/logical binary operators over `int`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
}

/// Comparison operators (condition contexts only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated comparison (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Integer-valued expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Local variable or parameter.
    Var(String),
    /// `array[index]` load.
    Index {
        /// Array variable name.
        array: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `max(a, b)` intrinsic — the hand-inserted predication site.
    Max(Box<Expr>, Box<Expr>),
    /// `min(a, b)` intrinsic.
    Min(Box<Expr>, Box<Expr>),
    /// Function call `f(args…)` (statement-position only; enforced by the
    /// parser).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A predicated select produced by the if-conversion pass (never
    /// written in source): `cond ? then_val : else_val`.
    Select {
        /// The comparison.
        cond: Box<Cond>,
        /// Value when true.
        then_val: Box<Expr>,
        /// Value when false.
        else_val: Box<Expr>,
    },
}

/// Boolean conditions (only in `if`/`while`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `a <op> b`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// `c1 && c2` (short-circuit).
    And(Box<Cond>, Box<Cond>),
    /// `c1 || c2` (short-circuit).
    Or(Box<Cond>, Box<Cond>),
    /// `!c`.
    Not(Box<Cond>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name [: ty] = expr;` — declares a register-allocated local.
    /// The optional type annotation makes the local indexable
    /// (`let row: ptr = base + off;`).
    Let {
        /// Variable name.
        name: String,
        /// Declared type (defaults to `int`).
        ty: Ty,
        /// Initializer.
        value: Expr,
        /// Source line (diagnostics).
        line: usize,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `array[index] = expr;`
    Store {
        /// Array variable name.
        array: String,
        /// Index expression.
        index: Expr,
        /// Stored value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if (cond) { … } else { … }`.
    If {
        /// Condition.
        cond: Cond,
        /// Then-block.
        then_block: Vec<Stmt>,
        /// Else-block (possibly empty).
        else_block: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while (cond) { … }`.
    While {
        /// Condition.
        cond: Cond,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `return expr;`
    Return {
        /// Returned value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// A bare call statement `f(a, b);` (result discarded).
    CallStmt {
        /// The call expression (always [`Expr::Call`]).
        call: Expr,
        /// Source line.
        line: usize,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name (assembly label).
    pub name: String,
    /// Parameters (passed in `r3`–`r10`).
    pub params: Vec<Param>,
    /// Whether the function returns a value (in `r3`).
    pub returns_value: bool,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: usize,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Expr {
    /// Walk the expression tree, calling `f` on every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Index { index, .. } => index.visit(f),
            Expr::Neg(e) => e.visit(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Max(a, b) | Expr::Min(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Select { cond, then_val, else_val } => {
                cond.visit_exprs(f);
                then_val.visit(f);
                else_val.visit(f);
            }
        }
    }

    /// Whether the expression contains any call.
    pub fn has_call(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                found = true;
            }
        });
        found
    }
}

impl Cond {
    /// Walk all integer expressions inside the condition.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Cond::Cmp { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.visit_exprs(f);
                b.visit_exprs(f);
            }
            Cond::Not(c) => c.visit_exprs(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_swaps_and_negates() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.swapped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn visit_reaches_nested_nodes() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::Index {
                array: "a".into(),
                index: Box::new(Expr::Var("i".into())),
            }),
            rhs: Box::new(Expr::Max(Box::new(Expr::Lit(1)), Box::new(Expr::Var("x".into())))),
        };
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn has_call_detects_calls() {
        let call = Expr::Call { name: "f".into(), args: vec![Expr::Lit(1)] };
        assert!(call.has_call());
        let wrapped = Expr::Neg(Box::new(call));
        assert!(wrapped.has_call());
        assert!(!Expr::Lit(0).has_call());
    }
}
