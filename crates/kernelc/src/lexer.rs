//! Tokenizer for the kernel language.

use crate::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword text.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation / operator, e.g. `"+"`, `"<="`, `"("`.
    Punct(&'static str),
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS2: &[&str] = &["<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "->"];
const PUNCTS1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "{", "}", "[", "]", ",",
    ";", ":", "?",
];

/// Tokenize `source`.
///
/// # Errors
///
/// Returns [`CompileError`] on unknown characters or malformed literals.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token { tok: Tok::Ident(text[start..i].to_string()), line });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                let hex = text[i..].starts_with("0x") || text[i..].starts_with("0X");
                if hex {
                    i += 2;
                }
                while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric()) {
                    i += 1;
                }
                let lit = &text[start..i];
                let v = if hex { i64::from_str_radix(&lit[2..], 16) } else { lit.parse::<i64>() }
                    .map_err(|_| CompileError {
                    line,
                    message: format!("malformed integer literal {lit:?}"),
                })?;
                out.push(Token { tok: Tok::Int(v), line });
                continue;
            }
            if i + 1 < bytes.len() {
                let two = &text[i..i + 2];
                if let Some(&p) = PUNCTS2.iter().find(|&&p| p == two) {
                    out.push(Token { tok: Tok::Punct(p), line });
                    i += 2;
                    continue;
                }
            }
            let one = &text[i..i + 1];
            if let Some(&p) = PUNCTS1.iter().find(|&&p| p == one) {
                out.push(Token { tok: Tok::Punct(p), line });
                i += 1;
                continue;
            }
            return Err(CompileError { line, message: format!("unexpected character {c:?}") });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_ints_puncts() {
        assert_eq!(
            toks("let x1 = 0x1F + 2;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x1".into()),
                Tok::Punct("="),
                Tok::Int(31),
                Tok::Punct("+"),
                Tok::Int(2),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("a <= b >> 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct(">>"),
                Tok::Int(2),
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(
            toks("x // comment\n// whole line\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()),]
        );
    }

    #[test]
    fn line_numbers_recorded() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn bad_character_rejected() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
    }

    #[test]
    fn bad_hex_rejected() {
        let e = lex("0xZZ").unwrap_err();
        assert!(e.message.contains("malformed"));
    }
}
