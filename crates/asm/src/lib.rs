//! Two-pass assembler for the PowerPC-subset ISA.
//!
//! The assembler accepts the `objdump`-flavoured syntax produced by the
//! [`kernelc`] compiler and by hand-written test kernels:
//!
//! ```text
//! # Smith-Waterman inner-loop fragment
//!         .global entry
//! entry:
//!         li      r3, 0
//! loop:
//!         lwz     r4, 0(r5)
//!         maxw    r3, r3, r4
//!         addi    r5, r5, 4
//!         bdnz    loop
//!         trap
//! table:
//!         .word   1, -2, 0x30
//!         .space  64
//! ```
//!
//! Supported features: labels, forward references, the simplified
//! mnemonics `li`/`lis`/`mr`/`nop`/`blr`/`bctr`/`bdnz`/`slwi`/`srwi` and
//! the conditional-branch aliases `beq`/`bne`/`blt`/`bge`/`bgt`/`ble`
//! (all with an explicit CR field), plus the data directives `.word`,
//! `.byte`, `.space`, `.align`, and `.global`.
//!
//! [`kernelc`]: https://docs.rs/kernelc
//!
//! # Example
//!
//! ```
//! let asm = "entry:\n  li r3, 7\n  trap\n";
//! let prog = ppc_asm::assemble(asm, 0x1000)?;
//! assert_eq!(prog.symbols["entry"], 0x1000);
//! assert_eq!(prog.bytes.len(), 8);
//! # Ok::<(), ppc_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ppc_isa::insn::{BranchCond, Instruction};
use ppc_isa::reg::{CrBit, CrField, Gpr};
use std::collections::HashMap;
use std::fmt;

/// An assembly error, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Output of [`assemble`]: a loadable little-endian image plus symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembled {
    /// Load address of the first byte.
    pub base: u32,
    /// The image (instructions and data, little-endian).
    pub bytes: Vec<u8>,
    /// Label → byte address.
    pub symbols: HashMap<String, u32>,
    /// Byte offsets (from `base`) that hold instructions, in order — the
    /// simulator uses this to distinguish code from inline data.
    pub insn_offsets: Vec<u32>,
}

impl Assembled {
    /// The decoded instruction at byte address `addr`, if that address
    /// holds one.
    pub fn insn_at(&self, addr: u32) -> Option<Instruction> {
        let off = addr.checked_sub(self.base)? as usize;
        if off + 4 > self.bytes.len() {
            return None;
        }
        let word = u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"));
        ppc_isa::decode(word).ok()
    }

    /// The symbol table as `(name, address)` pairs, for consumers that want
    /// to symbolize addresses (e.g. the simulator's stall heatmaps).
    /// Unsorted; names are borrowed from the assembly labels verbatim.
    pub fn symbol_table(&self) -> Vec<(&str, u32)> {
        self.symbols.iter().map(|(name, &addr)| (name.as_str(), addr)).collect()
    }
}

#[derive(Debug, Clone)]
enum Item {
    Insn { line: usize, mnemonic: String, operands: Vec<String> },
    Words(Vec<i64>),
    Bytes(Vec<u8>),
    Space(usize),
}

struct Pass1 {
    items: Vec<(u32, Item)>, // (offset, item)
    symbols: HashMap<String, u32>,
    size: u32,
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas that are not inside parentheses (there are none in
    // this syntax, so a plain split suffices), trimming whitespace.
    rest.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn item_size(item: &Item) -> u32 {
    match item {
        Item::Insn { .. } => 4,
        Item::Words(w) => 4 * w.len() as u32,
        Item::Bytes(b) => b.len() as u32,
        Item::Space(n) => *n as u32,
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError { line, message: format!("invalid integer {tok:?}") })?;
    Ok(if neg { -v } else { v })
}

fn pass1(source: &str, base: u32) -> Result<Pass1, AsmError> {
    let mut items = Vec::new();
    let mut symbols = HashMap::new();
    let mut offset = 0u32;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        // Strip comments (#, ;, and //).
        let mut text = raw;
        if let Some(p) = text.find(['#', ';']) {
            text = &text[..p];
        }
        if let Some(p) = text.find("//") {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several per line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(AsmError { line, message: format!("invalid label {label:?}") });
            }
            if symbols.insert(label.to_string(), base + offset).is_some() {
                return Err(AsmError { line, message: format!("duplicate label {label:?}") });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (head, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let item = if let Some(directive) = head.strip_prefix('.') {
            match directive {
                "word" => {
                    let vals = split_operands(rest)
                        .iter()
                        .map(|t| parse_int(t, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    Item::Words(vals)
                }
                "byte" => {
                    let vals = split_operands(rest)
                        .iter()
                        .map(|t| parse_int(t, line).map(|v| v as u8))
                        .collect::<Result<Vec<_>, _>>()?;
                    Item::Bytes(vals)
                }
                "space" => Item::Space(parse_int(rest, line)? as usize),
                "align" => {
                    let a = parse_int(rest, line)? as u32;
                    if a == 0 || !a.is_power_of_two() {
                        return Err(AsmError {
                            line,
                            message: format!(".align must be a power of two, got {a}"),
                        });
                    }
                    let pad = (a - (base + offset) % a) % a;
                    Item::Space(pad as usize)
                }
                "global" => continue, // informational only
                other => {
                    return Err(AsmError { line, message: format!("unknown directive .{other}") })
                }
            }
        } else {
            Item::Insn { line, mnemonic: head.to_lowercase(), operands: split_operands(rest) }
        };
        let at = offset;
        offset += item_size(&item);
        items.push((at, item));
    }
    Ok(Pass1 { items, symbols, size: offset })
}

struct OperandParser<'a> {
    symbols: &'a HashMap<String, u32>,
    line: usize,
    /// Byte address of the instruction being assembled (for PC-relative
    /// branch offsets).
    pc: u32,
}

impl OperandParser<'_> {
    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError { line: self.line, message: message.into() }
    }

    fn gpr(&self, tok: &str) -> Result<Gpr, AsmError> {
        let n = tok
            .strip_prefix('r')
            .and_then(|s| s.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| self.err(format!("expected a register, got {tok:?}")))?;
        Ok(Gpr(n))
    }

    fn crf(&self, tok: &str) -> Result<CrField, AsmError> {
        let n = tok
            .strip_prefix("cr")
            .and_then(|s| s.parse::<u8>().ok())
            .filter(|&n| n < 8)
            .ok_or_else(|| self.err(format!("expected a CR field, got {tok:?}")))?;
        Ok(CrField(n))
    }

    fn crbit(&self, tok: &str) -> Result<CrBit, AsmError> {
        // Accept "4*crN+lt|gt|eq|so" or a plain bit number.
        if let Some(rest) = tok.strip_prefix("4*cr") {
            let (field, bitname) = rest
                .split_once('+')
                .ok_or_else(|| self.err(format!("malformed CR bit {tok:?}")))?;
            let f: u8 = field
                .parse()
                .ok()
                .filter(|&n| n < 8)
                .ok_or_else(|| self.err(format!("bad CR field in {tok:?}")))?;
            let w = match bitname {
                "lt" => 0,
                "gt" => 1,
                "eq" => 2,
                "so" => 3,
                _ => return Err(self.err(format!("bad CR bit name in {tok:?}"))),
            };
            Ok(CrBit(f * 4 + w))
        } else {
            let n = parse_int(tok, self.line)?;
            if (0..32).contains(&n) {
                Ok(CrBit(n as u8))
            } else {
                Err(self.err(format!("CR bit {n} out of range")))
            }
        }
    }

    fn imm(&self, tok: &str) -> Result<i64, AsmError> {
        if let Some(&addr) = self.symbols.get(tok) {
            return Ok(addr as i64);
        }
        parse_int(tok, self.line)
    }

    fn imm16(&self, tok: &str) -> Result<i16, AsmError> {
        let v = self.imm(tok)?;
        i16::try_from(v)
            .or_else(|_| {
                // Allow unsigned 16-bit values for convenience.
                u16::try_from(v).map(|u| u as i16)
            })
            .map_err(|_| self.err(format!("immediate {v} does not fit in 16 bits")))
    }

    fn uimm16(&self, tok: &str) -> Result<u16, AsmError> {
        let v = self.imm(tok)?;
        u16::try_from(v).map_err(|_| self.err(format!("immediate {v} does not fit in u16")))
    }

    /// `disp(ra)` memory operand.
    fn mem(&self, tok: &str) -> Result<(i16, Gpr), AsmError> {
        let open =
            tok.find('(').ok_or_else(|| self.err(format!("expected disp(rN), got {tok:?}")))?;
        let close = tok.rfind(')').ok_or_else(|| self.err(format!("missing ')' in {tok:?}")))?;
        let disp = if open == 0 { 0 } else { self.imm16(&tok[..open])? };
        let ra = self.gpr(tok[open + 1..close].trim())?;
        Ok((disp, ra))
    }

    /// A branch target: a label or an explicit `.+N`/`.-N` relative form
    /// (dot-prefixed *labels* like `.Lfoo` are looked up as labels).
    fn branch_offset(&self, tok: &str) -> Result<i64, AsmError> {
        if let Some(rel) = tok.strip_prefix('.') {
            if rel.starts_with(['+', '-']) || rel.starts_with(|c: char| c.is_ascii_digit()) {
                return parse_int(rel.trim_start_matches('+'), self.line);
            }
        }
        if let Some(&addr) = self.symbols.get(tok) {
            return Ok(addr as i64 - self.pc as i64);
        }
        Err(self.err(format!("unknown branch target {tok:?}")))
    }
}

fn sh5(p: &OperandParser<'_>, tok: &str) -> Result<u8, AsmError> {
    let v = p.imm(tok)?;
    if (0..32).contains(&v) {
        Ok(v as u8)
    } else {
        Err(p.err(format!("shift amount {v} out of range")))
    }
}

fn assemble_insn(
    mnemonic: &str,
    ops: &[String],
    p: &OperandParser<'_>,
) -> Result<Instruction, AsmError> {
    use Instruction::*;
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(p.err(format!("{mnemonic} expects {n} operands, got {}", ops.len())))
        }
    };
    let insn = match mnemonic {
        "nop" => {
            need(0)?;
            Instruction::nop()
        }
        "li" => {
            need(2)?;
            Addi { rt: p.gpr(&ops[0])?, ra: Gpr(0), imm: p.imm16(&ops[1])? }
        }
        "lis" => {
            need(2)?;
            Addis { rt: p.gpr(&ops[0])?, ra: Gpr(0), imm: p.imm16(&ops[1])? }
        }
        "mr" => {
            need(2)?;
            let rs = p.gpr(&ops[1])?;
            Or { ra: p.gpr(&ops[0])?, rs, rb: rs }
        }
        "addi" => {
            need(3)?;
            Addi { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, imm: p.imm16(&ops[2])? }
        }
        "addis" => {
            need(3)?;
            Addis { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, imm: p.imm16(&ops[2])? }
        }
        "add" => {
            need(3)?;
            Add { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "subf" => {
            need(3)?;
            Subf { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        // sub rt, ra, rb == subf rt, rb, ra
        "sub" => {
            need(3)?;
            Subf { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[2])?, rb: p.gpr(&ops[1])? }
        }
        "neg" => {
            need(2)?;
            Neg { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])? }
        }
        "mullw" => {
            need(3)?;
            Mullw { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "divw" => {
            need(3)?;
            Divw { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "and" => {
            need(3)?;
            And { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "or" => {
            need(3)?;
            Or { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "xor" => {
            need(3)?;
            Xor { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "ori" => {
            need(3)?;
            Ori { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, uimm: p.uimm16(&ops[2])? }
        }
        "andi." => {
            need(3)?;
            AndiDot { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, uimm: p.uimm16(&ops[2])? }
        }
        "xori" => {
            need(3)?;
            Xori { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, uimm: p.uimm16(&ops[2])? }
        }
        "slw" => {
            need(3)?;
            Slw { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "srw" => {
            need(3)?;
            Srw { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "sraw" => {
            need(3)?;
            Sraw { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "srawi" => {
            need(3)?;
            Srawi { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, sh: sh5(p, &ops[2])? }
        }
        "slwi" => {
            need(3)?;
            let sh = sh5(p, &ops[2])?;
            Rlwinm { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, sh, mb: 0, me: 31 - sh }
        }
        "srwi" => {
            need(3)?;
            let sh = sh5(p, &ops[2])?;
            Rlwinm { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])?, sh: 32 - sh, mb: sh, me: 31 }
        }
        "rlwinm" => {
            need(5)?;
            Rlwinm {
                ra: p.gpr(&ops[0])?,
                rs: p.gpr(&ops[1])?,
                sh: sh5(p, &ops[2])?,
                mb: sh5(p, &ops[3])?,
                me: sh5(p, &ops[4])?,
            }
        }
        "extsb" => {
            need(2)?;
            Extsb { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])? }
        }
        "extsh" => {
            need(2)?;
            Extsh { ra: p.gpr(&ops[0])?, rs: p.gpr(&ops[1])? }
        }
        "cmpw" => {
            need(3)?;
            Cmpw { crf: p.crf(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "cmpwi" => {
            need(3)?;
            Cmpwi { crf: p.crf(&ops[0])?, ra: p.gpr(&ops[1])?, imm: p.imm16(&ops[2])? }
        }
        "cmplw" => {
            need(3)?;
            Cmplw { crf: p.crf(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "cmplwi" => {
            need(3)?;
            Cmplwi { crf: p.crf(&ops[0])?, ra: p.gpr(&ops[1])?, uimm: p.uimm16(&ops[2])? }
        }
        "isel" => {
            need(4)?;
            Isel {
                rt: p.gpr(&ops[0])?,
                ra: p.gpr(&ops[1])?,
                rb: p.gpr(&ops[2])?,
                bc: p.crbit(&ops[3])?,
            }
        }
        "maxw" => {
            need(3)?;
            Maxw { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "b" | "bl" => {
            need(1)?;
            let off = p.branch_offset(&ops[0])?;
            if off % 4 != 0 || !(-(1 << 25)..(1 << 25)).contains(&off) {
                return Err(p.err(format!("branch offset {off} invalid")));
            }
            B { offset: off as i32, link: mnemonic == "bl" }
        }
        "blr" => {
            need(0)?;
            Bclr { cond: BranchCond::Always }
        }
        "bctr" => {
            need(0)?;
            Bcctr { cond: BranchCond::Always }
        }
        "bclrt" | "bclrf" => {
            need(1)?;
            let bit = p.crbit(&ops[0])?;
            let cond = if mnemonic == "bclrt" {
                BranchCond::IfTrue(bit)
            } else {
                BranchCond::IfFalse(bit)
            };
            Bclr { cond }
        }
        "bclrdnz" => {
            need(0)?;
            Bclr { cond: BranchCond::DecrementNotZero }
        }
        "bcctrt" | "bcctrf" => {
            need(1)?;
            let bit = p.crbit(&ops[0])?;
            let cond = if mnemonic == "bcctrt" {
                BranchCond::IfTrue(bit)
            } else {
                BranchCond::IfFalse(bit)
            };
            Bcctr { cond }
        }
        "bcctrdnz" => {
            need(0)?;
            Bcctr { cond: BranchCond::DecrementNotZero }
        }
        "bcalways" | "bcalwaysl" => {
            need(1)?;
            let off = bc_offset(p, &ops[0])?;
            Bc { cond: BranchCond::Always, offset: off, link: mnemonic.ends_with('l') }
        }
        "bdnz" | "bdnzl" => {
            need(1)?;
            let off = bc_offset(p, &ops[0])?;
            Bc { cond: BranchCond::DecrementNotZero, offset: off, link: mnemonic.ends_with('l') }
        }
        "bct" | "bcf" | "bctl" | "bcfl" => {
            need(2)?;
            let bit = p.crbit(&ops[0])?;
            let off = bc_offset(p, &ops[1])?;
            let cond = if mnemonic.starts_with("bct") {
                BranchCond::IfTrue(bit)
            } else {
                BranchCond::IfFalse(bit)
            };
            Bc { cond, offset: off, link: mnemonic.len() == 4 }
        }
        "beq" | "bne" | "blt" | "bge" | "bgt" | "ble" => {
            need(2)?;
            let crf = p.crf(&ops[0])?;
            let off = bc_offset(p, &ops[1])?;
            let cond = match mnemonic {
                "beq" => BranchCond::IfTrue(crf.eq_bit()),
                "bne" => BranchCond::IfFalse(crf.eq_bit()),
                "blt" => BranchCond::IfTrue(crf.lt_bit()),
                "bge" => BranchCond::IfFalse(crf.lt_bit()),
                "bgt" => BranchCond::IfTrue(crf.gt_bit()),
                _ => BranchCond::IfFalse(crf.gt_bit()),
            };
            Bc { cond, offset: off, link: false }
        }
        "lwz" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Lwz { rt: p.gpr(&ops[0])?, ra, disp }
        }
        "lbz" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Lbz { rt: p.gpr(&ops[0])?, ra, disp }
        }
        "lhz" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Lhz { rt: p.gpr(&ops[0])?, ra, disp }
        }
        "lha" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Lha { rt: p.gpr(&ops[0])?, ra, disp }
        }
        "stw" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Stw { rs: p.gpr(&ops[0])?, ra, disp }
        }
        "stb" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Stb { rs: p.gpr(&ops[0])?, ra, disp }
        }
        "sth" => {
            need(2)?;
            let (disp, ra) = p.mem(&ops[1])?;
            Sth { rs: p.gpr(&ops[0])?, ra, disp }
        }
        "lwzx" => {
            need(3)?;
            Lwzx { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "lbzx" => {
            need(3)?;
            Lbzx { rt: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "stwx" => {
            need(3)?;
            Stwx { rs: p.gpr(&ops[0])?, ra: p.gpr(&ops[1])?, rb: p.gpr(&ops[2])? }
        }
        "mflr" => {
            need(1)?;
            Mflr { rt: p.gpr(&ops[0])? }
        }
        "mtlr" => {
            need(1)?;
            Mtlr { rs: p.gpr(&ops[0])? }
        }
        "mfctr" => {
            need(1)?;
            Mfctr { rt: p.gpr(&ops[0])? }
        }
        "mtctr" => {
            need(1)?;
            Mtctr { rs: p.gpr(&ops[0])? }
        }
        "trap" => {
            need(0)?;
            Trap
        }
        other => return Err(p.err(format!("unknown mnemonic {other:?}"))),
    };
    Ok(insn)
}

fn bc_offset(p: &OperandParser<'_>, tok: &str) -> Result<i16, AsmError> {
    let off = p.branch_offset(tok)?;
    if off % 4 != 0 || !(-(1 << 15)..(1 << 15)).contains(&off) {
        return Err(p.err(format!("conditional branch offset {off} out of range")));
    }
    Ok(off as i16)
}

/// Assemble `source` for loading at `base`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors,
/// undefined/duplicate labels, out-of-range immediates, or misaligned
/// branch targets.
pub fn assemble(source: &str, base: u32) -> Result<Assembled, AsmError> {
    let pass1 = pass1(source, base)?;
    let mut bytes = Vec::with_capacity(pass1.size as usize);
    let mut insn_offsets = Vec::new();
    for (offset, item) in &pass1.items {
        debug_assert_eq!(bytes.len() as u32, *offset);
        match item {
            Item::Insn { line, mnemonic, operands } => {
                let p = OperandParser { symbols: &pass1.symbols, line: *line, pc: base + offset };
                let insn = assemble_insn(mnemonic, operands, &p)?;
                insn_offsets.push(*offset);
                bytes.extend_from_slice(&ppc_isa::encode(&insn).to_le_bytes());
            }
            Item::Words(ws) => {
                for w in ws {
                    bytes.extend_from_slice(&(*w as u32).to_le_bytes());
                }
            }
            Item::Bytes(bs) => bytes.extend_from_slice(bs),
            Item::Space(n) => bytes.extend(std::iter::repeat_n(0u8, *n)),
        }
    }
    Ok(Assembled { base, bytes, symbols: pass1.symbols, insn_offsets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_isa::insn::Instruction as I;

    #[test]
    fn minimal_program() {
        let prog = assemble("entry:\n li r3, 5\n trap\n", 0).unwrap();
        assert_eq!(prog.bytes.len(), 8);
        assert_eq!(prog.insn_at(0), Some(I::Addi { rt: Gpr(3), ra: Gpr(0), imm: 5 }));
        assert_eq!(prog.insn_at(4), Some(I::Trap));
    }

    #[test]
    fn forward_and_backward_branches() {
        let src = "\
start:
    b fwd
back:
    trap
fwd:
    b back
";
        let prog = assemble(src, 0x1000).unwrap();
        assert_eq!(prog.insn_at(0x1000), Some(I::B { offset: 8, link: false }));
        assert_eq!(prog.insn_at(0x1008), Some(I::B { offset: -4, link: false }));
    }

    #[test]
    fn conditional_branch_aliases() {
        let src = "\
loop:
    cmpwi cr0, r3, 10
    blt cr0, loop
    bgt cr1, loop
    beq cr0, loop
    bne cr0, loop
    bge cr2, loop
    ble cr0, loop
    trap
";
        let prog = assemble(src, 0).unwrap();
        match prog.insn_at(4) {
            Some(I::Bc { cond: BranchCond::IfTrue(bit), offset, .. }) => {
                assert_eq!(bit, CrBit(0));
                assert_eq!(offset, -4);
            }
            other => panic!("unexpected {other:?}"),
        }
        match prog.insn_at(8) {
            Some(I::Bc { cond: BranchCond::IfTrue(bit), .. }) => assert_eq!(bit, CrBit(5)),
            other => panic!("unexpected {other:?}"),
        }
        match prog.insn_at(20) {
            Some(I::Bc { cond: BranchCond::IfFalse(bit), .. }) => assert_eq!(bit, CrBit(8)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let prog = assemble("lwz r4, -8(r1)\nstw r4, 0x10(r9)\nlwz r5, (r2)\n", 0).unwrap();
        assert_eq!(prog.insn_at(0), Some(I::Lwz { rt: Gpr(4), ra: Gpr(1), disp: -8 }));
        assert_eq!(prog.insn_at(4), Some(I::Stw { rs: Gpr(4), ra: Gpr(9), disp: 16 }));
        assert_eq!(prog.insn_at(8), Some(I::Lwz { rt: Gpr(5), ra: Gpr(2), disp: 0 }));
    }

    #[test]
    fn data_directives_and_symbols() {
        let src = "\
    b code
table:
    .word 1, -2, 0x30
buf:
    .space 8
    .align 8
code:
    trap
";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.symbols["table"], 4);
        assert_eq!(prog.symbols["buf"], 16);
        assert_eq!(prog.symbols["code"] % 8, 0);
        // The words landed little-endian.
        assert_eq!(&prog.bytes[4..8], &1u32.to_le_bytes());
        assert_eq!(&prog.bytes[8..12], &(-2i32 as u32).to_le_bytes());
        // Branch over data reaches `code`.
        let b = prog.insn_at(0).unwrap();
        assert_eq!(b, I::B { offset: prog.symbols["code"] as i32, link: false });
    }

    #[test]
    fn byte_directive() {
        let prog = assemble("data:\n .byte 1, 2, 255\n", 0).unwrap();
        assert_eq!(prog.bytes, vec![1, 2, 255]);
        assert!(prog.insn_offsets.is_empty());
    }

    #[test]
    fn predicated_instructions_parse() {
        let src = "maxw r3, r4, r5\nisel r3, r4, r5, 4*cr0+gt\nisel r6, r0, r7, 2\n";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.insn_at(0), Some(I::Maxw { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5) }));
        assert_eq!(
            prog.insn_at(4),
            Some(I::Isel { rt: Gpr(3), ra: Gpr(4), rb: Gpr(5), bc: CrBit(1) })
        );
        assert_eq!(
            prog.insn_at(8),
            Some(I::Isel { rt: Gpr(6), ra: Gpr(0), rb: Gpr(7), bc: CrBit(2) })
        );
    }

    #[test]
    fn simplified_shift_mnemonics() {
        let prog = assemble("slwi r3, r4, 2\nsrwi r5, r6, 4\n", 0).unwrap();
        assert_eq!(
            prog.insn_at(0),
            Some(I::Rlwinm { ra: Gpr(3), rs: Gpr(4), sh: 2, mb: 0, me: 29 })
        );
        assert_eq!(
            prog.insn_at(4),
            Some(I::Rlwinm { ra: Gpr(5), rs: Gpr(6), sh: 28, mb: 4, me: 31 })
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# full comment\n\n  li r3, 1 ; trailing\n  trap\n";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.insn_offsets.len(), 2);
    }

    #[test]
    fn double_slash_comments_ignored() {
        let src = "// header: with a colon\n  li r3, 1 // trailing: colon\n  trap\n";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.insn_offsets.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("li r3\n", 0).unwrap_err();
        assert!(e.message.contains("expects 2 operands"));

        let e = assemble("b nowhere\n", 0).unwrap_err();
        assert!(e.message.contains("unknown branch target"));

        let e = assemble("x:\nx:\n", 0).unwrap_err();
        assert!(e.message.contains("duplicate label"));

        let e = assemble("li r3, 0x12345\n", 0).unwrap_err();
        assert!(e.message.contains("does not fit"));
    }

    #[test]
    fn immediates_accept_unsigned_16bit() {
        let prog = assemble("li r3, 0xFFFF\nori r4, r4, 0x8000\n", 0).unwrap();
        assert_eq!(prog.insn_at(0), Some(I::Addi { rt: Gpr(3), ra: Gpr(0), imm: -1 }));
        assert_eq!(prog.insn_at(4), Some(I::Ori { ra: Gpr(4), rs: Gpr(4), uimm: 0x8000 }));
    }

    #[test]
    fn sub_alias_swaps_operands() {
        let prog = assemble("sub r3, r4, r5\n", 0).unwrap();
        assert_eq!(prog.insn_at(0), Some(I::Subf { rt: Gpr(3), ra: Gpr(5), rb: Gpr(4) }));
    }

    #[test]
    fn label_address_as_immediate() {
        let src = "
    li r3, data
    trap
data:
    .word 42
";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.insn_at(0), Some(I::Addi { rt: Gpr(3), ra: Gpr(0), imm: 8 }));
    }

    #[test]
    fn assembled_round_trips_through_executor() {
        use ppc_isa::{step, CpuState, Memory};
        let src = "
entry:
    li r3, 0
    li r4, 10
    mtctr r4
loop:
    addi r3, r3, 2
    bdnz loop
    trap
";
        let prog = assemble(src, 0).unwrap();
        let mut mem = Memory::new(0x1000);
        mem.write_bytes(prog.base, &prog.bytes).unwrap();
        let mut cpu = CpuState::new(prog.symbols["entry"]);
        for _ in 0..1000 {
            let word = mem.load_u32(cpu.pc).unwrap();
            let insn = ppc_isa::decode(word).unwrap();
            let ev = step(&mut cpu, &mut mem, &insn).unwrap();
            if ev.halted {
                break;
            }
        }
        assert_eq!(cpu.reg(Gpr(3)), 20);
    }
}
