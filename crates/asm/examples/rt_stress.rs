fn main() {
    // Exhaustive-ish check: every decodable word in a broad sample must
    // round-trip through text.
    let mut checked = 0u64;
    for base in (0..0x4000_0000u32).step_by(65537) {
        let w = base.wrapping_mul(2654435761);
        if let Ok(insn) = ppc_isa::decode(w) {
            let norm = ppc_isa::encode(&insn);
            let text = format!("{}\n", insn);
            match ppc_asm::assemble(&text, 0) {
                Ok(p) => {
                    let back = u32::from_le_bytes(p.bytes[0..4].try_into().unwrap());
                    assert_eq!(norm, back, "encoding mismatch for {text:?}");
                }
                Err(e) => panic!("disassembly {text:?} failed to assemble: {e}"),
            }
            checked += 1;
        }
    }
    println!("round-tripped {checked} decodable words");
}
