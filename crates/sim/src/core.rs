//! The execution-driven timing model of one POWER5-like core.
//!
//! The model consumes the *committed* instruction stream (functional
//! execution happens first; wrong-path instructions are not simulated,
//! their cost appears as redirect latency — the standard trade-off of
//! execution-driven timers) and schedules each instruction through fetch →
//! dispatch-group formation → issue → execute → in-order group commit,
//! with greedy earliest-slot resource scheduling:
//!
//! * **Fetch**: up to `fetch_width` sequential instructions per cycle; a
//!   taken branch ends the packet and costs the 2-cycle POWER5 bubble
//!   (unless the BTAC supplies the target); a mispredicted branch restarts
//!   fetch after resolution plus the redirect latency; I-cache misses stall
//!   fetch.
//! * **Dispatch**: groups of up to `group_size` instructions, at most one
//!   branch per group, one group per cycle.
//! * **Issue**: an instruction issues at the earliest cycle at or after
//!   dispatch when all source resources are ready and a unit instance of
//!   its class is free (register renaming is assumed ideal; issue-queue
//!   capacity is subsumed by the reorder-window limit).
//! * **Commit**: groups commit in order, one group per cycle, which caps
//!   commit throughput at five — the POWER5 property the paper cites.
//!   Cycles in which completion stalls are attributed to the oldest
//!   instruction's delay reason (the CPI-stack of Table I).

use crate::btac::{Btac, BtacState};
use crate::cache::{CacheState, Hierarchy};
use crate::config::CoreConfig;
use crate::counters::{ClassCounts, Counters, IntervalSample, StallBreakdown, StallClass};
use crate::predictor::{AnyPredictor, DirectionPredictor, PredictorState, RasState, ReturnStack};
use crate::trace::{InsnTrace, TraceRedirect, Tracer};
use ppc_isa::insn::{ExecUnit, Instruction, LatencyClass};
use ppc_isa::reg::{ResList, Resource};
use ppc_isa::StepEvent;
use std::collections::VecDeque;

const GPRS: usize = 32;
const CRS: usize = 8;
/// Flat scoreboard slots: r0–r31, cr0–cr7, LR, CTR.
const RES_SLOTS: usize = GPRS + CRS + 2;

/// Flat scoreboard index of a resource (the packed-mask bit position used
/// by [`StaticTiming`]): GPRs first, then CR fields, then LR and CTR —
/// the same order [`CoreState::scoreboard`] serializes.
#[inline]
fn res_index(r: Resource) -> usize {
    match r {
        Resource::Gpr(g) => g.index(),
        Resource::Cr(c) => GPRS + c.index(),
        Resource::Lr => GPRS + CRS,
        Resource::Ctr => GPRS + CRS + 1,
    }
}

/// Register scoreboard: per-resource ready cycle and producing unit, flat
/// over [`res_index`], plus a conservative `busy` mask of slots whose
/// ready cycle may still lie in the future. The mask lets the issue stage
/// skip the source scan entirely when no source has an outstanding
/// producer — the common case in straight-line DP kernels. Bits are set
/// on every write and cleared lazily when a scan observes the slot ready
/// at or before the dispatch frontier; since dispatch never moves
/// backwards, a cleared bit can never become busy again without a new
/// write, so the mask stays a superset of the truly-busy slots and the
/// skip is exact, not approximate.
#[derive(Debug, Clone)]
struct Scoreboard {
    ready: [u64; RES_SLOTS],
    unit: [ExecUnit; RES_SLOTS],
    busy: u64,
}

impl Scoreboard {
    fn new() -> Self {
        Scoreboard { ready: [0; RES_SLOTS], unit: [ExecUnit::Fxu; RES_SLOTS], busy: 0 }
    }

    /// Mark every written slot as potentially busy (used after a restore,
    /// where no dispatch frontier is available to compare against).
    fn assume_busy(&mut self) {
        self.busy = 0;
        for (i, &r) in self.ready.iter().enumerate() {
            if r > 0 {
                self.busy |= 1 << i;
            }
        }
    }
}

const F_BRANCH: u16 = 1 << 0;
const F_COND_BRANCH: u16 = 1 << 1;
const F_LOAD: u16 = 1 << 2;
const F_STORE: u16 = 1 << 3;
const F_PREDICATED: u16 = 1 << 4;
const F_COMPARE: u16 = 1 << 5;
const F_CALL: u16 = 1 << 6;
const F_RETURN: u16 = 1 << 7;
const F_BCCTR: u16 = 1 << 8;

/// Everything the pipeline scheduler needs to know about an instruction
/// that does not depend on runtime values: unit class, latency class,
/// source/destination resource lists, the packed source mask, and the
/// branch/memory shape flags. Precomputed once per decoded word by the
/// machine's static timing sidecar so [`TimingCore::retire`] stops
/// re-deriving it from the [`Instruction`] on every retirement.
///
/// `reads` keeps the *original* [`Instruction::reads`] order: the issue
/// stage takes the blocking unit from the first source reaching the
/// maximum ready cycle, so scanning in any other order (e.g. mask bit
/// order) could change stall attribution. The packed `src_mask` is used
/// only for the exact skip test against the scoreboard's busy mask.
#[derive(Debug, Clone, Copy)]
pub struct StaticTiming {
    /// Source resources as a bit mask over [`res_index`].
    src_mask: u64,
    /// Source resources in `Instruction::reads` order.
    reads: ResList,
    /// Destination resources in `Instruction::writes` order.
    writes: ResList,
    unit: ExecUnit,
    lat: LatencyClass,
    flags: u16,
}

impl StaticTiming {
    /// Derive the static timing record of one instruction.
    pub fn of(insn: &Instruction) -> Self {
        let reads = insn.reads();
        let writes = insn.writes();
        let mut src_mask = 0u64;
        for r in reads.iter() {
            src_mask |= 1 << res_index(r);
        }
        let mut flags = 0u16;
        if insn.is_branch() {
            flags |= F_BRANCH;
        }
        if insn.is_conditional_branch() {
            flags |= F_COND_BRANCH;
        }
        if insn.is_load() {
            flags |= F_LOAD;
        }
        if insn.is_store() {
            flags |= F_STORE;
        }
        if insn.is_predicated() {
            flags |= F_PREDICATED;
        }
        if matches!(
            insn,
            Instruction::Cmpw { .. }
                | Instruction::Cmpwi { .. }
                | Instruction::Cmplw { .. }
                | Instruction::Cmplwi { .. }
        ) {
            flags |= F_COMPARE;
        }
        if matches!(insn, Instruction::B { link: true, .. } | Instruction::Bc { link: true, .. }) {
            flags |= F_CALL;
        }
        if matches!(insn, Instruction::Bclr { .. }) {
            flags |= F_RETURN;
        }
        if matches!(insn, Instruction::Bcctr { .. }) {
            flags |= F_BCCTR;
        }
        StaticTiming {
            src_mask,
            reads,
            writes,
            unit: insn.unit(),
            lat: insn.latency_class(),
            flags,
        }
    }

    /// Whether this is any branch form.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.flags & F_BRANCH != 0
    }

    #[inline]
    fn is_conditional_branch(&self) -> bool {
        self.flags & F_COND_BRANCH != 0
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    /// Whether this is a store (the machine's batched loop uses this to
    /// gate the self-modifying-code repair check).
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    #[inline]
    fn is_predicated(&self) -> bool {
        self.flags & F_PREDICATED != 0
    }

    #[inline]
    fn is_compare(&self) -> bool {
        self.flags & F_COMPARE != 0
    }

    #[inline]
    fn is_call(&self) -> bool {
        self.flags & F_CALL != 0
    }

    #[inline]
    fn is_return(&self) -> bool {
        self.flags & F_RETURN != 0
    }

    #[inline]
    fn is_bcctr(&self) -> bool {
        self.flags & F_BCCTR != 0
    }

    /// The per-class counter contribution of one execution of this
    /// instruction (what [`TimingCore::retire`] folds into [`Counters`]).
    pub fn class_counts(&self) -> ClassCounts {
        ClassCounts {
            executed: 1,
            fxu: matches!(self.unit, ExecUnit::Fxu) as u64,
            lsu: matches!(self.unit, ExecUnit::Lsu) as u64,
            compares: self.is_compare() as u64,
            predicated: self.is_predicated() as u64,
            loads: self.is_load() as u64,
            stores: self.is_store() as u64,
        }
    }
}

/// The pipeline stamps of one scheduled instruction.
struct Sched {
    fetch: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
    commit: u64,
    reason: StallClass,
    gap: u64,
}

/// Flat per-PC profile table over the registered code image. PCs inside
/// the region index a dense vector directly — no hashing on the retire
/// fast path — while any PC outside (or seen before a region was
/// registered) spills to a `HashMap`, so correctness never depends on
/// [`TimingCore::set_code_region`] having been called. A slot counts as
/// *occupied* exactly when the profiling code has written to it, which
/// the accessors detect through a per-type `used` predicate (sites are
/// only ever created together with a non-zero increment).
#[derive(Debug, Clone)]
struct PcTable<T> {
    base: u32,
    dense: Vec<T>,
    spill: std::collections::HashMap<u32, T>,
}

impl<T: Copy + Default> PcTable<T> {
    fn new(base: u32, words: usize) -> Self {
        PcTable { base, dense: vec![T::default(); words], spill: std::collections::HashMap::new() }
    }

    /// The profile slot for `pc` (dense when inside the code region).
    #[inline]
    fn slot(&mut self, pc: u32) -> &mut T {
        let off = pc.wrapping_sub(self.base);
        let idx = (off / 4) as usize;
        if off.is_multiple_of(4) && idx < self.dense.len() {
            &mut self.dense[idx]
        } else {
            self.spill.entry(pc).or_default()
        }
    }

    /// All occupied entries (per `used`), in unspecified order.
    fn entries(&self, used: impl Fn(&T) -> bool) -> Vec<(u32, T)> {
        let mut v: Vec<(u32, T)> = self
            .dense
            .iter()
            .enumerate()
            .filter(|(_, t)| used(t))
            .map(|(i, &t)| (self.base.wrapping_add((i as u32) * 4), t))
            .collect();
        v.extend(self.spill.iter().filter(|(_, t)| used(t)).map(|(&pc, &t)| (pc, t)));
        v
    }

    /// The same entries re-bucketed over a new code region.
    fn rebased(&self, base: u32, words: usize, used: impl Fn(&T) -> bool) -> Self {
        Self::from_entries(base, words, &self.entries(used))
    }

    fn from_entries(base: u32, words: usize, entries: &[(u32, T)]) -> Self {
        let mut t = Self::new(base, words);
        for &(pc, v) in entries {
            *t.slot(pc) = v;
        }
        t
    }
}

/// The timing core. Feed it one committed instruction at a time via
/// [`TimingCore::retire`].
pub struct TimingCore {
    cfg: CoreConfig,
    predictor: AnyPredictor,
    ras: ReturnStack,
    btac: Option<Btac>,
    hier: Hierarchy,
    board: Scoreboard,
    /// Next free cycle per unit instance, per class.
    fxu_free: Vec<u64>,
    lsu_free: Vec<u64>,
    bru_free: Vec<u64>,
    /// Cycle the next instruction may be fetched.
    fetch_cycle: u64,
    /// Instructions already fetched in `fetch_cycle`.
    fetched_this_cycle: usize,
    /// Pending front-end redirect (cycle fetch may resume) and its cause.
    pending_redirect: Option<(u64, StallClass)>,
    /// Last instruction cache line touched by fetch.
    last_fetch_line: u64,
    /// `log2(l1i.line)`, precomputed so the per-instruction fetch stage
    /// needs no integer division.
    fetch_line_shift: u32,
    /// Dispatch-group state.
    group_dispatch: u64,
    group_len: usize,
    group_has_branch: bool,
    /// In-order commit state.
    last_commit: u64,
    commit_new_group: bool,
    /// Commit times of in-flight instructions (reorder window).
    rob: VecDeque<u64>,
    /// `cfg.rob_insns()`, cached off the hot path.
    rob_cap: usize,
    counters: Counters,
    /// Code region registered by the machine (base, words); sizes the
    /// dense site-profiling tables. Zero words = everything spills.
    code_base: u32,
    code_words: usize,
    /// Optional per-PC conditional-branch statistics.
    branch_sites: Option<PcTable<BranchSite>>,
    /// Optional per-PC attribution of *all* stall classes.
    stall_sites: Option<PcTable<StallBreakdown>>,
    /// Pipeline event tracing (enum-dispatched; `Tracer::Off` by default).
    tracer: Tracer,
    /// Direction mispredictions seen (drives link-stack corruption).
    dir_mispredicts_seen: u64,
    /// Interval sampling period in instructions (0 = off).
    interval_insns: u64,
    interval_start: (u64, u64, u64), // (instructions, cycles, dir_mispredicts)
}

/// Per-PC statistics of one conditional-branch site (enabled via
/// [`TimingCore::set_branch_site_profiling`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchSite {
    /// Times the branch committed.
    pub executed: u64,
    /// Times it was taken.
    pub taken: u64,
    /// Times its direction was mispredicted.
    pub mispredicted: u64,
}

/// Everything [`TimingCore::retire`] needs to know about one committed
/// instruction.
#[derive(Debug, Clone, Copy)]
pub struct Retired<'a> {
    /// The instruction.
    pub insn: &'a Instruction,
    /// Its fetch address.
    pub pc: u32,
    /// The functional step's event record (branch outcome, memory access).
    pub event: StepEvent,
}

impl TimingCore {
    /// Build the core from a configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        let predictor = AnyPredictor::build(cfg.predictor);
        let btac = cfg.btac.map(Btac::new);
        let hier = Hierarchy::new(cfg.l1i, cfg.l1d, cfg.l2, cfg.memory_latency);
        TimingCore {
            predictor,
            ras: ReturnStack::new(cfg.ras_entries),
            btac,
            hier,
            board: Scoreboard::new(),
            fxu_free: vec![0; cfg.fxu_count],
            lsu_free: vec![0; cfg.lsu_count],
            bru_free: vec![0; cfg.bru_count],
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            pending_redirect: None,
            last_fetch_line: u64::MAX,
            fetch_line_shift: cfg.l1i.line.trailing_zeros(),
            group_dispatch: 0,
            group_len: 0,
            group_has_branch: false,
            last_commit: 0,
            commit_new_group: true,
            rob: VecDeque::with_capacity(cfg.rob_insns()),
            rob_cap: cfg.rob_insns(),
            counters: Counters::default(),
            code_base: 0,
            code_words: 0,
            branch_sites: None,
            stall_sites: None,
            tracer: Tracer::Off,
            dir_mispredicts_seen: 0,
            interval_insns: 0,
            interval_start: (0, 0, 0),
            cfg,
        }
    }

    /// Enable Figure-2-style interval sampling every `insns` committed
    /// instructions (0 disables).
    pub fn set_interval_sampling(&mut self, insns: u64) {
        self.interval_insns = insns;
    }

    /// Register the code image `(base, words)` so the per-PC profiling
    /// tables can be laid out flat over it. Called by the machine at load
    /// and restore time; existing profile entries are re-bucketed. Cores
    /// driven without a region fall back to hashed storage throughout.
    pub fn set_code_region(&mut self, base: u32, words: usize) {
        self.code_base = base;
        self.code_words = words;
        if let Some(t) = &mut self.branch_sites {
            *t = t.rebased(base, words, |s| s.executed > 0);
        }
        if let Some(t) = &mut self.stall_sites {
            *t = t.rebased(base, words, |s| s.total() > 0);
        }
    }

    /// Enable per-PC conditional-branch statistics (the data behind the
    /// paper's "which branches are unpredictable" analysis).
    pub fn set_branch_site_profiling(&mut self, on: bool) {
        self.branch_sites =
            if on { Some(PcTable::new(self.code_base, self.code_words)) } else { None };
    }

    /// Enable per-PC attribution of every stall class in
    /// [`StallBreakdown`] (the "guilty branch" analysis generalized to all
    /// stall categories). With attribution on, the sum of all per-PC
    /// breakdowns equals the aggregate [`Counters::stalls`] accumulated
    /// while it was enabled.
    pub fn set_stall_site_profiling(&mut self, on: bool) {
        self.stall_sites =
            if on { Some(PcTable::new(self.code_base, self.code_words)) } else { None };
    }

    /// Per-PC stall breakdowns, sorted by total stall cycles (largest
    /// first). Empty unless [`TimingCore::set_stall_site_profiling`] was
    /// enabled.
    pub fn stall_sites(&self) -> Vec<(u32, StallBreakdown)> {
        let mut v = match &self.stall_sites {
            None => Vec::new(),
            Some(t) => t.entries(|s| s.total() > 0),
        };
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        v
    }

    /// Install a pipeline event tracer (replacing any previous one). Pass
    /// [`Tracer::Off`] to disable tracing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the active tracer (e.g. to flush it).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Remove and return the active tracer, disabling tracing.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Per-PC branch statistics, sorted by misprediction count (largest
    /// first). Empty unless profiling was enabled.
    pub fn branch_sites(&self) -> Vec<(u32, BranchSite)> {
        let mut v = match &self.branch_sites {
            None => Vec::new(),
            Some(t) => t.entries(|s| s.executed > 0),
        };
        v.sort_by(|a, b| b.1.mispredicted.cmp(&a.1.mispredicted).then(a.0.cmp(&b.0)));
        v
    }

    /// The accumulated counters (cache/BTAC statistics are folded in).
    pub fn counters(&self) -> Counters {
        let mut c = self.counters.clone();
        c.l1i = self.hier.l1i.stats();
        c.l1d = self.hier.l1d.stats();
        c.l2 = self.hier.l2.stats();
        if let Some(b) = &self.btac {
            c.btac = b.stats();
        }
        c
    }

    /// The configuration in force.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Export the complete timing state for checkpointing. The tracer is
    /// deliberately excluded (it wraps live I/O handles); a restored core
    /// starts with tracing off.
    pub fn snapshot(&self) -> CoreState {
        let sorted = |m: &PcTable<BranchSite>| {
            let mut v = m.entries(|s| s.executed > 0);
            v.sort_by_key(|&(pc, _)| pc);
            v
        };
        let sorted_stalls = |m: &PcTable<StallBreakdown>| {
            let mut v = m.entries(|s| s.total() > 0);
            v.sort_by_key(|&(pc, _)| pc);
            v
        };
        // Flat scoreboard order matches res_index: r0..r31, cr0..cr7, LR,
        // CTR — the layout this snapshot format has always used. The busy
        // mask is derived state and is not serialized.
        let scoreboard: Vec<(u64, ExecUnit)> =
            self.board.ready.iter().copied().zip(self.board.unit.iter().copied()).collect();
        CoreState {
            predictor: self.predictor.snapshot(),
            ras: self.ras.snapshot(),
            btac: self.btac.as_ref().map(Btac::snapshot),
            l1i: self.hier.l1i.snapshot(),
            l1d: self.hier.l1d.snapshot(),
            l2: self.hier.l2.snapshot(),
            scoreboard,
            fxu_free: self.fxu_free.clone(),
            lsu_free: self.lsu_free.clone(),
            bru_free: self.bru_free.clone(),
            fetch_cycle: self.fetch_cycle,
            fetched_this_cycle: self.fetched_this_cycle,
            pending_redirect: self.pending_redirect,
            last_fetch_line: self.last_fetch_line,
            group_dispatch: self.group_dispatch,
            group_len: self.group_len,
            group_has_branch: self.group_has_branch,
            last_commit: self.last_commit,
            commit_new_group: self.commit_new_group,
            rob: self.rob.iter().copied().collect(),
            counters: self.counters.clone(),
            branch_sites: self.branch_sites.as_ref().map(sorted),
            stall_sites: self.stall_sites.as_ref().map(sorted_stalls),
            dir_mispredicts_seen: self.dir_mispredicts_seen,
            interval_insns: self.interval_insns,
            interval_start: self.interval_start,
        }
    }

    /// Reinstall a snapshot taken from a core with the *same*
    /// configuration. The active tracer is left untouched.
    ///
    /// # Errors
    ///
    /// Returns a message when any component's geometry (predictor tables,
    /// caches, unit pools, BTAC presence) does not match this core.
    pub fn restore(&mut self, state: &CoreState) -> Result<(), String> {
        self.predictor.restore(&state.predictor)?;
        self.ras.restore(&state.ras)?;
        match (&mut self.btac, &state.btac) {
            (None, None) => {}
            (Some(b), Some(s)) => b.restore(s)?,
            (Some(_), None) => return Err("snapshot has no BTAC state, core has a BTAC".into()),
            (None, Some(_)) => return Err("snapshot has BTAC state, core has none".into()),
        }
        self.hier.l1i.restore(&state.l1i).map_err(|e| format!("l1i: {e}"))?;
        self.hier.l1d.restore(&state.l1d).map_err(|e| format!("l1d: {e}"))?;
        self.hier.l2.restore(&state.l2).map_err(|e| format!("l2: {e}"))?;
        if state.scoreboard.len() != RES_SLOTS {
            return Err(format!(
                "scoreboard snapshot has {} entries, want {}",
                state.scoreboard.len(),
                RES_SLOTS
            ));
        }
        for (i, &(ready, unit)) in state.scoreboard.iter().enumerate() {
            self.board.ready[i] = ready;
            self.board.unit[i] = unit;
        }
        // No dispatch frontier to compare against here: conservatively mark
        // every written slot busy (a superset never changes results).
        self.board.assume_busy();
        for (pool, src, name) in [
            (&mut self.fxu_free, &state.fxu_free, "fxu"),
            (&mut self.lsu_free, &state.lsu_free, "lsu"),
            (&mut self.bru_free, &state.bru_free, "bru"),
        ] {
            if pool.len() != src.len() {
                return Err(format!(
                    "{name} pool has {} units, snapshot {}",
                    pool.len(),
                    src.len()
                ));
            }
            pool.copy_from_slice(src);
        }
        self.fetch_cycle = state.fetch_cycle;
        self.fetched_this_cycle = state.fetched_this_cycle;
        self.pending_redirect = state.pending_redirect;
        self.last_fetch_line = state.last_fetch_line;
        self.group_dispatch = state.group_dispatch;
        self.group_len = state.group_len;
        self.group_has_branch = state.group_has_branch;
        self.last_commit = state.last_commit;
        self.commit_new_group = state.commit_new_group;
        self.rob = state.rob.iter().copied().collect();
        self.counters = state.counters.clone();
        self.branch_sites = state
            .branch_sites
            .as_ref()
            .map(|v| PcTable::from_entries(self.code_base, self.code_words, v));
        self.stall_sites = state
            .stall_sites
            .as_ref()
            .map(|v| PcTable::from_entries(self.code_base, self.code_words, v));
        self.dir_mispredicts_seen = state.dir_mispredicts_seen;
        self.interval_insns = state.interval_insns;
        self.interval_start = state.interval_start;
        Ok(())
    }

    /// Flip one low-order bit of a direction-predictor counter (fault
    /// injection). Timing-only state: accuracy can suffer, results cannot.
    pub fn corrupt_predictor(&mut self, selector: u64) {
        self.predictor.corrupt(selector);
    }

    /// Invalidate one cache way slot chosen by `selector`, spread across
    /// L1I/L1D/L2 (fault injection: a dropped line). Returns whether a
    /// valid line was actually lost.
    pub fn drop_cache_line(&mut self, selector: u64) -> bool {
        let cache = match selector % 3 {
            0 => &mut self.hier.l1i,
            1 => &mut self.hier.l1d,
            _ => &mut self.hier.l2,
        };
        cache.drop_slot((selector / 3) as usize)
    }

    fn unit_pool(&mut self, unit: ExecUnit) -> &mut Vec<u64> {
        match unit {
            ExecUnit::Fxu => &mut self.fxu_free,
            ExecUnit::Lsu => &mut self.lsu_free,
            ExecUnit::Bru => &mut self.bru_free,
        }
    }

    fn latency(&self, st: &StaticTiming, mem_latency: u64) -> u64 {
        match st.lat {
            LatencyClass::Simple => {
                if st.is_predicated() {
                    self.cfg.lat_simple + self.cfg.lat_predicated_extra
                } else {
                    self.cfg.lat_simple
                }
            }
            LatencyClass::Mul => self.cfg.lat_mul,
            LatencyClass::Div => self.cfg.lat_div,
            LatencyClass::Load => mem_latency,
            LatencyClass::Store => 1,
            LatencyClass::Branch => 1,
        }
    }

    /// Schedule one committed instruction through the pipeline model.
    /// Updates all *dynamic* state (scoreboard, pools, caches, predictor,
    /// stall partition, branch counters, stall/branch site heatmaps) but
    /// none of the per-class retirement counters — those are folded in by
    /// [`TimingCore::retire`] per instruction or by
    /// [`TimingCore::flush_block`] per block.
    fn schedule(&mut self, st: &StaticTiming, pc: u32, event: StepEvent) -> Sched {
        let cfg_group = self.cfg.group_size;
        let mut delay = StallClass::None;

        // ---------------- FETCH ----------------
        if let Some((resume, reason)) = self.pending_redirect.take() {
            if resume > self.fetch_cycle {
                self.fetch_cycle = resume;
                self.fetched_this_cycle = 0;
                delay = reason;
            }
        }
        // Reorder-window limit: the oldest in-flight instruction must have
        // committed before a new one can enter.
        if self.rob.len() >= self.rob_cap {
            let freed = self.rob.pop_front().expect("rob nonempty");
            if freed > self.fetch_cycle {
                self.fetch_cycle = freed;
                self.fetched_this_cycle = 0;
                if delay == StallClass::None {
                    delay = StallClass::WindowFull;
                }
            }
        }
        // Instruction-cache access per line transition.
        let line = (pc as u64) >> self.fetch_line_shift;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let lat = self.hier.fetch(pc);
            let extra = lat.saturating_sub(self.cfg.l1i.hit_latency);
            if extra > 0 {
                self.fetch_cycle += extra;
                self.fetched_this_cycle = 0;
                if delay == StallClass::None {
                    delay = StallClass::ICache;
                }
            }
        }
        if self.fetched_this_cycle >= self.cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        let fetch_time = self.fetch_cycle;
        self.fetched_this_cycle += 1;

        // ---------------- DISPATCH (group formation) ----------------
        let close_group = self.group_len >= cfg_group || (st.is_branch() && self.group_has_branch);
        if close_group {
            self.group_dispatch += 1;
            self.group_len = 0;
            self.group_has_branch = false;
            self.commit_new_group = true;
        }
        let earliest_dispatch = fetch_time + self.cfg.frontend_depth;
        if earliest_dispatch > self.group_dispatch {
            // A fresh group cannot dispatch before its instructions arrive;
            // later arrivals push the whole group (approximation).
            self.group_dispatch = earliest_dispatch;
        }
        self.group_len += 1;
        if st.is_branch() {
            self.group_has_branch = true;
        }
        let dispatch = self.group_dispatch;

        // ---------------- ISSUE ----------------
        let mut ready = dispatch;
        let mut blocking_unit = ExecUnit::Bru;
        let mut data_wait = false;
        // Fast path: when no source has a potentially-outstanding producer
        // the scan cannot raise `ready` (busy is a superset of slots with
        // ready > dispatch, and dispatch never decreases), so skipping it
        // is exact. Otherwise scan in `reads` order — the blocking unit is
        // taken from the FIRST source reaching the max ready cycle, so the
        // order is part of the observable stall attribution.
        if st.src_mask & self.board.busy != 0 {
            let mut settled = 0u64;
            for res in st.reads.iter() {
                let i = res_index(res);
                let r = self.board.ready[i];
                if r > ready {
                    ready = r;
                    blocking_unit = self.board.unit[i];
                    data_wait = true;
                }
                if r <= dispatch {
                    settled |= 1 << i;
                }
            }
            self.board.busy &= !settled;
        }
        let unit = st.unit;
        let div_latency = self.cfg.lat_div;
        let pool = self.unit_pool(unit);
        // Earliest-available instance.
        let (slot, &slot_free) =
            pool.iter().enumerate().min_by_key(|&(_, &f)| f).expect("unit pool nonempty");
        let issue = ready.max(slot_free);
        let unit_wait = slot_free > ready;
        // Occupancy: divides hog the unit; everything else pipelines.
        let occupy = if matches!(st.lat, LatencyClass::Div) { div_latency } else { 1 };
        pool[slot] = issue + occupy;

        // ---------------- EXECUTE ----------------
        let mem_latency = match event.mem {
            Some((addr, _, is_store)) => {
                let lat = self.hier.data(addr);
                if !is_store && lat > self.cfg.l1d.hit_latency {
                    data_wait = true;
                }
                if is_store {
                    1
                } else {
                    lat
                }
            }
            None => 0,
        };
        let complete = issue + self.latency(st, mem_latency);

        // ---------------- WRITEBACK ----------------
        for res in st.writes.iter() {
            let i = res_index(res);
            self.board.ready[i] = complete;
            self.board.unit[i] = unit;
            self.board.busy |= 1 << i;
        }

        // ---------------- BRANCH RESOLUTION ----------------
        if let Some((taken, target)) = event.branch {
            self.account_branch(st, pc, fetch_time, complete, taken, target);
        }

        // ---------------- COMMIT ----------------
        let min_commit =
            if self.commit_new_group { self.last_commit + 1 } else { self.last_commit };
        let commit = complete.max(min_commit);
        // Attribute completion-stall cycles beyond the structural 1/group.
        let gap = commit.saturating_sub(min_commit);
        let reason = if gap == 0 {
            StallClass::None
        } else if delay != StallClass::None {
            delay
        } else if event.mem.is_some_and(|(_, _, is_st)| !is_st)
            && mem_latency > self.cfg.l1d.hit_latency
        {
            StallClass::LoadMiss
        } else if (data_wait && blocking_unit == ExecUnit::Fxu)
            || (unit_wait && unit == ExecUnit::Fxu)
        {
            StallClass::FxuChain
        } else if data_wait && blocking_unit == ExecUnit::Lsu {
            StallClass::LoadMiss
        } else {
            StallClass::Other
        };
        if gap > 0 {
            self.counters.stalls.add(reason, gap);
            if let Some(sites) = &mut self.stall_sites {
                sites.slot(pc).add(reason, gap);
            }
        }
        self.commit_new_group = false;
        self.last_commit = commit;
        self.rob.push_back(commit);
        if self.rob.len() > self.rob_cap {
            self.rob.pop_front();
        }
        Sched { fetch: fetch_time, dispatch, issue, complete, commit, reason, gap }
    }

    /// Fold one instruction's per-class counts, advance the cycle counter,
    /// and push an interval sample when one is due.
    fn count_one(&mut self, st: &StaticTiming, commit: u64) {
        let c = &mut self.counters;
        c.instructions += 1;
        c.cycles = c.cycles.max(commit);
        match st.unit {
            ExecUnit::Fxu => c.fxu_ops += 1,
            ExecUnit::Lsu => c.lsu_ops += 1,
            ExecUnit::Bru => {}
        }
        if st.is_compare() {
            c.compares += 1;
        }
        if st.is_predicated() {
            c.predicated_ops += 1;
        }
        if st.is_load() {
            c.loads += 1;
        }
        if st.is_store() {
            c.stores += 1;
        }
        if self.interval_insns > 0 && c.instructions.is_multiple_of(self.interval_insns) {
            let (i0, cy0, m0) = self.interval_start;
            let di = c.instructions - i0;
            let dc = c.cycles.saturating_sub(cy0).max(1);
            let dm = c.branches.direction_mispredictions - m0;
            let cond =
                (di as f64 * c.branches.conditional as f64 / c.instructions.max(1) as f64).max(1.0);
            c.intervals.push(IntervalSample {
                instructions: c.instructions,
                cycles: c.cycles,
                ipc: di as f64 / dc as f64,
                mispredict_rate: dm as f64 / cond,
            });
            self.interval_start = (c.instructions, c.cycles, c.branches.direction_mispredictions);
        }
    }

    /// Account one committed instruction; returns the cycle it commits.
    ///
    /// Derives the [`StaticTiming`] record on the fly and runs the same
    /// scheduler as the batched path, so the per-instruction reference
    /// loop and the batched loop are identical by construction.
    pub fn retire(&mut self, r: Retired<'_>) -> u64 {
        let st = StaticTiming::of(r.insn);
        let s = self.schedule(&st, r.pc, r.event);
        self.count_one(&st, s.commit);
        // One discriminant test when tracing is off; the record is built
        // only on the cold path.
        if !self.tracer.is_off() {
            self.emit_trace(
                &r, s.fetch, s.dispatch, s.issue, s.complete, s.commit, s.reason, s.gap,
            );
        }
        s.commit
    }

    /// Account one committed instruction from its precomputed static
    /// timing record, deferring the per-class counter increments to a
    /// later [`TimingCore::flush_block`]. Only valid when no tracer or
    /// interval sampling is active (see
    /// [`TimingCore::needs_per_insn_retire`]); callers accumulate the
    /// class counts per block from the sidecar's prefix sums.
    #[inline]
    pub fn retire_batched(&mut self, st: &StaticTiming, pc: u32, event: StepEvent) -> u64 {
        self.schedule(st, pc, event).commit
    }

    /// Fold a block's accumulated per-class counts into [`Counters`] and
    /// advance the cycle counter to the last commit. `last_commit` is
    /// monotonically non-decreasing, so taking it once per block equals
    /// the per-instruction `max` fold.
    pub fn flush_block(&mut self, d: ClassCounts) {
        let c = &mut self.counters;
        c.instructions += d.executed;
        c.fxu_ops += d.fxu;
        c.lsu_ops += d.lsu;
        c.compares += d.compares;
        c.predicated_ops += d.predicated;
        c.loads += d.loads;
        c.stores += d.stores;
        c.cycles = c.cycles.max(self.last_commit);
    }

    /// Cycle of the most recent commit (0 before the first retirement).
    /// Monotonically non-decreasing; the machine's telemetry hooks read
    /// it once per retired block to feed the retire-latency histogram.
    #[inline]
    pub fn last_commit(&self) -> u64 {
        self.last_commit
    }

    /// Whether retire-time bookkeeping (tracing, interval sampling)
    /// requires visiting every instruction individually, ruling out the
    /// block-batched commit path.
    pub fn needs_per_insn_retire(&self) -> bool {
        self.interval_insns > 0 || !self.tracer.is_off()
    }

    /// Build and deliver one pipeline event record (kept out of the retire
    /// fast path; only runs when a tracer is installed).
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn emit_trace(
        &mut self,
        r: &Retired<'_>,
        fetch: u64,
        dispatch: u64,
        issue: u64,
        complete: u64,
        commit: u64,
        stall: StallClass,
        stall_cycles: u64,
    ) {
        // Any redirect pending here was installed by THIS instruction's
        // branch resolution: older redirects were consumed at fetch.
        let redirect = r
            .event
            .branch
            .and(self.pending_redirect)
            .map(|(resume, cause)| TraceRedirect { resume, cause });
        let record = InsnTrace {
            seq: self.counters.instructions,
            pc: r.pc,
            disasm: r.insn.to_string(),
            fetch,
            dispatch,
            issue,
            complete,
            commit,
            stall,
            stall_cycles,
            redirect,
        };
        self.tracer.record(&record);
    }

    fn account_branch(
        &mut self,
        st: &StaticTiming,
        pc: u32,
        fetch_time: u64,
        resolve: u64,
        taken: bool,
        target: u32,
    ) {
        let c = &mut self.counters;
        c.branches.total += 1;
        let conditional = st.is_conditional_branch();
        if conditional {
            c.branches.conditional += 1;
        }
        if taken {
            c.branches.taken += 1;
        }

        // Direction prediction (conditional branches only — unconditional
        // branches and bdnz-with-known-count still resolve direction in
        // the front end; bdnz direction is still predicted dynamically,
        // matching POWER5, which predicts all bc forms).
        let mut direction_mispredict = false;
        if conditional {
            let predicted = self.predictor.predict(pc);
            self.predictor.update(pc, taken);
            if let Some(sites) = &mut self.branch_sites {
                let site = sites.slot(pc);
                site.executed += 1;
                site.taken += taken as u64;
                site.mispredicted += (predicted != taken) as u64;
            }
            if predicted != taken {
                direction_mispredict = true;
                c.branches.direction_mispredictions += 1;
                // Wrong-path fetch speculatively pushes/pops the link
                // stack; model the occasional corruption that survives the
                // flush (POWER5's link stack is not checkpointed), which
                // is what produces the paper's small residue of *target*
                // mispredictions next to the dominant direction ones.
                self.dir_mispredicts_seen += 1;
                if self.dir_mispredicts_seen.is_multiple_of(20) {
                    let _ = self.ras.pop();
                }
            }
        }

        // Call/return bookkeeping for target prediction.
        if st.is_call() {
            self.ras.push(pc.wrapping_add(4));
        }
        let is_return = st.is_return();

        // Target prediction for taken branches.
        let mut target_mispredict = false;
        let mut btac_covered = false;
        if taken && !direction_mispredict {
            if is_return {
                match self.ras.pop() {
                    Some(pred) if pred == target => {}
                    _ => target_mispredict = true,
                }
            } else if st.is_bcctr() {
                // CTR targets resolve late; treat like a normal taken
                // branch (bubble), never a silent mispredict.
            }
            if !target_mispredict {
                if let Some(btac) = &mut self.btac {
                    let predicted = btac.lookup(pc);
                    btac.update(pc, predicted, target);
                    match predicted {
                        Some(nia) if nia == target => btac_covered = true,
                        Some(_) => target_mispredict = true,
                        None => {}
                    }
                }
            }
        } else if is_return && taken {
            // Direction mispredict on a return still consumes the RAS entry.
            let _ = self.ras.pop();
        }

        if target_mispredict {
            c.branches.target_mispredictions += 1;
        }

        // Front-end consequences, in priority order.
        if direction_mispredict || target_mispredict {
            let resume = resolve + self.cfg.mispredict_penalty;
            self.pending_redirect = Some((resume, StallClass::Mispredict));
        } else if taken {
            // A correct BTAC prediction removes the NIA-computation bubble;
            // the target-refetch overhead remains either way.
            let bubble = if btac_covered {
                self.cfg.fetch_align_penalty
            } else {
                self.cfg.fetch_align_penalty + self.cfg.effective_taken_penalty()
            };
            // Taken branch ends the fetch packet; the bubble shows up as a
            // completion stall only if the window cannot hide it (the gap
            // is attributed at the next commit).
            let resume = fetch_time + 1 + bubble;
            self.pending_redirect = Some((resume, StallClass::TakenBubble));
        }
    }
}

/// Serializable [`TimingCore`] state — every field the retire loop reads,
/// minus the tracer (live I/O) and the configuration (supplied by the
/// caller at restore time, which is what makes geometry mismatches
/// detectable instead of silent).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreState {
    /// Direction-predictor tables.
    pub predictor: PredictorState,
    /// Link stack.
    pub ras: RasState,
    /// BTAC entries (`None` when the core has no BTAC).
    pub btac: Option<BtacState>,
    /// L1 instruction cache.
    pub l1i: CacheState,
    /// L1 data cache.
    pub l1d: CacheState,
    /// Unified L2.
    pub l2: CacheState,
    /// `(ready_cycle, producing_unit)` for r0..r31, cr0..cr7, LR, CTR.
    pub scoreboard: Vec<(u64, ExecUnit)>,
    /// Next free cycle per FXU instance.
    pub fxu_free: Vec<u64>,
    /// Next free cycle per LSU instance.
    pub lsu_free: Vec<u64>,
    /// Next free cycle per BRU instance.
    pub bru_free: Vec<u64>,
    /// Cycle the next instruction may be fetched.
    pub fetch_cycle: u64,
    /// Instructions already fetched in `fetch_cycle`.
    pub fetched_this_cycle: usize,
    /// Pending front-end redirect and its cause.
    pub pending_redirect: Option<(u64, StallClass)>,
    /// Last I-cache line touched by fetch (`u64::MAX` = none yet).
    pub last_fetch_line: u64,
    /// Dispatch cycle of the open group.
    pub group_dispatch: u64,
    /// Instructions in the open group.
    pub group_len: usize,
    /// Whether the open group holds a branch.
    pub group_has_branch: bool,
    /// Cycle of the most recent commit.
    pub last_commit: u64,
    /// Whether the next commit opens a new group.
    pub commit_new_group: bool,
    /// Commit cycles of in-flight instructions, oldest first.
    pub rob: Vec<u64>,
    /// Raw accumulated counters (cache/BTAC stats live in their snapshots).
    pub counters: Counters,
    /// Per-PC branch statistics, sorted by PC (`None` = profiling off).
    pub branch_sites: Option<Vec<(u32, BranchSite)>>,
    /// Per-PC stall attribution, sorted by PC (`None` = profiling off).
    pub stall_sites: Option<Vec<(u32, StallBreakdown)>>,
    /// Direction mispredictions seen (link-stack corruption pacing).
    pub dir_mispredicts_seen: u64,
    /// Interval sampling period (0 = off).
    pub interval_insns: u64,
    /// `(instructions, cycles, dir_mispredicts)` at the interval start.
    pub interval_start: (u64, u64, u64),
}

impl std::fmt::Debug for TimingCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingCore")
            .field("cfg", &self.cfg)
            .field("fetch_cycle", &self.fetch_cycle)
            .field("last_commit", &self.last_commit)
            .field("instructions", &self.counters.instructions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_isa::insn::BranchCond;
    use ppc_isa::reg::{CrBit, Gpr};

    fn core() -> TimingCore {
        TimingCore::new(CoreConfig::power5())
    }

    fn simple(rt: u8, ra: u8, rb: u8) -> Instruction {
        Instruction::Add { rt: Gpr(rt), ra: Gpr(ra), rb: Gpr(rb) }
    }

    fn retire_plain(core: &mut TimingCore, insn: &Instruction, pc: u32) -> u64 {
        core.retire(Retired { insn, pc, event: StepEvent::default() })
    }

    #[test]
    fn independent_ops_pack_into_groups() {
        let mut c = core();
        // 50 independent adds (different targets, sources always r1/r2).
        let insns: Vec<Instruction> = (0..25).map(|i| simple(3 + (i % 2) as u8, 1, 2)).collect();
        let mut last = 0;
        for (i, insn) in insns.iter().enumerate() {
            last = retire_plain(&mut c, insn, 0x1000 + 4 * i as u32);
        }
        let counters = c.counters();
        assert_eq!(counters.instructions, 25);
        // Group commit caps at 5/cycle: at least ceil(25/5) commit cycles,
        // but only 2 FXUs limit issue to 2/cycle.
        assert!(counters.cycles >= 12, "cycles {}", counters.cycles);
        assert!(last >= 12);
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut c = core();
        // r3 = r3 + r3, 20 times: each must wait for the previous.
        let insn = simple(3, 3, 3);
        let mut commits = Vec::new();
        for i in 0..20 {
            commits.push(retire_plain(&mut c, &insn, 0x1000 + 4 * i));
        }
        // Commit gaps of >= 1 cycle each after the pipeline fills.
        let tail: Vec<u64> = commits[10..].windows(2).map(|w| w[1] - w[0]).collect();
        assert!(tail.iter().all(|&g| g >= 1), "gaps {tail:?}");
    }

    #[test]
    fn more_fxus_speed_up_independent_work() {
        let run = |fxus: usize| {
            let mut c = TimingCore::new(CoreConfig::power5().with_fxus(fxus));
            for i in 0..400u32 {
                // Rotate targets so instructions are independent.
                let insn = simple(3 + (i % 8) as u8, 1, 2);
                retire_plain(&mut c, &insn, 0x1000 + 4 * i);
            }
            c.counters().cycles
        };
        let two = run(2);
        let four = run(4);
        assert!(four < two, "4 FXUs {four} vs 2 FXUs {two}");
    }

    #[test]
    fn taken_branch_pays_bubble() {
        // Alternating add + always-taken branch: each branch costs the
        // 2-cycle bubble, so IPC sinks well below the no-branch case.
        let run = |penalty: u64| {
            let mut cfg = CoreConfig::power5();
            cfg.taken_branch_penalty = penalty;
            let mut c = TimingCore::new(cfg);
            for i in 0..200u32 {
                let pc = 0x1000 + 8 * i;
                retire_plain(&mut c, &simple(3, 1, 2), pc);
                let b = Instruction::B { offset: 4, link: false };
                c.retire(Retired {
                    insn: &b,
                    pc: pc + 4,
                    event: StepEvent { branch: Some((true, pc + 8)), ..Default::default() },
                });
            }
            c.counters().cycles
        };
        let with_bubble = run(2);
        let without = run(0);
        assert!(with_bubble > without + 300, "bubble {with_bubble} vs none {without}");
    }

    #[test]
    fn mispredicted_branches_cost_redirects() {
        // A conditional branch with a pseudorandom direction stream.
        let mut c = core();
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(1)), offset: 8, link: false };
        let mut x = 99u64;
        for i in 0..500u32 {
            let pc = 0x1000 + 8 * (i % 4);
            retire_plain(&mut c, &simple(3, 1, 2), pc);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (x >> 40) & 1 == 1;
            c.retire(Retired {
                insn: &bc,
                pc: pc + 4,
                event: StepEvent { branch: Some((taken, pc + 12)), ..Default::default() },
            });
        }
        let counters = c.counters();
        assert!(counters.branches.conditional == 500);
        let rate = counters.branches.misprediction_rate();
        assert!(rate > 0.3, "random directions must mispredict, rate {rate}");
        assert!(counters.stalls.branch_mispredict > 1000);
        // Direction dominates target mispredictions (Table I's point).
        assert!(counters.branches.direction_fraction() > 0.99);
    }

    #[test]
    fn btac_removes_taken_bubble_for_stable_branches() {
        let run = |with_btac: bool| {
            let mut cfg = CoreConfig::power5();
            if with_btac {
                cfg = cfg.with_btac(crate::config::BtacConfig::default());
            }
            let mut c = TimingCore::new(cfg);
            for i in 0..300u32 {
                let pc = 0x1000 + 8 * (i % 2); // two hot branches
                retire_plain(&mut c, &simple(3, 1, 2), pc);
                let b = Instruction::B { offset: 16, link: false };
                c.retire(Retired {
                    insn: &b,
                    pc: pc + 4,
                    event: StepEvent { branch: Some((true, pc + 20)), ..Default::default() },
                });
            }
            c.counters()
        };
        let base = run(false);
        let btac = run(true);
        assert!(btac.cycles + 200 < base.cycles, "btac {} vs base {}", btac.cycles, base.cycles);
        assert!(btac.btac.predictions > 200);
        assert!(btac.btac.misprediction_rate() < 0.05);
        assert_eq!(base.btac.lookups, 0);
    }

    #[test]
    fn returns_predicted_by_ras() {
        let mut c = core();
        // call/return pairs: bl then blr back.
        for i in 0..50u32 {
            let call_pc = 0x1000 + 16 * i;
            let bl = Instruction::B { offset: 0x100, link: true };
            c.retire(Retired {
                insn: &bl,
                pc: call_pc,
                event: StepEvent { branch: Some((true, call_pc + 0x100)), ..Default::default() },
            });
            let blr = Instruction::Bclr { cond: BranchCond::Always };
            c.retire(Retired {
                insn: &blr,
                pc: call_pc + 0x100,
                event: StepEvent { branch: Some((true, call_pc + 4)), ..Default::default() },
            });
        }
        let counters = c.counters();
        assert_eq!(counters.branches.target_mispredictions, 0);
    }

    #[test]
    fn load_misses_attributed_to_load_stalls() {
        let mut c = core();
        let ld = Instruction::Lwz { rt: Gpr(3), ra: Gpr(4), disp: 0 };
        // Loads striding by one cache line, then a dependent use.
        for i in 0..200u32 {
            c.retire(Retired {
                insn: &ld,
                pc: 0x1000,
                event: StepEvent {
                    mem: Some((0x10_0000 + 128 * i, 4, false)),
                    ..Default::default()
                },
            });
            retire_plain(&mut c, &simple(5, 3, 3), 0x1004);
        }
        let counters = c.counters();
        assert!(counters.l1d.misses >= 199, "misses {}", counters.l1d.misses);
        assert!(counters.stalls.load > 0);
    }

    #[test]
    fn interval_sampling_emits_points() {
        let mut c = core();
        c.set_interval_sampling(50);
        for i in 0..175u32 {
            retire_plain(&mut c, &simple(3 + (i % 4) as u8, 1, 2), 0x1000 + 4 * i);
        }
        let counters = c.counters();
        assert_eq!(counters.intervals.len(), 3);
        assert!(counters.intervals.iter().all(|s| s.ipc > 0.0));
        assert_eq!(counters.intervals[0].instructions, 50);
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        let mixed = |c: &mut TimingCore, i: u32, x: &mut u64| {
            *x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x1000 + 8 * (i % 16);
            match i % 4 {
                0 => {
                    retire_plain(c, &simple(3 + (i % 4) as u8, 1, 2), pc);
                }
                1 => {
                    let ld = Instruction::Lwz { rt: Gpr(4), ra: Gpr(5), disp: 0 };
                    c.retire(Retired {
                        insn: &ld,
                        pc,
                        event: StepEvent {
                            mem: Some((0x8000 + 64 * (i % 40), 4, false)),
                            ..Default::default()
                        },
                    });
                }
                2 => {
                    let bc = Instruction::Bc {
                        cond: BranchCond::IfTrue(CrBit(0)),
                        offset: 8,
                        link: false,
                    };
                    let taken = (*x >> 40) & 1 == 1;
                    c.retire(Retired {
                        insn: &bc,
                        pc,
                        event: StepEvent { branch: Some((taken, pc + 8)), ..Default::default() },
                    });
                }
                _ => {
                    let bl = Instruction::B { offset: 0x40, link: true };
                    c.retire(Retired {
                        insn: &bl,
                        pc,
                        event: StepEvent { branch: Some((true, pc + 0x40)), ..Default::default() },
                    });
                }
            }
        };
        let cfg = CoreConfig::power5().with_btac(crate::config::BtacConfig::default());
        let mut gold = TimingCore::new(cfg.clone());
        gold.set_branch_site_profiling(true);
        gold.set_stall_site_profiling(true);
        gold.set_interval_sampling(37);
        let (mut xa, mut xb) = (99u64, 99u64);
        for i in 0..500 {
            mixed(&mut gold, i, &mut xa);
        }
        // Re-run the first 200, checkpoint, restore into a fresh core, and
        // replay the remaining 300: every counter must match `gold`.
        let mut first = TimingCore::new(cfg.clone());
        first.set_branch_site_profiling(true);
        first.set_stall_site_profiling(true);
        first.set_interval_sampling(37);
        for i in 0..200 {
            mixed(&mut first, i, &mut xb);
        }
        let snap = first.snapshot();
        let mut resumed = TimingCore::new(cfg);
        resumed.restore(&snap).unwrap();
        for i in 200..500 {
            mixed(&mut resumed, i, &mut xb);
        }
        assert_eq!(resumed.counters(), gold.counters());
        assert_eq!(resumed.branch_sites(), gold.branch_sites());
        assert_eq!(resumed.stall_sites(), gold.stall_sites());
        assert_eq!(resumed.snapshot(), gold.snapshot());
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let snap = TimingCore::new(CoreConfig::power5()).snapshot();
        let mut other = TimingCore::new(CoreConfig::power5().with_fxus(4));
        assert!(other.restore(&snap).is_err());
        let mut btac =
            TimingCore::new(CoreConfig::power5().with_btac(crate::config::BtacConfig::default()));
        assert!(btac.restore(&snap).is_err());
    }

    #[test]
    fn timing_faults_never_break_the_stall_partition() {
        let mut c = core();
        c.set_stall_site_profiling(true);
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(0)), offset: 8, link: false };
        let mut x = 5u64;
        for i in 0..400u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 7 == 0 {
                c.corrupt_predictor(x);
            }
            if i % 11 == 0 {
                c.drop_cache_line(x >> 8);
            }
            let pc = 0x1000 + 8 * (i % 8);
            retire_plain(&mut c, &simple(3, 1, 2), pc);
            c.retire(Retired {
                insn: &bc,
                pc: pc + 4,
                event: StepEvent {
                    branch: Some(((x >> 33) & 1 == 1, pc + 12)),
                    ..Default::default()
                },
            });
        }
        let counters = c.counters();
        let mut summed = StallBreakdown::default();
        for (_, s) in c.stall_sites() {
            summed.merge(&s);
        }
        assert_eq!(summed, counters.stalls, "per-PC stalls no longer partition the aggregate");
    }

    #[test]
    fn counters_conserve_branch_identities() {
        let mut c = core();
        let bc = Instruction::Bc { cond: BranchCond::IfTrue(CrBit(0)), offset: 8, link: false };
        for i in 0..100u32 {
            let taken = i % 3 == 0;
            c.retire(Retired {
                insn: &bc,
                pc: 0x1000,
                event: StepEvent { branch: Some((taken, 0x1008)), ..Default::default() },
            });
        }
        let counters = c.counters();
        assert_eq!(counters.branches.total, 100);
        assert_eq!(counters.branches.conditional, 100);
        assert_eq!(counters.branches.taken, 34);
        assert!(counters.branches.direction_mispredictions <= counters.branches.conditional);
    }
}
