//! Cycle-level POWER5-like core model.
//!
//! This crate is the reproduction's stand-in for IBM's SystemSim full-system
//! simulator configured as a POWER5 (paper Section V). It executes the
//! PowerPC-subset ISA of [`ppc_isa`] functionally while modelling the
//! timing structures the paper's experiments manipulate:
//!
//! * a fetch front end with group formation (up to five instructions per
//!   dispatch group, one branch per group — the POWER5 rule that caps
//!   commit throughput at five per cycle),
//! * branch **direction** prediction ([`predictor`]: bimodal, gshare, or a
//!   POWER5-style tournament predictor) with a full pipeline-redirect
//!   penalty on misprediction,
//! * the POWER5's **2-cycle taken-branch bubble** (3 with SMT) and the
//!   paper's proposed 8-entry scored **BTAC** ([`btac`]) that removes it,
//! * a return-address stack, so branch-to-LR targets mispredict rarely
//!   (giving Table I's direction-vs-target misprediction split),
//! * configurable numbers of **fixed-point units** (2–4, paper Section
//!   VI-C), two load/store units, and a branch unit, with greedy
//!   earliest-slot scheduling and register-dependence tracking,
//! * an L1I/L1D/L2 **cache hierarchy** ([`cache`]) with LRU replacement,
//! * a reorder window sized in dispatch groups (20 × 5, as POWER5),
//! * hardware **performance counters** ([`counters`]) including a
//!   completion-stall (CPI-stack) breakdown and interval time series —
//!   the data behind the paper's Tables I–II and Figure 2,
//! * a SMARTS-style uniform sampling driver ([`machine::Machine::run_sampled`],
//!   paper's reference \[22\]).
//!
//! The simulator core is panic-free on guest misbehaviour: undecodable
//! words and bad memory accesses surface as a typed [`machine::Trap`],
//! runaway programs are cut off by [`machine::Watchdog`] budgets, the
//! complete machine state round-trips through [`machine::Checkpoint`]
//! for bit-exact resume, and [`fault`] provides a seeded fault-injection
//! plan with containment checking. The [`oracle`] module adds a
//! golden-model lockstep checker (a deliberately simple reference
//! interpreter compared against the fast path per committed
//! instruction, behind [`oracle::LockstepMode`]) and a divergence
//! shrinker that delta-debugs a mismatch down to a minimal window.
//!
//! # Example
//!
//! ```
//! use power5_sim::{config::CoreConfig, machine::Machine};
//!
//! let prog = ppc_asm::assemble("
//! entry:
//!     li r3, 0
//!     li r4, 100
//!     mtctr r4
//! loop:
//!     addi r3, r3, 1
//!     bdnz loop
//!     trap
//! ", 0x1000)?;
//! let mut m = Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 0x100000);
//! let result = m.run_timed(u64::MAX)?;
//! assert!(result.halted);
//! assert_eq!(m.cpu().reg(ppc_isa::Gpr(3)), 100);
//! assert!(m.counters().cycles > 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btac;
pub mod cache;
pub mod config;
pub mod core;
pub mod counters;
pub mod fault;
mod fuse;
pub mod lanes;
pub mod machine;
pub mod oracle;
pub mod predictor;
pub mod telemetry;
pub mod trace;

pub use config::CoreConfig;
pub use core::StaticTiming;
pub use counters::{ClassCounts, Counters, StallBreakdown, StallClass};
pub use fault::{FaultKind, FaultPlan, FaultSpec, InjectionWindow, XorShift64};
pub use fuse::FusionStats;
pub use lanes::{run_batch_functional, BatchRun, LaneExit, LaneGang, LaneRun, LaneStats, Trunk};
pub use machine::{
    Checkpoint, Machine, RunResult, StopReason, Trap, TrapCause, Watchdog, WatchdogKind,
};
pub use oracle::{shrink_divergence, ArchField, Divergence, LockstepMode, Oracle, ShrunkRepro};
pub use telemetry::{GuestProfiler, Histogram, HotRegion, MetricsRegistry, ProfilerReport};
pub use trace::{SymbolMap, Tracer};
