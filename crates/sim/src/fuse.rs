//! Macro-op fusion and direct-threaded block dispatch — the JIT-class
//! functional tier (DESIGN.md §16).
//!
//! At first dispatch of a basic block, a peephole pass over the dense
//! pre-decoded table folds recognized idioms into superinstructions:
//!
//! * `cmp` + conditional branch ([`FusedOp::CmpBc`]),
//! * load + ALU op ([`FusedOp::LoadAlu`]),
//! * ALU op + store ([`FusedOp::AluStore`]),
//! * `cmp` + `isel` ([`FusedOp::CmpSelect`]), and
//! * the DP hammock `cmp; bc +8; alu` ([`FusedOp::Hammock`]) — the
//!   3-instruction branchy `if (a<b) a=b` the paper's isel/max ISA
//!   remedy targets.
//!
//! The lowered form is direct-threaded: a flat `Vec` of a dense fused
//! opcode enum with pre-extracted operands (register indices,
//! sign-extended immediates, precomputed branch targets and `rlwinm`
//! masks), executed without per-instruction re-fetch, re-match, PC
//! writes, or `StepEvent` construction. Every op carries its guest PC
//! and a retired-instruction weight so `Counters`, the guest profiler,
//! and checkpoint instruction counts stay exact; the lockstep oracle
//! verifies fused commits by replaying each op's constituents against
//! the architectural `step` (see `Lockstep::verify_fused`).
//!
//! Fusion is purely a dispatch-level transform: pair handlers execute
//! their constituents *sequentially* with the same semantics as two
//! scalar `step` calls, so any adjacent pair is legal — no dependence
//! analysis is needed. The one cross-block idiom, the hammock, changes
//! profiler block boundaries and is therefore only compiled while no
//! guest profiler is attached (the cache is invalidated when one is).

use crate::telemetry::GuestProfiler;
use ppc_isa::exec::{eval_cond, rlwinm_mask, step, CpuState, MemFault, Memory};
use ppc_isa::insn::{BranchCond, Instruction};
use ppc_isa::reg::{CrBit, Gpr};

/// A register-only operation: no memory access, no control transfer.
/// Executable against [`CpuState`] alone, which is what makes it legal
/// as a fusion partner anywhere (including as a hammock middle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    /// `addi`/`addis` with `RA = 0`: load the precomputed immediate.
    Li {
        rt: Gpr,
        val: u32,
    },
    /// `addi`/`addis` with `RA != 0`; `imm` is pre-extended (and
    /// pre-shifted for `addis`).
    AddImm {
        rt: Gpr,
        ra: Gpr,
        imm: u32,
    },
    Add {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    Subf {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    Neg {
        rt: Gpr,
        ra: Gpr,
    },
    Mullw {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    Divw {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    And {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Or {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Xor {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Ori {
        ra: Gpr,
        rs: Gpr,
        uimm: u32,
    },
    AndiDot {
        ra: Gpr,
        rs: Gpr,
        uimm: u32,
    },
    Xori {
        ra: Gpr,
        rs: Gpr,
        uimm: u32,
    },
    Slw {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Srw {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Sraw {
        ra: Gpr,
        rs: Gpr,
        rb: Gpr,
    },
    Srawi {
        ra: Gpr,
        rs: Gpr,
        sh: u32,
    },
    /// `rlwinm` with the mask baked at compile time.
    Rlwinm {
        ra: Gpr,
        rs: Gpr,
        sh: u32,
        mask: u32,
    },
    Extsb {
        ra: Gpr,
        rs: Gpr,
    },
    Extsh {
        ra: Gpr,
        rs: Gpr,
    },
    Isel {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
        bc: CrBit,
    },
    Maxw {
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    Mflr {
        rt: Gpr,
    },
    Mtlr {
        rs: Gpr,
    },
    Mfctr {
        rt: Gpr,
    },
    Mtctr {
        rs: Gpr,
    },
}

impl AluOp {
    /// Execute against register state. Mirrors `ppc_isa::exec::step`
    /// for the corresponding instruction, minus the PC update.
    #[inline(always)]
    pub(crate) fn exec(self, cpu: &mut CpuState) {
        match self {
            AluOp::Li { rt, val } => cpu.set_reg(rt, val),
            AluOp::AddImm { rt, ra, imm } => {
                let v = cpu.reg(ra).wrapping_add(imm);
                cpu.set_reg(rt, v);
            }
            AluOp::Add { rt, ra, rb } => {
                let v = cpu.reg(ra).wrapping_add(cpu.reg(rb));
                cpu.set_reg(rt, v);
            }
            AluOp::Subf { rt, ra, rb } => {
                let v = cpu.reg(rb).wrapping_sub(cpu.reg(ra));
                cpu.set_reg(rt, v);
            }
            AluOp::Neg { rt, ra } => cpu.set_reg(rt, (cpu.reg(ra) as i32).wrapping_neg() as u32),
            AluOp::Mullw { rt, ra, rb } => {
                let v = (cpu.reg(ra) as i32).wrapping_mul(cpu.reg(rb) as i32);
                cpu.set_reg(rt, v as u32);
            }
            AluOp::Divw { rt, ra, rb } => {
                let a = cpu.reg(ra) as i32;
                let b = cpu.reg(rb) as i32;
                let v = if b == 0 || (a == i32::MIN && b == -1) { 0 } else { a.wrapping_div(b) };
                cpu.set_reg(rt, v as u32);
            }
            AluOp::And { ra, rs, rb } => cpu.set_reg(ra, cpu.reg(rs) & cpu.reg(rb)),
            AluOp::Or { ra, rs, rb } => cpu.set_reg(ra, cpu.reg(rs) | cpu.reg(rb)),
            AluOp::Xor { ra, rs, rb } => cpu.set_reg(ra, cpu.reg(rs) ^ cpu.reg(rb)),
            AluOp::Ori { ra, rs, uimm } => cpu.set_reg(ra, cpu.reg(rs) | uimm),
            AluOp::AndiDot { ra, rs, uimm } => {
                let v = cpu.reg(rs) & uimm;
                cpu.set_reg(ra, v);
                cpu.cr.set_signed_cmp(ppc_isa::reg::CrField(0), v as i32, 0);
            }
            AluOp::Xori { ra, rs, uimm } => cpu.set_reg(ra, cpu.reg(rs) ^ uimm),
            AluOp::Slw { ra, rs, rb } => {
                let sh = cpu.reg(rb) & 0x3F;
                let v = if sh > 31 { 0 } else { cpu.reg(rs) << sh };
                cpu.set_reg(ra, v);
            }
            AluOp::Srw { ra, rs, rb } => {
                let sh = cpu.reg(rb) & 0x3F;
                let v = if sh > 31 { 0 } else { cpu.reg(rs) >> sh };
                cpu.set_reg(ra, v);
            }
            AluOp::Sraw { ra, rs, rb } => {
                let sh = cpu.reg(rb) & 0x3F;
                let s = cpu.reg(rs) as i32;
                let v = if sh > 31 { s >> 31 } else { s >> sh };
                cpu.set_reg(ra, v as u32);
            }
            AluOp::Srawi { ra, rs, sh } => cpu.set_reg(ra, ((cpu.reg(rs) as i32) >> sh) as u32),
            AluOp::Rlwinm { ra, rs, sh, mask } => {
                cpu.set_reg(ra, cpu.reg(rs).rotate_left(sh) & mask);
            }
            AluOp::Extsb { ra, rs } => cpu.set_reg(ra, cpu.reg(rs) as u8 as i8 as i32 as u32),
            AluOp::Extsh { ra, rs } => cpu.set_reg(ra, cpu.reg(rs) as u16 as i16 as i32 as u32),
            AluOp::Isel { rt, ra, rb, bc } => {
                let v = if cpu.cr.bit(bc) { cpu.reg_or_zero(ra) } else { cpu.reg(rb) };
                cpu.set_reg(rt, v);
            }
            AluOp::Maxw { rt, ra, rb } => {
                let v = (cpu.reg(ra) as i32).max(cpu.reg(rb) as i32);
                cpu.set_reg(rt, v as u32);
            }
            AluOp::Mflr { rt } => cpu.set_reg(rt, cpu.lr),
            AluOp::Mtlr { rs } => cpu.lr = cpu.reg(rs),
            AluOp::Mfctr { rt } => cpu.set_reg(rt, cpu.ctr),
            AluOp::Mtctr { rs } => cpu.ctr = cpu.reg(rs),
        }
    }
}

/// A condition-register compare, the head of three fusion idioms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    SignedImm { crf: ppc_isa::reg::CrField, ra: Gpr, imm: i32 },
    Signed { crf: ppc_isa::reg::CrField, ra: Gpr, rb: Gpr },
    UnsignedImm { crf: ppc_isa::reg::CrField, ra: Gpr, uimm: u32 },
    Unsigned { crf: ppc_isa::reg::CrField, ra: Gpr, rb: Gpr },
}

impl CmpOp {
    #[inline(always)]
    pub(crate) fn exec(self, cpu: &mut CpuState) {
        match self {
            CmpOp::SignedImm { crf, ra, imm } => {
                cpu.cr.set_signed_cmp(crf, cpu.reg(ra) as i32, imm);
            }
            CmpOp::Signed { crf, ra, rb } => {
                cpu.cr.set_signed_cmp(crf, cpu.reg(ra) as i32, cpu.reg(rb) as i32);
            }
            CmpOp::UnsignedImm { crf, ra, uimm } => {
                cpu.cr.set_unsigned_cmp(crf, cpu.reg(ra), uimm);
            }
            CmpOp::Unsigned { crf, ra, rb } => {
                cpu.cr.set_unsigned_cmp(crf, cpu.reg(ra), cpu.reg(rb));
            }
        }
    }
}

/// A guest load. Faults propagate with the op's PC so traps surface at
/// the same instruction as the scalar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadOp {
    Lwz { rt: Gpr, ra: Gpr, disp: u32 },
    Lwzx { rt: Gpr, ra: Gpr, rb: Gpr },
    Lbz { rt: Gpr, ra: Gpr, disp: u32 },
    Lbzx { rt: Gpr, ra: Gpr, rb: Gpr },
    Lhz { rt: Gpr, ra: Gpr, disp: u32 },
    Lha { rt: Gpr, ra: Gpr, disp: u32 },
}

impl LoadOp {
    #[inline(always)]
    pub(crate) fn exec(self, cpu: &mut CpuState, mem: &Memory) -> Result<(), MemFault> {
        match self {
            LoadOp::Lwz { rt, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                cpu.set_reg(rt, mem.load_u32(addr)?);
            }
            LoadOp::Lwzx { rt, ra, rb } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(cpu.reg(rb));
                cpu.set_reg(rt, mem.load_u32(addr)?);
            }
            LoadOp::Lbz { rt, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                cpu.set_reg(rt, mem.load_u8(addr)? as u32);
            }
            LoadOp::Lbzx { rt, ra, rb } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(cpu.reg(rb));
                cpu.set_reg(rt, mem.load_u8(addr)? as u32);
            }
            LoadOp::Lhz { rt, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                cpu.set_reg(rt, mem.load_u16(addr)? as u32);
            }
            LoadOp::Lha { rt, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                cpu.set_reg(rt, mem.load_u16(addr)? as i16 as i32 as u32);
            }
        }
        Ok(())
    }
}

/// A guest store; `exec` reports `(address, width)` so the dispatch
/// loop can run the self-modifying-code check against the code region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StoreOp {
    Stw { rs: Gpr, ra: Gpr, disp: u32 },
    Stwx { rs: Gpr, ra: Gpr, rb: Gpr },
    Stb { rs: Gpr, ra: Gpr, disp: u32 },
    Sth { rs: Gpr, ra: Gpr, disp: u32 },
}

impl StoreOp {
    #[inline(always)]
    pub(crate) fn exec(self, cpu: &CpuState, mem: &mut Memory) -> Result<(u32, u32), MemFault> {
        match self {
            StoreOp::Stw { rs, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                mem.store_u32(addr, cpu.reg(rs))?;
                Ok((addr, 4))
            }
            StoreOp::Stwx { rs, ra, rb } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(cpu.reg(rb));
                mem.store_u32(addr, cpu.reg(rs))?;
                Ok((addr, 4))
            }
            StoreOp::Stb { rs, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                mem.store_u8(addr, cpu.reg(rs) as u8)?;
                Ok((addr, 1))
            }
            StoreOp::Sth { rs, ra, disp } => {
                let addr = cpu.reg_or_zero(ra).wrapping_add(disp);
                mem.store_u16(addr, cpu.reg(rs) as u16)?;
                Ok((addr, 2))
            }
        }
    }
}

/// The dense fused opcode set dispatched by the direct-threaded loop.
/// Branch targets, fall-through PCs, and link values are precomputed;
/// the handlers never read or write the PC except to publish the block
/// exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedOp {
    Alu(AluOp),
    Cmp(CmpOp),
    Load(LoadOp),
    Store(StoreOp),
    /// load + any ALU op (weight 2).
    LoadAlu {
        load: LoadOp,
        alu: AluOp,
    },
    /// any ALU op + store (weight 2); the store retires last, so a
    /// fault or SMC cut at the store leaves the ALU result committed,
    /// exactly as two scalar steps would.
    AluStore {
        alu: AluOp,
        store: StoreOp,
    },
    /// `cmp` + `isel` (weight 2) — the paper's predicated select idiom.
    CmpSelect {
        cmp: CmpOp,
        rt: Gpr,
        ra: Gpr,
        rb: Gpr,
        bc: CrBit,
    },
    /// `cmp` + conditional branch (weight 2); always ends the block.
    CmpBc {
        cmp: CmpOp,
        cond: BranchCond,
        target: u32,
        fall: u32,
        link: bool,
    },
    /// The DP hammock `cmp; bc join; alu` where the branch skips
    /// exactly the one ALU instruction (`target == bc_pc + 8`): weight
    /// 2 when taken, 3 when the middle executes; both paths exit at
    /// `join`. Compiled only while no guest profiler is attached.
    Hammock {
        cmp: CmpOp,
        cond: BranchCond,
        mid: AluOp,
        join: u32,
    },
    /// Unconditional branch; `ret` is the precomputed link value.
    B {
        target: u32,
        link: bool,
        ret: u32,
    },
    Bc {
        cond: BranchCond,
        target: u32,
        fall: u32,
        link: bool,
    },
    Bclr {
        cond: BranchCond,
        fall: u32,
    },
    Bcctr {
        cond: BranchCond,
        fall: u32,
    },
    /// `trap`: halt with the PC parked at the trap instruction.
    Halt,
    /// Escape hatch for instructions without a specialized handler
    /// (future ISA growth): full scalar `step` with the PC restored
    /// first. Treated as a store by the checked path so it always
    /// falls back to per-instruction verification there.
    Other(Instruction),
}

impl FusedOp {
    /// Maximum retired-instruction weight (the hammock's dynamic
    /// weight is 2 or 3; everything else is static).
    #[inline]
    pub(crate) fn max_weight(self) -> u32 {
        match self {
            FusedOp::LoadAlu { .. }
            | FusedOp::AluStore { .. }
            | FusedOp::CmpSelect { .. }
            | FusedOp::CmpBc { .. } => 2,
            FusedOp::Hammock { .. } => 3,
            _ => 1,
        }
    }

    /// Whether the op can write guest memory. The lockstep-checked
    /// loop routes these to the scalar per-instruction path, which
    /// keeps oracle replay free of store-reordering and SMC hazards.
    #[inline]
    pub(crate) fn has_store(self) -> bool {
        matches!(self, FusedOp::Store(_) | FusedOp::AluStore { .. } | FusedOp::Other(_))
    }
}

/// One direct-threaded slot: the fused op plus the guest PC of its
/// first constituent instruction (fault attribution, oracle replay).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpEntry {
    pub op: FusedOp,
    pub pc: u32,
}

/// Static per-block idiom counts, accumulated into [`FusionStats`]
/// once per block execution.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IdiomCounts {
    pub cmp_branch: u32,
    pub load_alu: u32,
    pub alu_store: u32,
    pub cmp_select: u32,
    pub hammock: u32,
}

impl IdiomCounts {
    /// Total superinstruction (pair/triple) ops in the block.
    fn pairs(self) -> u32 {
        self.cmp_branch + self.load_alu + self.alu_store + self.cmp_select + self.hammock
    }

    /// Constituent instructions covered by superinstructions, at
    /// maximum hammock weight.
    fn pair_insns(self) -> u32 {
        2 * (self.cmp_branch + self.load_alu + self.alu_store + self.cmp_select) + 3 * self.hammock
    }
}

/// One basic block lowered to direct-threaded form.
#[derive(Debug, Clone)]
pub(crate) struct FusedBlock {
    /// Upper bound on instructions retired by one execution; the
    /// dispatch loop only enters the block when the full bound fits
    /// the remaining budget and watchdog allowance, which is what
    /// makes mid-block budget cuts identical to the scalar path.
    pub max_retire: u32,
    /// Block exit PC when no terminator fired (the run fell off the
    /// decoded image).
    pub end_pc: u32,
    /// Times this compiled block was dispatched (folded into
    /// [`FusionStats`] on demand — one add on the hot path instead of
    /// one per counter).
    pub execs: u64,
    /// The direct-threaded op array.
    pub ops: Vec<OpEntry>,
    /// Static idiom counts for [`FusionStats`].
    pub idioms: IdiomCounts,
}

/// Fusion-tier throughput counters, exposed via `Machine::fusion_stats`
/// and surfaced as `fusion.*` metrics by the throughput bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Block executions dispatched through the fused tier.
    pub fused_blocks: u64,
    /// Block dispatches that fell back to the scalar loop (partial
    /// budget, or fusion disabled).
    pub scalar_blocks: u64,
    /// Instructions retired by the fused tier.
    pub fused_insns: u64,
    /// Superinstruction (pair/triple) executions.
    pub fused_ops: u64,
    /// Instructions retired inside superinstructions (static maximum
    /// per block execution; cut blocks may count slightly high).
    pub pair_insns: u64,
    /// `cmp`+branch pair executions.
    pub cmp_branch: u64,
    /// load+ALU pair executions.
    pub load_alu: u64,
    /// ALU+store pair executions.
    pub alu_store: u64,
    /// `cmp`+`isel` pair executions.
    pub cmp_select: u64,
    /// DP-hammock triple executions.
    pub hammock: u64,
}

impl FusionStats {
    /// Fold one compiled block's lifetime execution count into the
    /// aggregate per-idiom counters.
    fn absorb_block(&mut self, b: &FusedBlock) {
        self.fused_blocks += b.execs;
        self.fused_ops += b.execs * u64::from(b.idioms.pairs());
        self.pair_insns += b.execs * u64::from(b.idioms.pair_insns());
        self.cmp_branch += b.execs * u64::from(b.idioms.cmp_branch);
        self.load_alu += b.execs * u64::from(b.idioms.load_alu);
        self.alu_store += b.execs * u64::from(b.idioms.alu_store);
        self.cmp_select += b.execs * u64::from(b.idioms.cmp_select);
        self.hammock += b.execs * u64::from(b.idioms.hammock);
    }

    /// Fused ops retired / total instructions retired through the
    /// functional tier (0 when nothing ran).
    pub fn fused_insn_ratio(&self) -> f64 {
        if self.fused_insns == 0 {
            0.0
        } else {
            self.pair_insns.min(self.fused_insns) as f64 / self.fused_insns as f64
        }
    }
}

/// Why [`FusedCache::drive`] handed control back to the scalar loop.
pub(crate) enum DriveStop {
    /// The next PC has no runnable fused block — misaligned,
    /// undecodable, out of the image, or the block's retire bound no
    /// longer fits the remaining allowance. The caller's scalar loop
    /// resolves it (trap or partial-budget execution).
    Refetch,
    /// A `trap` retired; the machine halts.
    Halted,
    /// A retired store touched the code region; the caller repairs the
    /// decode tables (which clears this cache) and re-dispatches.
    StoredCode { addr: u32, width: u32 },
    /// A memory fault, PC parked at the faulting instruction.
    /// `executed` excludes the faulting instruction.
    Fault(MemFault),
}

/// Result of one [`FusedCache::drive`] call.
pub(crate) struct DriveResult {
    /// Instructions retired across all blocks this call dispatched.
    pub executed: u64,
    pub stop: DriveStop,
}

/// Lazily-populated cache of compiled blocks, parallel to the decode
/// table. Any decode-table patch clears the whole cache (patching is
/// already an O(image) slow path); blocks recompile on next dispatch.
#[derive(Debug, Default)]
pub(crate) struct FusedCache {
    /// `entry[slot]` = block handle + 1, or 0 when slot `slot` has no
    /// compiled block starting there.
    entry: Vec<u32>,
    blocks: Vec<FusedBlock>,
    /// Counters folded out of dropped blocks, plus the live totals
    /// (`fused_insns`, `scalar_blocks`) that are not per-block.
    stats: FusionStats,
}

impl FusedCache {
    pub(crate) fn new(slots: usize) -> FusedCache {
        FusedCache { entry: vec![0; slots], blocks: Vec::new(), stats: FusionStats::default() }
    }

    /// Drop every compiled block (decode table changed, profiler
    /// attached/detached, fusion toggled, or restore), folding their
    /// execution counts into the persistent stats first.
    pub(crate) fn clear(&mut self) {
        for b in &self.blocks {
            self.stats.absorb_block(b);
        }
        self.entry.fill(0);
        self.blocks.clear();
    }

    /// Re-size for a new decode table (restore may change the image).
    pub(crate) fn reset(&mut self, slots: usize) {
        self.clear();
        self.entry.clear();
        self.entry.resize(slots, 0);
    }

    /// Aggregate fusion counters: the folded history plus every live
    /// compiled block.
    pub(crate) fn stats(&self) -> FusionStats {
        let mut s = self.stats;
        for b in &self.blocks {
            s.absorb_block(b);
        }
        s
    }

    /// Account one block dispatch that fell back to the scalar loop.
    #[inline]
    pub(crate) fn note_scalar_block(&mut self) {
        self.stats.scalar_blocks += 1;
    }

    /// The fused dispatch loop: resolve → (compile) → execute compiled
    /// blocks back to back, staying inside this call until something
    /// needs the machine's slow path. This keeps the retire counters in
    /// host registers across blocks instead of round-tripping through
    /// `Machine` fields every block.
    ///
    /// `allowance` is the combined remaining run-budget/watchdog
    /// allowance (≥ 1); a block only executes when its full retire
    /// bound fits, so budget cuts land exactly where the scalar loop
    /// would put them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn drive(
        &mut self,
        cpu: &mut CpuState,
        mem: &mut Memory,
        decoded: &[Instruction],
        run_len: &[u32],
        code_base: u32,
        allow_hammock: bool,
        sabotage: Option<u32>,
        mut allowance: u64,
        mut profiler: Option<&mut GuestProfiler>,
    ) -> DriveResult {
        let code_hi = code_base.wrapping_add((self.entry.len() as u32) * 4);
        let mut executed: u64 = 0;
        let stop = loop {
            let pc = cpu.pc;
            if !pc.is_multiple_of(4) {
                break DriveStop::Refetch;
            }
            let slot = (pc.wrapping_sub(code_base) >> 2) as usize;
            let handle = match self.entry.get(slot) {
                Some(&h) if h != 0 => (h - 1) as usize,
                Some(_) if run_len[slot] > 0 => {
                    let block =
                        compile_block(decoded, run_len, code_base, slot, allow_hammock, sabotage);
                    self.blocks.push(block);
                    let h = self.blocks.len() - 1;
                    self.entry[slot] = h as u32 + 1;
                    h
                }
                _ => break DriveStop::Refetch,
            };
            let block = &mut self.blocks[handle];
            if u64::from(block.max_retire) > allowance {
                break DriveStop::Refetch;
            }
            block.execs += 1;
            let br = run_block(block, cpu, mem, code_base, code_hi);
            executed += br.retired;
            allowance -= br.retired;
            match br.cut {
                Cut::Done => {
                    if let Some(p) = profiler.as_deref_mut() {
                        p.on_block(pc, br.retired as u32);
                    }
                }
                Cut::Halt => {
                    if let Some(p) = profiler.as_deref_mut() {
                        p.on_block(pc, br.retired as u32);
                    }
                    break DriveStop::Halted;
                }
                Cut::StoredCode { addr, width } => {
                    if let Some(p) = profiler.as_deref_mut() {
                        p.on_block(pc, br.retired as u32);
                    }
                    break DriveStop::StoredCode { addr, width };
                }
                Cut::Fault(f) => break DriveStop::Fault(f),
            }
        };
        self.stats.fused_insns += executed;
        DriveResult { executed, stop }
    }

    /// The compiled block starting at `slot`, compiling it on first
    /// use. Returns the handle into [`FusedCache::block`].
    #[inline]
    pub(crate) fn handle_at(
        &mut self,
        slot: usize,
        decoded: &[Instruction],
        run_len: &[u32],
        code_base: u32,
        allow_hammock: bool,
        sabotage: Option<u32>,
    ) -> usize {
        match self.entry[slot] {
            0 => {
                let block =
                    compile_block(decoded, run_len, code_base, slot, allow_hammock, sabotage);
                self.blocks.push(block);
                let handle = self.blocks.len() - 1;
                self.entry[slot] = handle as u32 + 1;
                handle
            }
            h => (h - 1) as usize,
        }
    }

    #[inline]
    pub(crate) fn block(&self, handle: usize) -> &FusedBlock {
        &self.blocks[handle]
    }

    #[inline]
    pub(crate) fn block_mut(&mut self, handle: usize) -> &mut FusedBlock {
        &mut self.blocks[handle]
    }
}

/// Lower `insn` to a register-only op, if it is one.
fn as_alu(insn: &Instruction) -> Option<AluOp> {
    use Instruction::*;
    Some(match *insn {
        Addi { rt, ra, imm } if ra.0 == 0 => AluOp::Li { rt, val: imm as i32 as u32 },
        Addi { rt, ra, imm } => AluOp::AddImm { rt, ra, imm: imm as i32 as u32 },
        Addis { rt, ra, imm } if ra.0 == 0 => AluOp::Li { rt, val: (imm as i32 as u32) << 16 },
        Addis { rt, ra, imm } => AluOp::AddImm { rt, ra, imm: (imm as i32 as u32) << 16 },
        Add { rt, ra, rb } => AluOp::Add { rt, ra, rb },
        Subf { rt, ra, rb } => AluOp::Subf { rt, ra, rb },
        Neg { rt, ra } => AluOp::Neg { rt, ra },
        Mullw { rt, ra, rb } => AluOp::Mullw { rt, ra, rb },
        Divw { rt, ra, rb } => AluOp::Divw { rt, ra, rb },
        And { ra, rs, rb } => AluOp::And { ra, rs, rb },
        Or { ra, rs, rb } => AluOp::Or { ra, rs, rb },
        Xor { ra, rs, rb } => AluOp::Xor { ra, rs, rb },
        Ori { ra, rs, uimm } => AluOp::Ori { ra, rs, uimm: uimm as u32 },
        AndiDot { ra, rs, uimm } => AluOp::AndiDot { ra, rs, uimm: uimm as u32 },
        Xori { ra, rs, uimm } => AluOp::Xori { ra, rs, uimm: uimm as u32 },
        Slw { ra, rs, rb } => AluOp::Slw { ra, rs, rb },
        Srw { ra, rs, rb } => AluOp::Srw { ra, rs, rb },
        Sraw { ra, rs, rb } => AluOp::Sraw { ra, rs, rb },
        Srawi { ra, rs, sh } => AluOp::Srawi { ra, rs, sh: u32::from(sh) },
        Rlwinm { ra, rs, sh, mb, me } => {
            AluOp::Rlwinm { ra, rs, sh: u32::from(sh), mask: rlwinm_mask(mb, me) }
        }
        Extsb { ra, rs } => AluOp::Extsb { ra, rs },
        Extsh { ra, rs } => AluOp::Extsh { ra, rs },
        Isel { rt, ra, rb, bc } => AluOp::Isel { rt, ra, rb, bc },
        Maxw { rt, ra, rb } => AluOp::Maxw { rt, ra, rb },
        Mflr { rt } => AluOp::Mflr { rt },
        Mtlr { rs } => AluOp::Mtlr { rs },
        Mfctr { rt } => AluOp::Mfctr { rt },
        Mtctr { rs } => AluOp::Mtctr { rs },
        _ => return None,
    })
}

fn as_cmp(insn: &Instruction) -> Option<CmpOp> {
    use Instruction::*;
    Some(match *insn {
        Cmpwi { crf, ra, imm } => CmpOp::SignedImm { crf, ra, imm: i32::from(imm) },
        Cmpw { crf, ra, rb } => CmpOp::Signed { crf, ra, rb },
        Cmplwi { crf, ra, uimm } => CmpOp::UnsignedImm { crf, ra, uimm: u32::from(uimm) },
        Cmplw { crf, ra, rb } => CmpOp::Unsigned { crf, ra, rb },
        _ => return None,
    })
}

fn as_load(insn: &Instruction) -> Option<LoadOp> {
    use Instruction::*;
    Some(match *insn {
        Lwz { rt, ra, disp } => LoadOp::Lwz { rt, ra, disp: disp as i32 as u32 },
        Lwzx { rt, ra, rb } => LoadOp::Lwzx { rt, ra, rb },
        Lbz { rt, ra, disp } => LoadOp::Lbz { rt, ra, disp: disp as i32 as u32 },
        Lbzx { rt, ra, rb } => LoadOp::Lbzx { rt, ra, rb },
        Lhz { rt, ra, disp } => LoadOp::Lhz { rt, ra, disp: disp as i32 as u32 },
        Lha { rt, ra, disp } => LoadOp::Lha { rt, ra, disp: disp as i32 as u32 },
        _ => return None,
    })
}

fn as_store(insn: &Instruction) -> Option<StoreOp> {
    use Instruction::*;
    Some(match *insn {
        Stw { rs, ra, disp } => StoreOp::Stw { rs, ra, disp: disp as i32 as u32 },
        Stwx { rs, ra, rb } => StoreOp::Stwx { rs, ra, rb },
        Stb { rs, ra, disp } => StoreOp::Stb { rs, ra, disp: disp as i32 as u32 },
        Sth { rs, ra, disp } => StoreOp::Sth { rs, ra, disp: disp as i32 as u32 },
        _ => return None,
    })
}

/// Compile the basic block starting at `slot` (which must have a
/// non-zero run length) into direct-threaded form: one left-to-right
/// greedy peephole pass pairing adjacent idioms, then lowering every
/// remaining instruction to its specialized single-op handler.
///
/// `sabotage` is the fusion-bug injection hook (`Machine::
/// inject_fusion_bug`): when it names the PC of a pair's *second*
/// constituent, the pair is compiled deliberately wrong — a `cmp`+`bc`
/// with inverted branch sense, a `cmp`+`isel` with swapped select arms
/// — so divergence triage can prove the oracle catches a broken fusion
/// rule.
pub(crate) fn compile_block(
    decoded: &[Instruction],
    run_len: &[u32],
    code_base: u32,
    slot: usize,
    allow_hammock: bool,
    sabotage: Option<u32>,
) -> FusedBlock {
    let run = run_len[slot] as usize;
    let mut ops = Vec::with_capacity(run);
    let mut idioms = IdiomCounts::default();
    let mut max_retire = run as u32;
    let mut i = 0usize;
    while i < run {
        let pc = code_base.wrapping_add(4 * (slot + i) as u32);
        let insn = decoded[slot + i];
        let next = if i + 1 < run { Some(&decoded[slot + i + 1]) } else { None };
        if let Some(cmp) = as_cmp(&insn) {
            if let Some(&Instruction::Bc { cond, offset, link }) = next {
                let bc_pc = pc.wrapping_add(4);
                let mut target = bc_pc.wrapping_add(offset as i32 as u32);
                let mut fall = bc_pc.wrapping_add(4);
                // DP hammock: the branch skips exactly one register-only
                // instruction and both paths rejoin right after it.
                let mid_slot = slot + i + 2;
                let mid = if allow_hammock
                    && !link
                    && matches!(cond, BranchCond::IfTrue(_) | BranchCond::IfFalse(_))
                    && target == fall.wrapping_add(4)
                    && run_len.get(mid_slot).is_some_and(|&r| r > 0)
                    && Some(bc_pc) != sabotage
                {
                    decoded.get(mid_slot).and_then(as_alu)
                } else {
                    None
                };
                if let Some(mid) = mid {
                    ops.push(OpEntry { op: FusedOp::Hammock { cmp, cond, mid, join: target }, pc });
                    idioms.hammock += 1;
                    max_retire = i as u32 + 3;
                    break;
                }
                if Some(bc_pc) == sabotage {
                    std::mem::swap(&mut target, &mut fall);
                }
                ops.push(OpEntry { op: FusedOp::CmpBc { cmp, cond, target, fall, link }, pc });
                idioms.cmp_branch += 1;
                i += 2;
                continue;
            }
            if let Some(&Instruction::Isel { rt, ra, rb, bc }) = next {
                let (ra, rb) =
                    if Some(pc.wrapping_add(4)) == sabotage { (rb, ra) } else { (ra, rb) };
                ops.push(OpEntry { op: FusedOp::CmpSelect { cmp, rt, ra, rb, bc }, pc });
                idioms.cmp_select += 1;
                i += 2;
                continue;
            }
            ops.push(OpEntry { op: FusedOp::Cmp(cmp), pc });
            i += 1;
            continue;
        }
        if let Some(load) = as_load(&insn) {
            if let Some(alu) = next.and_then(as_alu) {
                ops.push(OpEntry { op: FusedOp::LoadAlu { load, alu }, pc });
                idioms.load_alu += 1;
                i += 2;
                continue;
            }
            ops.push(OpEntry { op: FusedOp::Load(load), pc });
            i += 1;
            continue;
        }
        if let Some(alu) = as_alu(&insn) {
            if let Some(store) = next.and_then(as_store) {
                ops.push(OpEntry { op: FusedOp::AluStore { alu, store }, pc });
                idioms.alu_store += 1;
                i += 2;
                continue;
            }
            ops.push(OpEntry { op: FusedOp::Alu(alu), pc });
            i += 1;
            continue;
        }
        if let Some(store) = as_store(&insn) {
            ops.push(OpEntry { op: FusedOp::Store(store), pc });
            i += 1;
            continue;
        }
        let op = match insn {
            Instruction::B { offset, link } => {
                FusedOp::B { target: pc.wrapping_add(offset as u32), link, ret: pc.wrapping_add(4) }
            }
            Instruction::Bc { cond, offset, link } => FusedOp::Bc {
                cond,
                target: pc.wrapping_add(offset as i32 as u32),
                fall: pc.wrapping_add(4),
                link,
            },
            Instruction::Bclr { cond } => FusedOp::Bclr { cond, fall: pc.wrapping_add(4) },
            Instruction::Bcctr { cond } => FusedOp::Bcctr { cond, fall: pc.wrapping_add(4) },
            Instruction::Trap => FusedOp::Halt,
            other => FusedOp::Other(other),
        };
        ops.push(OpEntry { op, pc });
        i += 1;
    }
    let end_pc = code_base.wrapping_add(4 * (slot + run) as u32);
    FusedBlock { max_retire, end_pc, execs: 0, ops, idioms }
}

/// Why a fused block execution stopped.
pub(crate) enum Cut {
    /// Ran to the block exit (terminator fired or fell off the image).
    Done,
    /// A `trap` retired; the machine halts.
    Halt,
    /// A retired store touched the code region: the caller must run
    /// the decode-table repair and re-dispatch at the (already
    /// advanced) PC — the scalar fallback for the rest of the block.
    StoredCode { addr: u32, width: u32 },
    /// A memory fault; the PC is parked at the faulting instruction
    /// and `retired` counts only the instructions before it.
    Fault(MemFault),
}

/// Result of one fused block execution.
pub(crate) struct BlockRun {
    pub retired: u64,
    pub cut: Cut,
}

#[inline(always)]
pub(crate) fn touches_code(addr: u32, width: u32, code_lo: u32, code_hi: u32) -> bool {
    let lo = u64::from(addr);
    let hi = lo + u64::from(width);
    hi > u64::from(code_lo) && lo < u64::from(code_hi)
}

/// Execute one compiled block direct-threaded: no per-instruction
/// fetch, match, PC write, or event construction. The caller has
/// already checked that the full [`FusedBlock::max_retire`] fits the
/// remaining budget and watchdog allowance. On return `cpu.pc` is the
/// architecturally-correct next PC for every cut kind.
pub(crate) fn run_block(
    block: &FusedBlock,
    cpu: &mut CpuState,
    mem: &mut Memory,
    code_lo: u32,
    code_hi: u32,
) -> BlockRun {
    let mut retired: u64 = 0;
    for entry in &block.ops {
        match entry.op {
            FusedOp::Alu(op) => {
                op.exec(cpu);
                retired += 1;
            }
            FusedOp::Cmp(cmp) => {
                cmp.exec(cpu);
                retired += 1;
            }
            FusedOp::Load(load) => match load.exec(cpu, mem) {
                Ok(()) => retired += 1,
                Err(f) => {
                    cpu.pc = entry.pc;
                    return BlockRun { retired, cut: Cut::Fault(f) };
                }
            },
            FusedOp::Store(store) => match store.exec(cpu, mem) {
                Ok((addr, width)) => {
                    retired += 1;
                    if touches_code(addr, width, code_lo, code_hi) {
                        cpu.pc = entry.pc.wrapping_add(4);
                        return BlockRun { retired, cut: Cut::StoredCode { addr, width } };
                    }
                }
                Err(f) => {
                    cpu.pc = entry.pc;
                    return BlockRun { retired, cut: Cut::Fault(f) };
                }
            },
            FusedOp::LoadAlu { load, alu } => match load.exec(cpu, mem) {
                Ok(()) => {
                    alu.exec(cpu);
                    retired += 2;
                }
                Err(f) => {
                    cpu.pc = entry.pc;
                    return BlockRun { retired, cut: Cut::Fault(f) };
                }
            },
            FusedOp::AluStore { alu, store } => {
                alu.exec(cpu);
                retired += 1;
                match store.exec(cpu, mem) {
                    Ok((addr, width)) => {
                        retired += 1;
                        if touches_code(addr, width, code_lo, code_hi) {
                            cpu.pc = entry.pc.wrapping_add(8);
                            return BlockRun { retired, cut: Cut::StoredCode { addr, width } };
                        }
                    }
                    Err(f) => {
                        // The ALU half committed, exactly like the scalar
                        // path; the fault surfaces at the store.
                        cpu.pc = entry.pc.wrapping_add(4);
                        return BlockRun { retired, cut: Cut::Fault(f) };
                    }
                }
            }
            FusedOp::CmpSelect { cmp, rt, ra, rb, bc } => {
                cmp.exec(cpu);
                let v = if cpu.cr.bit(bc) { cpu.reg_or_zero(ra) } else { cpu.reg(rb) };
                cpu.set_reg(rt, v);
                retired += 2;
            }
            FusedOp::CmpBc { cmp, cond, target, fall, link } => {
                cmp.exec(cpu);
                if link {
                    cpu.lr = fall;
                }
                cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                retired += 2;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::Hammock { cmp, cond, mid, join } => {
                cmp.exec(cpu);
                if eval_cond(cpu, cond) {
                    retired += 2;
                } else {
                    mid.exec(cpu);
                    retired += 3;
                }
                cpu.pc = join;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::B { target, link, ret } => {
                if link {
                    cpu.lr = ret;
                }
                cpu.pc = target;
                retired += 1;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::Bc { cond, target, fall, link } => {
                if link {
                    cpu.lr = fall;
                }
                cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                retired += 1;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::Bclr { cond, fall } => {
                let target = cpu.lr & !3;
                cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                retired += 1;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::Bcctr { cond, fall } => {
                let target = cpu.ctr & !3;
                cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                retired += 1;
                return BlockRun { retired, cut: Cut::Done };
            }
            FusedOp::Halt => {
                cpu.pc = entry.pc;
                retired += 1;
                return BlockRun { retired, cut: Cut::Halt };
            }
            FusedOp::Other(insn) => {
                cpu.pc = entry.pc;
                match step(cpu, mem, &insn) {
                    Ok(ev) => {
                        retired += 1;
                        if ev.halted {
                            return BlockRun { retired, cut: Cut::Halt };
                        }
                        if let Some((addr, width, true)) = ev.mem {
                            if touches_code(addr, width, code_lo, code_hi) {
                                return BlockRun { retired, cut: Cut::StoredCode { addr, width } };
                            }
                        }
                    }
                    Err(f) => return BlockRun { retired, cut: Cut::Fault(f) },
                }
            }
        }
    }
    cpu.pc = block.end_pc;
    BlockRun { retired, cut: Cut::Done }
}

/// Result of executing one fused op on the checked (lockstep) path.
pub(crate) struct OpRun {
    /// Constituent instructions retired (contiguous PCs from the op's
    /// first constituent).
    pub retired: u32,
    /// A `trap` retired.
    pub halted: bool,
}

/// Execute one store-free fused op for the lockstep-checked loop,
/// leaving `cpu.pc` architecturally correct after the op (the checked
/// loop may stop between ops, unlike [`run_block`]).
///
/// # Errors
///
/// Propagates a load fault with `cpu.pc` parked at the faulting
/// instruction, exactly like the scalar path.
pub(crate) fn run_op(
    entry: &OpEntry,
    cpu: &mut CpuState,
    mem: &mut Memory,
) -> Result<OpRun, MemFault> {
    let done = |retired| Ok(OpRun { retired, halted: false });
    match entry.op {
        FusedOp::Alu(op) => {
            op.exec(cpu);
            cpu.pc = entry.pc.wrapping_add(4);
            done(1)
        }
        FusedOp::Cmp(cmp) => {
            cmp.exec(cpu);
            cpu.pc = entry.pc.wrapping_add(4);
            done(1)
        }
        FusedOp::Load(load) => {
            load.exec(cpu, mem)?;
            cpu.pc = entry.pc.wrapping_add(4);
            done(1)
        }
        FusedOp::LoadAlu { load, alu } => {
            load.exec(cpu, mem)?;
            alu.exec(cpu);
            cpu.pc = entry.pc.wrapping_add(8);
            done(2)
        }
        FusedOp::CmpSelect { cmp, rt, ra, rb, bc } => {
            cmp.exec(cpu);
            let v = if cpu.cr.bit(bc) { cpu.reg_or_zero(ra) } else { cpu.reg(rb) };
            cpu.set_reg(rt, v);
            cpu.pc = entry.pc.wrapping_add(8);
            done(2)
        }
        FusedOp::CmpBc { cmp, cond, target, fall, link } => {
            cmp.exec(cpu);
            if link {
                cpu.lr = fall;
            }
            cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
            done(2)
        }
        FusedOp::Hammock { cmp, cond, mid, join } => {
            cmp.exec(cpu);
            let retired = if eval_cond(cpu, cond) {
                2
            } else {
                mid.exec(cpu);
                3
            };
            cpu.pc = join;
            done(retired)
        }
        FusedOp::B { target, link, ret } => {
            if link {
                cpu.lr = ret;
            }
            cpu.pc = target;
            done(1)
        }
        FusedOp::Bc { cond, target, fall, link } => {
            if link {
                cpu.lr = fall;
            }
            cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
            done(1)
        }
        FusedOp::Bclr { cond, fall } => {
            let target = cpu.lr & !3;
            cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
            done(1)
        }
        FusedOp::Bcctr { cond, fall } => {
            let target = cpu.ctr & !3;
            cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
            done(1)
        }
        FusedOp::Halt => {
            cpu.pc = entry.pc;
            Ok(OpRun { retired: 1, halted: true })
        }
        // Store-bearing ops (and the generic escape hatch) never reach
        // here: `FusedOp::has_store` routes them to the scalar loop.
        FusedOp::Store(_) | FusedOp::AluStore { .. } | FusedOp::Other(_) => {
            debug_assert!(false, "store-bearing fused op on the checked path");
            cpu.pc = entry.pc;
            done(0)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ppc_isa::insn::Instruction as I;
    use ppc_isa::reg::{CrBit, CrField};

    fn tables(insns: &[I]) -> (Vec<I>, Vec<u32>) {
        let slots: Vec<Option<I>> = insns.iter().cloned().map(Some).collect();
        let mut run_len = vec![0u32; slots.len()];
        for i in (0..slots.len()).rev() {
            run_len[i] = match &slots[i] {
                Some(insn) if insn.is_branch() || *insn == I::Trap => 1,
                Some(_) => 1 + run_len.get(i + 1).copied().unwrap_or(0),
                None => 0,
            };
        }
        (insns.to_vec(), run_len)
    }

    #[test]
    fn cmp_branch_and_cmp_select_pairs_form() {
        let (decoded, run_len) = tables(&[
            I::Cmpwi { crf: CrField(0), ra: Gpr(3), imm: 25 },
            I::Isel { rt: Gpr(4), ra: Gpr(5), rb: Gpr(6), bc: CrBit(1) },
            I::Add { rt: Gpr(3), ra: Gpr(3), rb: Gpr(4) },
            I::Bc { cond: BranchCond::DecrementNotZero, offset: -12, link: false },
        ]);
        let b = compile_block(&decoded, &run_len, 0x1000, 0, true, None);
        assert_eq!(b.ops.len(), 3);
        assert!(matches!(b.ops[0].op, FusedOp::CmpSelect { .. }));
        assert!(matches!(b.ops[1].op, FusedOp::Alu(AluOp::Add { .. })));
        assert!(matches!(b.ops[2].op, FusedOp::Bc { .. }));
        assert_eq!(b.idioms.cmp_select, 1);
        assert_eq!(b.max_retire, 4);
    }

    #[test]
    fn hammock_spans_the_skipped_instruction() {
        // cmp; bc +8 (skip the max-update); add — the branchy DP max.
        let (decoded, run_len) = tables(&[
            I::Cmpw { crf: CrField(0), ra: Gpr(3), rb: Gpr(4) },
            I::Bc { cond: BranchCond::IfFalse(CrBit(0)), offset: 8, link: false },
            I::Add { rt: Gpr(3), ra: Gpr(4), rb: Gpr(0) },
            I::Trap,
        ]);
        let b = compile_block(&decoded, &run_len, 0x1000, 0, true, None);
        assert_eq!(b.ops.len(), 1);
        assert!(matches!(b.ops[0].op, FusedOp::Hammock { join: 0x100c, .. }));
        assert_eq!(b.max_retire, 3);
        // With a profiler attached the hammock must not form.
        let b = compile_block(&decoded, &run_len, 0x1000, 0, false, None);
        assert!(matches!(b.ops[0].op, FusedOp::CmpBc { .. }));
    }

    #[test]
    fn load_alu_and_alu_store_pairs_form() {
        let (decoded, run_len) = tables(&[
            I::Lwz { rt: Gpr(7), ra: Gpr(1), disp: 0 },
            I::Add { rt: Gpr(8), ra: Gpr(7), rb: Gpr(8) },
            I::Addi { rt: Gpr(9), ra: Gpr(8), imm: 1 },
            I::Stw { rs: Gpr(9), ra: Gpr(1), disp: 4 },
            I::Trap,
        ]);
        let b = compile_block(&decoded, &run_len, 0x1000, 0, true, None);
        assert_eq!(b.ops.len(), 3);
        assert!(matches!(b.ops[0].op, FusedOp::LoadAlu { .. }));
        assert!(matches!(b.ops[1].op, FusedOp::AluStore { .. }));
        assert!(matches!(b.ops[2].op, FusedOp::Halt));
        assert_eq!(b.idioms.load_alu, 1);
        assert_eq!(b.idioms.alu_store, 1);
    }

    #[test]
    fn fused_block_matches_scalar_steps() {
        let insns = [
            I::Addi { rt: Gpr(3), ra: Gpr(0), imm: 40 },
            I::Lwz { rt: Gpr(7), ra: Gpr(1), disp: 0 },
            I::Add { rt: Gpr(3), ra: Gpr(3), rb: Gpr(7) },
            I::Cmpwi { crf: CrField(0), ra: Gpr(3), imm: 25 },
            I::Isel { rt: Gpr(4), ra: Gpr(5), rb: Gpr(6), bc: CrBit(1) },
            I::Stw { rs: Gpr(4), ra: Gpr(1), disp: 8 },
            I::Trap,
        ];
        let (decoded, run_len) = tables(&insns);
        let block = compile_block(&decoded, &run_len, 0x1000, 0, true, None);
        let mut fused_cpu = CpuState::new(0x1000);
        fused_cpu.gpr[1] = 0x4000;
        fused_cpu.gpr[5] = 11;
        fused_cpu.gpr[6] = 22;
        let mut scalar_cpu = fused_cpu.clone();
        let mut fused_mem = Memory::new(0x1_0000);
        fused_mem.store_u32(0x4000, 7).unwrap();
        let mut scalar_mem = fused_mem.clone();
        let run = run_block(&block, &mut fused_cpu, &mut fused_mem, 0x1000, 0x1000 + 28);
        assert!(matches!(run.cut, Cut::Halt));
        assert_eq!(run.retired, insns.len() as u64);
        for insn in &insns {
            step(&mut scalar_cpu, &mut scalar_mem, insn).unwrap();
        }
        scalar_cpu.pc = 0x1000 + 4 * (insns.len() as u32 - 1); // trap parks the pc
        assert_eq!(fused_cpu, scalar_cpu);
        assert_eq!(fused_mem, scalar_mem);
    }

    #[test]
    fn sabotage_inverts_the_pair_it_names() {
        let (decoded, run_len) = tables(&[
            I::Cmpwi { crf: CrField(0), ra: Gpr(3), imm: 0 },
            I::Isel { rt: Gpr(4), ra: Gpr(5), rb: Gpr(6), bc: CrBit(1) },
            I::Trap,
        ]);
        let clean = compile_block(&decoded, &run_len, 0x1000, 0, true, None);
        let broken = compile_block(&decoded, &run_len, 0x1000, 0, true, Some(0x1004));
        let (FusedOp::CmpSelect { ra: ca, rb: cb, .. }, FusedOp::CmpSelect { ra: ba, rb: bb, .. }) =
            (clean.ops[0].op, broken.ops[0].op)
        else {
            panic!("expected CmpSelect pairs");
        };
        assert_eq!((ca, cb), (bb, ba), "sabotage swaps the select arms");
    }
}
