//! Lane-parallel batch simulation (DESIGN §18): step N independent
//! functional runs of the *same* code image together, block by block.
//!
//! A [`LaneGang`] holds N lane machines plus ONE shared dense decode
//! table, ONE shared fused-superinstruction cache, and one code-window
//! descriptor, all snapshotted from lane 0 at construction (every lane
//! is verified byte-identical to that image). Each dispatch resolves
//! the gang's common PC once, compiles the fused block once, and then
//! executes the block *op-major*: every superinstruction is matched a
//! single time and applied to all active lanes in an inner loop, so
//! the fetch/decode/dispatch cost — the dominant cost of the scalar
//! interpreter — is amortized N ways.
//!
//! Lanes leave the gang (drop out of the active set) the moment their
//! execution stops matching the gang's shared control flow:
//!
//! * **Divergence** — a branch resolved differently from the gang
//!   leader (lowest-numbered active lane); the lane's PC is already
//!   architecturally correct.
//! * **Halt** — the lane retired a `trap`.
//! * **Fault** — a memory fault; the PC is parked at the faulting
//!   instruction, which has *not* retired.
//! * **Smc** — the lane stored into its own code image; its private
//!   decode tables are repaired on the way out (the gang's shared
//!   snapshot is untouched — other lanes' memories did not change).
//! * **Cut** — the lane's remaining instruction budget or watchdog
//!   allowance no longer fits the next block's retire bound, exactly
//!   where the scalar loop would switch to its partial-block path.
//! * **Refetch** — the gang PC has no decodable straight-line run
//!   (misaligned, out of image, or an undecodable word); the scalar
//!   path turns this into the architecturally-correct trap.
//!
//! The extraction contract: an exited lane's [`Machine`] is bit-exact
//! to a machine that ran the same instruction count scalar. Finishing
//! the lane with [`Machine::run_functional`] for the remaining budget
//! therefore produces counters, checkpoints, and results byte-identical
//! to N independent scalar runs — `tests/lane_identity.rs` enforces
//! this property over random programs, budgets, and watchdogs.
//!
//! [`run_batch_functional`] packages the whole protocol (gang, then
//! per-lane scalar completion) behind one call and falls back to plain
//! scalar runs when the machines cannot gang (different images, or
//! per-instruction harness state like a lockstep oracle attached).
//!
//! For the timed fault-injection campaign, which cannot gang (every
//! fault perturbs one run), [`Trunk`] removes the other big batch
//! redundancy instead: the shared clean prefix is executed once and
//! forked per fault via checkpoint/restore.

use crate::fuse::{touches_code, FusedCache, FusedOp};
use crate::machine::{Checkpoint, Machine, RunResult, Trap};
use ppc_isa::exec::eval_cond;
use ppc_isa::exec::step;
use ppc_isa::insn::Instruction;

/// Why a lane left the gang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneExit {
    /// Branch resolved differently from the gang leader.
    Divergence,
    /// The lane retired a `trap` and halted.
    Halt,
    /// A memory fault; the PC is parked at the faulting instruction.
    Fault,
    /// A store hit the lane's own code image (repaired on exit).
    Smc,
    /// Remaining budget / watchdog allowance no longer fits a block.
    Cut,
    /// The gang PC has no decodable straight-line run.
    Refetch,
}

/// Aggregate gang statistics: dispatch amortization and exit mix.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaneStats {
    /// Number of lanes the gang was built with.
    pub lanes: u64,
    /// Whether the gang path actually ran (false = scalar fallback).
    pub ganged: bool,
    /// Shared block dispatches (PC resolved + block fetched once each).
    pub gang_blocks: u64,
    /// Per-lane block executions (`lanes * gang_blocks` at full
    /// occupancy).
    pub lane_blocks: u64,
    /// Instructions retired inside the gang, summed over lanes.
    pub insns: u64,
    /// Lanes that left on a divergent branch.
    pub exit_divergence: u64,
    /// Lanes that left by halting.
    pub exit_halt: u64,
    /// Lanes that left on a memory fault.
    pub exit_fault: u64,
    /// Lanes that left on a self-modifying store.
    pub exit_smc: u64,
    /// Lanes that left on a budget / watchdog cut.
    pub exit_cut: u64,
    /// Lanes that left because the gang PC was not decodable.
    pub exit_refetch: u64,
}

impl LaneStats {
    /// Mean fraction of lanes still active per shared dispatch: `1.0`
    /// means every block execution was amortized across all lanes.
    pub fn occupancy(&self) -> f64 {
        if self.gang_blocks == 0 || self.lanes == 0 {
            return 0.0;
        }
        self.lane_blocks as f64 / (self.gang_blocks * self.lanes) as f64
    }
}

/// One lane's outcome from [`LaneGang::run`].
#[derive(Debug)]
pub struct LaneRun {
    /// The lane machine, bit-exact to the same-length scalar run.
    pub machine: Machine,
    /// Why the lane left the gang.
    pub exit: LaneExit,
    /// Instructions the lane retired inside the gang.
    pub executed: u64,
}

/// A gang of N lane machines stepping one shared code image together.
///
/// Build with [`LaneGang::new`], run once with [`LaneGang::run`], then
/// finish each extracted lane on the scalar path ([`Machine::run_functional`]
/// with the lane's remaining budget) — or use [`run_batch_functional`],
/// which does all of that.
#[derive(Debug)]
pub struct LaneGang {
    lanes: Vec<Machine>,
    /// The gang's own fused cache — one compile per block serves every
    /// lane. Deliberately separate from each lane's private cache so a
    /// lane's SMC repair cannot invalidate its neighbors' blocks.
    fused: FusedCache,
    decoded: Vec<Instruction>,
    run_len: Vec<u32>,
    code_base: u32,
    stats: LaneStats,
}

/// Record a lane's exit and bump the matching counter.
fn exit_lane(exits: &mut [Option<LaneExit>], stats: &mut LaneStats, i: usize, e: LaneExit) {
    exits[i] = Some(e);
    match e {
        LaneExit::Divergence => stats.exit_divergence += 1,
        LaneExit::Halt => stats.exit_halt += 1,
        LaneExit::Fault => stats.exit_fault += 1,
        LaneExit::Smc => stats.exit_smc += 1,
        LaneExit::Cut => stats.exit_cut += 1,
        LaneExit::Refetch => stats.exit_refetch += 1,
    }
}

impl LaneGang {
    /// Build a gang from machines sharing one code image.
    ///
    /// # Errors
    ///
    /// Returns the machines untouched, with a reason, when they cannot
    /// gang: empty set, per-instruction harness state attached
    /// (lockstep oracle, guest profiler, armed fusion sabotage),
    /// differing decode tables / code base, or non-halted lanes at
    /// different PCs.
    pub fn new(machines: Vec<Machine>) -> Result<LaneGang, (Vec<Machine>, String)> {
        if machines.is_empty() {
            return Err((machines, "empty gang".to_string()));
        }
        for (i, m) in machines.iter().enumerate() {
            if let Some(why) = m.lane_gang_blocker() {
                return Err((machines, format!("lane {i}: {why}")));
            }
        }
        let (decoded, run_len, code_base) = {
            let (d, r, b) = machines[0].lane_tables();
            (d.to_vec(), r.to_vec(), b)
        };
        for (i, m) in machines.iter().enumerate().skip(1) {
            let (d, r, b) = m.lane_tables();
            if b != code_base || d != decoded.as_slice() || r != run_len.as_slice() {
                return Err((machines, format!("lane {i}: code image differs from lane 0")));
            }
        }
        if let Some(pc0) = machines.iter().find(|m| !m.halted()).map(|m| m.cpu().pc) {
            let stray = machines
                .iter()
                .enumerate()
                .find(|(_, m)| !m.halted() && m.cpu().pc != pc0)
                .map(|(i, m)| (i, m.cpu().pc));
            if let Some((i, pc)) = stray {
                return Err((
                    machines,
                    format!("lane {i}: entry pc {pc:#x} differs from {pc0:#x}"),
                ));
            }
        }
        let slots = decoded.len();
        let stats =
            LaneStats { lanes: machines.len() as u64, ganged: true, ..LaneStats::default() };
        Ok(LaneGang {
            lanes: machines,
            fused: FusedCache::new(slots),
            decoded,
            run_len,
            code_base,
            stats,
        })
    }

    /// Number of lanes in the gang.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Run the gang until every lane has exited, each lane bounded by
    /// `max_insns` retired instructions (mirroring the per-call budget
    /// of [`Machine::run_functional`]).
    ///
    /// Consumes the gang: exited lanes are scalar machines again, in
    /// input order, each carrying its exit reason and retire count. The
    /// caller finishes every lane with
    /// `machine.run_functional(max_insns - executed)` — see
    /// [`run_batch_functional`].
    pub fn run(self, max_insns: u64) -> (Vec<LaneRun>, LaneStats) {
        let LaneGang { mut lanes, mut fused, decoded, run_len, code_base, mut stats } = self;
        let n = lanes.len();
        let code_hi = code_base.wrapping_add((run_len.len() as u32) * 4);
        let mut exits: Vec<Option<LaneExit>> = vec![None; n];
        let mut executed: Vec<u64> = vec![0; n];
        let mut retired: Vec<u64> = vec![0; n];
        // Every phase that exits a lane also removes it from `members`,
        // so the list only ever shrinks — Phase A re-checks the
        // survivors instead of rebuilding from scratch each block.
        let mut members: Vec<usize> = (0..n).collect();
        let mut entered: Vec<usize> = Vec::with_capacity(n);
        loop {
            // Phase A — retire lanes the scalar loop header would stop:
            // already halted, budget spent, or watchdog expired. The
            // classification (Budget vs Watchdog vs Halted) is left to
            // the scalar completion run, which re-derives it from the
            // machine state exactly as an uninterrupted run would.
            members.retain(|&i| {
                let m = &lanes[i];
                let wd_left = m
                    .watchdog()
                    .max_instructions
                    .map_or(u64::MAX, |limit| limit.saturating_sub(m.insns_total()));
                if m.halted() {
                    exit_lane(&mut exits, &mut stats, i, LaneExit::Halt);
                    false
                } else if executed[i] >= max_insns || wd_left == 0 {
                    exit_lane(&mut exits, &mut stats, i, LaneExit::Cut);
                    false
                } else {
                    true
                }
            });
            let Some(&leader) = members.first() else { break };

            // Phase B — resolve the gang PC against the shared decode
            // table, once for everyone.
            let pc = lanes[leader].cpu().pc;
            let slot = (pc.wrapping_sub(code_base) >> 2) as usize;
            if !pc.is_multiple_of(4) || run_len.get(slot).is_none_or(|&r| r == 0) {
                for i in members.drain(..) {
                    exit_lane(&mut exits, &mut stats, i, LaneExit::Refetch);
                }
                continue;
            }

            // Phase C — fetch (compile on first use) the shared fused
            // block, then cut lanes whose remaining allowance no longer
            // fits its full retire bound: their scalar completion runs
            // the partial block per-instruction, landing the budget cut
            // exactly where the scalar loop puts it. Hammocks are safe
            // (no profiler can be attached) and sabotage is never armed
            // in a gang.
            let handle = fused.handle_at(slot, &decoded, &run_len, code_base, true, None);
            let max_retire = u64::from(fused.block(handle).max_retire);
            let mut min_allow = u64::MAX;
            members.retain(|&i| {
                let m = &lanes[i];
                let mut allowance = max_insns - executed[i];
                if let Some(limit) = m.watchdog().max_instructions {
                    allowance = allowance.min(limit - m.insns_total());
                }
                if max_retire > allowance {
                    exit_lane(&mut exits, &mut stats, i, LaneExit::Cut);
                    false
                } else {
                    min_allow = min_allow.min(allowance);
                    true
                }
            });
            if members.is_empty() {
                continue;
            }

            // Phase D — execute the block op-major across all lanes,
            // bursting while every lane loops straight back to the
            // block head. Each burst round consumes at most
            // `max_retire` of every lane's allowance, so bounding the
            // round count by `min_allow / max_retire` guarantees each
            // round is one the scalar budget check would also have
            // admitted; anything the burst leaves on the table is
            // re-dispatched through phases A-C as usual. Bursting is
            // what lets a hot gang pay the per-dispatch bookkeeping
            // once per many block executions instead of once per block.
            let rounds_possible = min_allow / max_retire.max(1);
            entered.clear();
            entered.extend_from_slice(&members);
            for &i in &entered {
                retired[i] = 0;
            }
            let mut rounds = 0u64;
            let mut lane_execs = 0u64;
            let block = fused.block(handle);
            loop {
                lane_execs += members.len() as u64;
                gang_block(
                    block,
                    &mut lanes,
                    &mut members,
                    &mut exits,
                    &mut stats,
                    &mut retired,
                    code_base,
                    code_hi,
                );
                rounds += 1;

                // Phase E — partition on the next PC: lanes that
                // completed the block but disagree with the leader drop
                // out with their (architecturally final) PC intact.
                let before = members.len();
                let Some(&lead) = members.first() else { break };
                let lead_pc = lanes[lead].cpu().pc;
                let lanes_ref = &lanes;
                members.retain(|&i| {
                    if lanes_ref[i].cpu().pc == lead_pc {
                        true
                    } else {
                        exit_lane(&mut exits, &mut stats, i, LaneExit::Divergence);
                        false
                    }
                });
                if members.len() != before || lead_pc != pc || rounds >= rounds_possible {
                    break;
                }
            }
            stats.gang_blocks += rounds;
            stats.lane_blocks += lane_execs;
            fused.block_mut(handle).execs += lane_execs;
            for &i in &entered {
                lanes[i].lane_note_retired(retired[i]);
                executed[i] += retired[i];
                stats.insns += retired[i];
            }
        }
        let runs = lanes
            .into_iter()
            .enumerate()
            .map(|(i, machine)| LaneRun {
                machine,
                exit: exits[i].unwrap_or(LaneExit::Cut),
                executed: executed[i],
            })
            .collect();
        (runs, stats)
    }
}

/// Execute one fused block op-major: each superinstruction is matched
/// once and applied to every active lane. Per-op semantics (retire
/// counts, PC parking on fault, SMC repair points, ALU-half commit
/// before a faulting store) are a lane-indexed port of the scalar
/// `run_block` — any behavioral difference is a bug the identity tests
/// catch. Lanes that stop mid-block are removed from `members` with
/// their exit recorded; lanes remaining at return completed the block.
#[allow(clippy::too_many_arguments)]
fn gang_block(
    block: &crate::fuse::FusedBlock,
    lanes: &mut [Machine],
    members: &mut Vec<usize>,
    exits: &mut [Option<LaneExit>],
    stats: &mut LaneStats,
    retired: &mut [u64],
    code_lo: u32,
    code_hi: u32,
) {
    // `base` is the retire count accrued by every lane still active in
    // the block (it is uniform: the only op whose retire count depends
    // on the lane's path is the Hammock, a terminator). It is flushed
    // into `retired[i]` exactly when lane i leaves the block — early on
    // a fault/SMC/halt, or at a terminator / fall-off-the-end. One
    // shared counter instead of a per-op per-lane bump is a large part
    // of the gang's throughput edge over N scalar runs.
    let mut base: u64 = 0;
    for entry in &block.ops {
        if members.is_empty() {
            return;
        }
        match entry.op {
            FusedOp::Alu(op) => {
                for &i in members.iter() {
                    op.exec(lanes[i].lane_state().0);
                }
                base += 1;
            }
            FusedOp::Cmp(cmp) => {
                for &i in members.iter() {
                    cmp.exec(lanes[i].lane_state().0);
                }
                base += 1;
            }
            FusedOp::Load(load) => {
                members.retain(|&i| {
                    let (cpu, mem) = lanes[i].lane_state();
                    match load.exec(cpu, mem) {
                        Ok(()) => true,
                        Err(_) => {
                            cpu.pc = entry.pc;
                            retired[i] += base;
                            exit_lane(exits, stats, i, LaneExit::Fault);
                            false
                        }
                    }
                });
                base += 1;
            }
            FusedOp::Store(store) => {
                members.retain(|&i| {
                    let (cpu, mem) = lanes[i].lane_state();
                    match store.exec(cpu, mem) {
                        Ok((addr, width)) => {
                            if touches_code(addr, width, code_lo, code_hi) {
                                cpu.pc = entry.pc.wrapping_add(4);
                                retired[i] += base + 1;
                                lanes[i].repair_stored_code(addr, width);
                                exit_lane(exits, stats, i, LaneExit::Smc);
                                false
                            } else {
                                true
                            }
                        }
                        Err(_) => {
                            cpu.pc = entry.pc;
                            retired[i] += base;
                            exit_lane(exits, stats, i, LaneExit::Fault);
                            false
                        }
                    }
                });
                base += 1;
            }
            FusedOp::LoadAlu { load, alu } => {
                members.retain(|&i| {
                    let (cpu, mem) = lanes[i].lane_state();
                    match load.exec(cpu, mem) {
                        Ok(()) => {
                            alu.exec(cpu);
                            true
                        }
                        Err(_) => {
                            cpu.pc = entry.pc;
                            retired[i] += base;
                            exit_lane(exits, stats, i, LaneExit::Fault);
                            false
                        }
                    }
                });
                base += 2;
            }
            FusedOp::AluStore { alu, store } => {
                members.retain(|&i| {
                    let (cpu, mem) = lanes[i].lane_state();
                    alu.exec(cpu);
                    match store.exec(cpu, mem) {
                        Ok((addr, width)) => {
                            if touches_code(addr, width, code_lo, code_hi) {
                                cpu.pc = entry.pc.wrapping_add(8);
                                retired[i] += base + 2;
                                lanes[i].repair_stored_code(addr, width);
                                exit_lane(exits, stats, i, LaneExit::Smc);
                                false
                            } else {
                                true
                            }
                        }
                        Err(_) => {
                            // The ALU half committed, like the scalar
                            // path; the fault surfaces at the store.
                            cpu.pc = entry.pc.wrapping_add(4);
                            retired[i] += base + 1;
                            exit_lane(exits, stats, i, LaneExit::Fault);
                            false
                        }
                    }
                });
                base += 2;
            }
            FusedOp::CmpSelect { cmp, rt, ra, rb, bc } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    cmp.exec(cpu);
                    let v = if cpu.cr.bit(bc) { cpu.reg_or_zero(ra) } else { cpu.reg(rb) };
                    cpu.set_reg(rt, v);
                }
                base += 2;
            }
            FusedOp::CmpBc { cmp, cond, target, fall, link } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    cmp.exec(cpu);
                    if link {
                        cpu.lr = fall;
                    }
                    cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                    retired[i] += base + 2;
                }
                return;
            }
            FusedOp::Hammock { cmp, cond, mid, join } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    cmp.exec(cpu);
                    if eval_cond(cpu, cond) {
                        retired[i] += base + 2;
                    } else {
                        mid.exec(cpu);
                        retired[i] += base + 3;
                    }
                    cpu.pc = join;
                }
                return;
            }
            FusedOp::B { target, link, ret } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    if link {
                        cpu.lr = ret;
                    }
                    cpu.pc = target;
                    retired[i] += base + 1;
                }
                return;
            }
            FusedOp::Bc { cond, target, fall, link } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    if link {
                        cpu.lr = fall;
                    }
                    cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                    retired[i] += base + 1;
                }
                return;
            }
            FusedOp::Bclr { cond, fall } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    let target = cpu.lr & !3;
                    cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                    retired[i] += base + 1;
                }
                return;
            }
            FusedOp::Bcctr { cond, fall } => {
                for &i in members.iter() {
                    let (cpu, _) = lanes[i].lane_state();
                    let target = cpu.ctr & !3;
                    cpu.pc = if eval_cond(cpu, cond) { target } else { fall };
                    retired[i] += base + 1;
                }
                return;
            }
            FusedOp::Halt => {
                for i in members.drain(..) {
                    let (cpu, _) = lanes[i].lane_state();
                    cpu.pc = entry.pc;
                    retired[i] += base + 1;
                    lanes[i].lane_set_halted();
                    exit_lane(exits, stats, i, LaneExit::Halt);
                }
                return;
            }
            FusedOp::Other(insn) => {
                members.retain(|&i| {
                    let (cpu, mem) = lanes[i].lane_state();
                    cpu.pc = entry.pc;
                    match step(cpu, mem, &insn) {
                        Ok(ev) => {
                            if ev.halted {
                                retired[i] += base + 1;
                                lanes[i].lane_set_halted();
                                exit_lane(exits, stats, i, LaneExit::Halt);
                                return false;
                            }
                            if let Some((addr, width, true)) = ev.mem {
                                if touches_code(addr, width, code_lo, code_hi) {
                                    retired[i] += base + 1;
                                    lanes[i].repair_stored_code(addr, width);
                                    exit_lane(exits, stats, i, LaneExit::Smc);
                                    return false;
                                }
                            }
                            true
                        }
                        Err(_) => {
                            retired[i] += base;
                            exit_lane(exits, stats, i, LaneExit::Fault);
                            false
                        }
                    }
                });
                base += 1;
            }
        }
    }
    for &i in members.iter() {
        lanes[i].lane_state().0.pc = block.end_pc;
        retired[i] += base;
    }
}

/// Per-lane outcome of [`run_batch_functional`]: the machine plus the
/// same `Result` its scalar [`Machine::run_functional`] call returns.
pub type BatchRun = (Machine, Result<RunResult, Trap>);

/// Run N machines functionally for `max_insns` instructions each,
/// ganged while they agree and scalar after they exit — the drop-in
/// batch equivalent of calling [`Machine::run_functional`] on each.
///
/// Per-lane results (machine state, [`RunResult`] or [`Trap`]) are
/// byte-identical to N independent scalar runs. When the machines
/// cannot gang (see [`LaneGang::new`]) every lane simply runs scalar
/// and the returned stats carry `ganged: false`.
pub fn run_batch_functional(machines: Vec<Machine>, max_insns: u64) -> (Vec<BatchRun>, LaneStats) {
    match LaneGang::new(machines) {
        Ok(gang) => {
            let (runs, stats) = gang.run(max_insns);
            let out = runs
                .into_iter()
                .map(|lane| {
                    let LaneRun { mut machine, executed, .. } = lane;
                    let res = machine.run_functional(max_insns - executed).map(|r| RunResult {
                        executed: executed + r.executed,
                        halted: r.halted,
                        stop: r.stop,
                    });
                    (machine, res)
                })
                .collect();
            (out, stats)
        }
        Err((machines, _why)) => {
            let stats = LaneStats { lanes: machines.len() as u64, ..LaneStats::default() };
            let out = machines
                .into_iter()
                .map(|mut m| {
                    let res = m.run_functional(max_insns);
                    (m, res)
                })
                .collect();
            (out, stats)
        }
    }
}

/// Shared-prefix trunk for timed fault campaigns.
///
/// A fault campaign replays one clean run per fault point: the prefix
/// before the injection is identical across all N points, yet the
/// scalar campaign re-executes it from the pristine image every time.
/// A `Trunk` advances ONE machine monotonically along the clean
/// trajectory (chunked [`Machine::run_timed`] calls are proven
/// bit-exact to a single call) and forks a checkpoint per fault, so
/// the shared prefix is paid once per campaign instead of once per
/// fault.
#[derive(Debug)]
pub struct Trunk<'m> {
    m: &'m mut Machine,
    pos: u64,
}

impl<'m> Trunk<'m> {
    /// Wrap `m`, treating its current state as trunk position 0.
    pub fn new(m: &'m mut Machine) -> Trunk<'m> {
        Trunk { m, pos: 0 }
    }

    /// The trunk's current position: instructions requested so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Advance the clean run to `at` instructions past the trunk
    /// origin (no-op when already there or past).
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Machine::run_timed`] trap.
    pub fn advance_to(&mut self, at: u64) -> Result<RunResult, Trap> {
        let delta = at.saturating_sub(self.pos);
        self.pos = self.pos.max(at);
        self.m.run_timed(delta)
    }

    /// Fork the current trunk state for one fault's private run.
    pub fn fork(&self) -> Checkpoint {
        self.m.checkpoint()
    }

    /// The underlying machine (to apply a fault / run the faulty leg).
    pub fn machine(&mut self) -> &mut Machine {
        self.m
    }

    /// Return to a forked trunk state after a faulty leg.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::restore`]'s validation error.
    pub fn rejoin(&mut self, ck: &Checkpoint) -> Result<(), String> {
        self.m.restore(ck)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::machine::{StopReason, Watchdog};
    use ppc_isa::Gpr;

    fn machine(src: &str) -> Machine {
        let prog = ppc_asm::assemble(src, 0x1000).expect("test program assembles");
        Machine::new(CoreConfig::power5(), &prog.bytes, 0x1000, 0x1000, 1 << 20)
    }

    const COUNT_LOOP: &str = "
entry:
    li r3, 0
    li r4, 1000
    mtctr r4
loop:
    addi r3, r3, 1
    bdnz loop
    trap
";

    /// A loop whose trip count comes from r5, so seeding lanes with
    /// different r5 values makes them diverge at different times.
    const SEEDED_LOOP: &str = "
entry:
    li r3, 0
    mtctr r5
loop:
    addi r3, r3, 1
    bdnz loop
    trap
";

    fn assert_lane_matches_scalar(lane: &Machine, scalar: &Machine) {
        assert_eq!(lane.cpu(), scalar.cpu());
        assert_eq!(lane.insns_total(), scalar.insns_total());
        assert_eq!(lane.halted(), scalar.halted());
        assert_eq!(lane.counters(), scalar.counters());
    }

    #[test]
    fn gang_of_identical_lanes_matches_scalar() {
        let machines: Vec<Machine> = (0..4).map(|_| machine(COUNT_LOOP)).collect();
        let (runs, stats) = run_batch_functional(machines, u64::MAX);
        let mut scalar = machine(COUNT_LOOP);
        let want = scalar.run_functional(u64::MAX).unwrap();
        assert!(stats.ganged);
        assert!(stats.gang_blocks > 0);
        // Identical lanes never diverge: full occupancy until the
        // shared trap.
        assert!((stats.occupancy() - 1.0).abs() < 1e-9, "occupancy {}", stats.occupancy());
        for (m, res) in &runs {
            assert_eq!(*res.as_ref().unwrap(), want);
            assert_lane_matches_scalar(m, &scalar);
            assert_eq!(m.cpu().reg(Gpr(3)), 1000);
        }
    }

    #[test]
    fn diverging_lanes_extract_bit_exact() {
        let trips = [7u32, 1000, 3, 250];
        let mut machines: Vec<Machine> = trips.iter().map(|_| machine(SEEDED_LOOP)).collect();
        for (m, &t) in machines.iter_mut().zip(&trips) {
            m.cpu_mut().gpr[5] = t;
        }
        let (runs, stats) = run_batch_functional(machines, u64::MAX);
        assert!(stats.ganged);
        assert!(stats.exit_divergence > 0, "stats {stats:?}");
        for ((m, res), &t) in runs.iter().zip(&trips) {
            let mut scalar = machine(SEEDED_LOOP);
            scalar.cpu_mut().gpr[5] = t;
            let want = scalar.run_functional(u64::MAX).unwrap();
            assert_eq!(*res.as_ref().unwrap(), want);
            assert_lane_matches_scalar(m, &scalar);
            assert_eq!(m.cpu().reg(Gpr(3)), t);
        }
    }

    #[test]
    fn faulting_lane_leaves_neighbors_running() {
        // Lane 1's load address is out of the 1 MiB memory: it traps
        // mid-gang while lanes 0 and 2 run to completion.
        const LOADY: &str = "
entry:
    li r3, 0
    li r4, 100
    mtctr r4
loop:
    lwz r6, 0(r5)
    addi r3, r3, 1
    bdnz loop
    trap
";
        let addrs = [0x8_0000u32, 0xFFFF_0000, 0x8_0010];
        let mut machines: Vec<Machine> = addrs.iter().map(|_| machine(LOADY)).collect();
        for (m, &a) in machines.iter_mut().zip(&addrs) {
            m.cpu_mut().gpr[5] = a;
        }
        let (runs, stats) = run_batch_functional(machines, u64::MAX);
        assert!(stats.exit_fault >= 1, "stats {stats:?}");
        for ((m, res), &a) in runs.iter().zip(&addrs) {
            let mut scalar = machine(LOADY);
            scalar.cpu_mut().gpr[5] = a;
            match scalar.run_functional(u64::MAX) {
                Ok(want) => assert_eq!(*res.as_ref().unwrap(), want),
                Err(want) => assert_eq!(*res.as_ref().unwrap_err(), want),
            }
            assert_lane_matches_scalar(m, &scalar);
        }
    }

    #[test]
    fn budget_and_watchdog_cuts_match_scalar_mid_block() {
        // Budgets that land mid-block for some lanes and watchdogs
        // that expire at odd points must cut exactly like scalar runs.
        for budget in [1u64, 2, 3, 5, 37, 100, 1001] {
            for wd in [None, Some(4u64), Some(50), Some(999)] {
                let mk = || {
                    let mut m = machine(COUNT_LOOP);
                    m.set_watchdog(Watchdog { max_instructions: wd, ..Watchdog::default() });
                    m
                };
                let machines: Vec<Machine> = (0..3).map(|_| mk()).collect();
                let (runs, _) = run_batch_functional(machines, budget);
                let mut scalar = mk();
                let want = scalar.run_functional(budget).unwrap();
                for (m, res) in &runs {
                    assert_eq!(*res.as_ref().unwrap(), want, "budget {budget} wd {wd:?}");
                    assert_lane_matches_scalar(m, &scalar);
                }
            }
        }
    }

    #[test]
    fn incompatible_machines_fall_back_to_scalar() {
        let mut a = machine(COUNT_LOOP);
        a.set_lockstep(crate::oracle::LockstepMode::Full);
        let b = machine(COUNT_LOOP);
        let (runs, stats) = run_batch_functional(vec![a, b], u64::MAX);
        assert!(!stats.ganged);
        assert_eq!(stats.gang_blocks, 0);
        let mut scalar = machine(COUNT_LOOP);
        let want = scalar.run_functional(u64::MAX).unwrap();
        for (_, res) in &runs {
            assert_eq!(*res.as_ref().unwrap(), want);
        }
    }

    #[test]
    fn gang_rejects_mismatched_images() {
        let a = machine(COUNT_LOOP);
        let b = machine(SEEDED_LOOP);
        let err = LaneGang::new(vec![a, b]).unwrap_err();
        assert!(err.1.contains("code image differs"), "{}", err.1);
        assert_eq!(err.0.len(), 2);
    }

    #[test]
    fn trunk_fork_rejoin_matches_fresh_runs() {
        // Advancing the trunk in steps and forking must equal fresh
        // scalar runs of the same lengths, and rejoin must restore the
        // fork point bit-exactly.
        let mut m = machine(COUNT_LOOP);
        let mut trunk = Trunk::new(&mut m);
        trunk.advance_to(100).unwrap();
        let ck = trunk.fork();
        // Faulty leg: clobber a register, run to completion.
        trunk.machine().cpu_mut().gpr[3] = 0xDEAD;
        trunk.machine().run_timed(u64::MAX).unwrap();
        trunk.rejoin(&ck).unwrap();
        trunk.advance_to(250).unwrap();

        let mut fresh = machine(COUNT_LOOP);
        fresh.run_timed(250).unwrap();
        assert_eq!(trunk.machine().checkpoint(), fresh.checkpoint());
        let done = trunk.machine().run_timed(u64::MAX).unwrap();
        assert_eq!(done.stop, StopReason::Halted);
        assert_eq!(m.cpu().reg(Gpr(3)), 1000);
    }
}
