//! Hardware performance counters and interval time series.
//!
//! POWER5 exposes 140 counter groups; the paper reads out IPC, L1D miss
//! rate, the direction/target split of branch mispredictions, and the
//! completion-stall breakdown (Table I), plus an IPC/misprediction time
//! series (Figure 2). This module is the model's equivalent counter
//! architecture.

use crate::btac::BtacStats;
use crate::cache::CacheStats;

/// The reason a committed instruction's completion was delayed — the public
/// classification behind both the [`StallBreakdown`] CPI stack and the
/// per-event stall stamps in [`crate::trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// No stall: the instruction committed at full group throughput.
    #[default]
    None,
    /// Branch-misprediction redirect.
    Mispredict,
    /// Taken-branch fetch bubble (the POWER5 2-cycle NIA penalty).
    TakenBubble,
    /// Instruction-cache miss.
    ICache,
    /// Reorder window was full at fetch.
    WindowFull,
    /// Data-cache miss on a load (or waiting on an LSU producer).
    LoadMiss,
    /// Waiting on an FXU result or an FXU issue slot.
    FxuChain,
    /// Anything else (dispatch gaps, cold pipeline).
    Other,
}

impl StallClass {
    /// All classes, in CPI-stack display order.
    pub const ALL: [StallClass; 8] = [
        StallClass::None,
        StallClass::FxuChain,
        StallClass::LoadMiss,
        StallClass::Mispredict,
        StallClass::TakenBubble,
        StallClass::ICache,
        StallClass::WindowFull,
        StallClass::Other,
    ];

    /// Stable machine-readable name (used by the JSONL trace schema).
    pub fn name(self) -> &'static str {
        match self {
            StallClass::None => "none",
            StallClass::Mispredict => "branch_mispredict",
            StallClass::TakenBubble => "taken_branch",
            StallClass::ICache => "icache",
            StallClass::WindowFull => "window_full",
            StallClass::LoadMiss => "load",
            StallClass::FxuChain => "fxu",
            StallClass::Other => "other",
        }
    }

    /// Inverse of [`StallClass::name`] (used by the JSONL trace parser).
    pub fn from_name(name: &str) -> Option<StallClass> {
        StallClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for StallClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class retirement counter increments of one or more instructions —
/// the statically-determined slice of [`Counters`] (everything here
/// depends only on the opcode, never on runtime values). The machine's
/// static timing sidecar keeps prefix sums of these over the code image
/// so the batched retire path can fold a whole block's worth with one
/// subtraction instead of per-instruction increments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Instructions executed.
    pub executed: u64,
    /// Fixed-point-unit operations.
    pub fxu: u64,
    /// Load/store-unit operations.
    pub lsu: u64,
    /// Compare instructions.
    pub compares: u64,
    /// Predicated (select-style) operations.
    pub predicated: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
}

impl ClassCounts {
    /// Accumulate another count set (prefix-sum construction).
    pub fn add(&mut self, o: &ClassCounts) {
        self.executed += o.executed;
        self.fxu += o.fxu;
        self.lsu += o.lsu;
        self.compares += o.compares;
        self.predicated += o.predicated;
        self.loads += o.loads;
        self.stores += o.stores;
    }

    /// The difference `self - o` (prefix-sum span read-out; `o` must be a
    /// prefix of `self`).
    pub fn minus(&self, o: &ClassCounts) -> ClassCounts {
        ClassCounts {
            executed: self.executed - o.executed,
            fxu: self.fxu - o.fxu,
            lsu: self.lsu - o.lsu,
            compares: self.compares - o.compares,
            predicated: self.predicated - o.predicated,
            loads: self.loads - o.loads,
            stores: self.stores - o.stores,
        }
    }
}

/// Completion-stall attribution — the CPI stack the paper's Table I
/// "Stalls due FXU instructions" column comes from. Each stalled completion
/// cycle is charged to the reason the oldest in-flight instruction was not
/// ready to complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Oldest instruction waited on an FXU result or an FXU issue slot.
    pub fxu: u64,
    /// Oldest instruction was a load waiting on the data cache.
    pub load: u64,
    /// Cycles lost to branch-misprediction redirects.
    pub branch_mispredict: u64,
    /// Cycles lost to taken-branch fetch bubbles.
    pub taken_branch: u64,
    /// Cycles lost to instruction-cache misses.
    pub icache: u64,
    /// Completion stalled because the reorder window was full at fetch.
    pub window_full: u64,
    /// Anything else (dispatch gaps, cold pipeline).
    pub other: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.fxu
            + self.load
            + self.branch_mispredict
            + self.taken_branch
            + self.icache
            + self.window_full
            + self.other
    }

    /// Charge `cycles` to `class`. [`StallClass::None`] cycles are charged
    /// to `other`, matching the timing core's historical attribution of
    /// unexplained completion gaps.
    pub fn add(&mut self, class: StallClass, cycles: u64) {
        match class {
            StallClass::Mispredict => self.branch_mispredict += cycles,
            StallClass::TakenBubble => self.taken_branch += cycles,
            StallClass::ICache => self.icache += cycles,
            StallClass::WindowFull => self.window_full += cycles,
            StallClass::LoadMiss => self.load += cycles,
            StallClass::FxuChain => self.fxu += cycles,
            StallClass::Other | StallClass::None => self.other += cycles,
        }
    }

    /// Cycles charged to `class` ([`StallClass::None`] reads `other`).
    pub fn get(&self, class: StallClass) -> u64 {
        match class {
            StallClass::Mispredict => self.branch_mispredict,
            StallClass::TakenBubble => self.taken_branch,
            StallClass::ICache => self.icache,
            StallClass::WindowFull => self.window_full,
            StallClass::LoadMiss => self.load,
            StallClass::FxuChain => self.fxu,
            StallClass::Other | StallClass::None => self.other,
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.fxu += other.fxu;
        self.load += other.load;
        self.branch_mispredict += other.branch_mispredict;
        self.taken_branch += other.taken_branch;
        self.icache += other.icache;
        self.window_full += other.window_full;
        self.other += other.other;
    }
}

/// Branch statistics, per Table II's columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounters {
    /// All branches committed.
    pub total: u64,
    /// Conditional branches committed.
    pub conditional: u64,
    /// Branches that were taken.
    pub taken: u64,
    /// Conditional branches whose *direction* was mispredicted.
    pub direction_mispredictions: u64,
    /// Branches whose *target* was mispredicted (return-stack or BTAC
    /// target errors).
    pub target_mispredictions: u64,
}

impl BranchCounters {
    /// Fraction of all mispredictions caused by direction (Table I's
    /// "% Mispredicted Branches Due to Incorrect Direction").
    pub fn direction_fraction(&self) -> f64 {
        let total = self.direction_mispredictions + self.target_mispredictions;
        if total == 0 {
            0.0
        } else {
            self.direction_mispredictions as f64 / total as f64
        }
    }

    /// Conditional-branch misprediction rate (Table II's "Branch
    /// Mispredict Rate").
    pub fn misprediction_rate(&self) -> f64 {
        if self.conditional == 0 {
            0.0
        } else {
            self.direction_mispredictions as f64 / self.conditional as f64
        }
    }

    /// Fraction of branches that are taken (Table II's "Percent Taken
    /// Brs/Branches").
    pub fn taken_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.taken as f64 / self.total as f64
        }
    }
}

/// One point of the Figure 2 time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSample {
    /// Committed instructions at the end of the interval.
    pub instructions: u64,
    /// Cycle count at the end of the interval.
    pub cycles: u64,
    /// IPC over the interval.
    pub ipc: f64,
    /// Conditional-branch misprediction rate over the interval.
    pub mispredict_rate: f64,
}

/// The full counter set of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Instructions executing in the FXUs.
    pub fxu_ops: u64,
    /// Loads and stores.
    pub lsu_ops: u64,
    /// Loads only.
    pub loads: u64,
    /// Stores only.
    pub stores: u64,
    /// `cmp`-family instructions (the paper tracks the cmp growth isel
    /// causes).
    pub compares: u64,
    /// `isel`/`maxw` committed.
    pub predicated_ops: u64,
    /// Branch statistics.
    pub branches: BranchCounters,
    /// Completion-stall breakdown.
    pub stalls: StallBreakdown,
    /// L1I statistics.
    pub l1i: CacheStats,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// BTAC statistics (zeroed when no BTAC is configured).
    pub btac: BtacStats,
    /// Figure 2 time series (filled when interval sampling is enabled).
    pub intervals: Vec<IntervalSample>,
}

impl Counters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that are branches (Table II's
    /// "Percent Branches/Instrs").
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches.total as f64 / self.instructions as f64
        }
    }

    /// Fraction of committed instructions that are `isel`/`maxw` (the
    /// paper reports 9.3 % for Clustalw).
    pub fn predicated_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.predicated_ops as f64 / self.instructions as f64
        }
    }

    /// Fraction of committed instructions that are compares.
    pub fn compare_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.compares as f64 / self.instructions as f64
        }
    }

    /// FXU completion stalls as a fraction of all cycles (Table I's
    /// "Stalls due FXU instructions").
    pub fn fxu_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stalls.fxu as f64 / self.cycles as f64
        }
    }

    /// A rendered CPI stack: how each cycle was spent, as fractions of the
    /// total — base commit throughput plus the stall breakdown. The rows
    /// sum to 1.
    ///
    /// # Example
    ///
    /// ```
    /// use power5_sim::Counters;
    ///
    /// let mut c = Counters { cycles: 100, instructions: 80, ..Counters::default() };
    /// c.stalls.fxu = 30;
    /// let stack = c.cpi_stack();
    /// assert!(stack.contains("fxu"));
    /// assert!(stack.contains("30.0%"));
    /// ```
    pub fn cpi_stack(&self) -> String {
        let total = self.cycles.max(1) as f64;
        let s = &self.stalls;
        let busy = self.cycles.saturating_sub(s.total());
        let rows = [
            ("committing", busy),
            ("fxu-chain stall", s.fxu),
            ("load stall", s.load),
            ("branch mispredict", s.branch_mispredict),
            ("taken-branch bubble", s.taken_branch),
            ("icache", s.icache),
            ("window full", s.window_full),
            ("other", s.other),
        ];
        let mut out = format!("CPI stack over {} cycles (IPC {:.2}):\n", self.cycles, self.ipc());
        for (name, cycles) in rows {
            out.push_str(&format!(
                "  {name:20} {:>10}  {:>5.1}%\n",
                cycles,
                100.0 * cycles as f64 / total
            ));
        }
        out
    }

    /// Merge another run's counters into this one (used by the SMARTS
    /// sampler to accumulate measurement windows).
    pub fn merge(&mut self, other: &Counters) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.fxu_ops += other.fxu_ops;
        self.lsu_ops += other.lsu_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.compares += other.compares;
        self.predicated_ops += other.predicated_ops;
        self.branches.total += other.branches.total;
        self.branches.conditional += other.branches.conditional;
        self.branches.taken += other.branches.taken;
        self.branches.direction_mispredictions += other.branches.direction_mispredictions;
        self.branches.target_mispredictions += other.branches.target_mispredictions;
        self.stalls.fxu += other.stalls.fxu;
        self.stalls.load += other.stalls.load;
        self.stalls.branch_mispredict += other.stalls.branch_mispredict;
        self.stalls.taken_branch += other.stalls.taken_branch;
        self.stalls.icache += other.stalls.icache;
        self.stalls.window_full += other.stalls.window_full;
        self.stalls.other += other.stalls.other;
        self.l1i.accesses += other.l1i.accesses;
        self.l1i.misses += other.l1i.misses;
        self.l1d.accesses += other.l1d.accesses;
        self.l1d.misses += other.l1d.misses;
        self.l2.accesses += other.l2.accesses;
        self.l2.misses += other.l2.misses;
        self.btac.lookups += other.btac.lookups;
        self.btac.predictions += other.btac.predictions;
        self.btac.correct += other.btac.correct;
        self.btac.incorrect += other.btac.incorrect;
        self.intervals.extend(other.intervals.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_fractions() {
        let mut c = Counters { cycles: 1000, instructions: 900, ..Counters::default() };
        c.branches.total = 180;
        c.branches.conditional = 150;
        c.branches.taken = 120;
        c.branches.direction_mispredictions = 30;
        c.branches.target_mispredictions = 1;
        assert!((c.ipc() - 0.9).abs() < 1e-12);
        assert!((c.branch_fraction() - 0.2).abs() < 1e-12);
        assert!((c.branches.misprediction_rate() - 0.2).abs() < 1e-12);
        assert!((c.branches.taken_fraction() - 120.0 / 180.0).abs() < 1e-12);
        assert!((c.branches.direction_fraction() - 30.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let c = Counters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.branch_fraction(), 0.0);
        assert_eq!(c.branches.misprediction_rate(), 0.0);
        assert_eq!(c.branches.direction_fraction(), 0.0);
        assert_eq!(c.fxu_stall_fraction(), 0.0);
    }

    #[test]
    fn stall_total_sums_components() {
        let s = StallBreakdown {
            fxu: 1,
            load: 2,
            branch_mispredict: 3,
            taken_branch: 4,
            icache: 5,
            window_full: 6,
            other: 7,
        };
        assert_eq!(s.total(), 28);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = Counters { cycles: 10, instructions: 8, ..Counters::default() };
        a.branches.total = 2;
        a.stalls.fxu = 1;
        a.l1d.accesses = 4;
        let mut b = Counters { cycles: 30, instructions: 22, ..Counters::default() };
        b.branches.total = 5;
        b.stalls.fxu = 3;
        b.l1d.accesses = 6;
        b.intervals.push(IntervalSample {
            instructions: 22,
            cycles: 30,
            ipc: 0.7,
            mispredict_rate: 0.1,
        });
        a.merge(&b);
        assert_eq!(a.cycles, 40);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.branches.total, 7);
        assert_eq!(a.stalls.fxu, 4);
        assert_eq!(a.l1d.accesses, 10);
        assert_eq!(a.intervals.len(), 1);
    }
}
