//! Branch direction predictors.
//!
//! The paper's central observation is that the DP kernels' conditional
//! branches are *value-dependent* and defeat direction prediction
//! regardless of predictor sophistication ("improving the accuracy of the
//! branch predictor would be difficult"). We provide three predictors so
//! that claim can be tested as an ablation: a classic bimodal table, a
//! gshare, and a POWER5-style tournament of the two with a selector table.

/// Which direction predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Always predict taken (for pathological baselines).
    StaticTaken,
    /// Per-PC 2-bit saturating counters, `2^bits` entries.
    Bimodal {
        /// log2 of the table size.
        bits: u32,
    },
    /// Global-history XOR PC indexed 2-bit counters.
    Gshare {
        /// log2 of the table size.
        bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// POWER5-style combining predictor: bimodal + gshare + selector.
    Tournament {
        /// log2 of the bimodal table size.
        bimodal_bits: u32,
        /// log2 of the gshare table size.
        gshare_bits: u32,
        /// Global history length.
        history_bits: u32,
        /// log2 of the selector table size.
        selector_bits: u32,
    },
}

/// Serializable predictor state: the component counter tables (in a
/// per-kind canonical order) plus the global history register. Obtained
/// from [`DirectionPredictor::snapshot`] and reinstalled with
/// [`DirectionPredictor::restore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictorState {
    /// Counter tables: `[bimodal]`, `[gshare]`, or
    /// `[bimodal, gshare, selector]` depending on the kind. Entries are
    /// 2-bit saturating counters (0..=3).
    pub tables: Vec<Vec<u8>>,
    /// Global branch history (0 for history-free predictors).
    pub history: u32,
}

/// A direction predictor: predict at fetch, update at resolve.
pub trait DirectionPredictor {
    /// Predict whether the conditional branch at `pc` will be taken.
    fn predict(&self, pc: u32) -> bool;
    /// Tell the predictor the actual outcome.
    fn update(&mut self, pc: u32, taken: bool);
    /// Export the internal tables for checkpointing.
    fn snapshot(&self) -> PredictorState {
        PredictorState::default()
    }
    /// Reinstall a state produced by [`DirectionPredictor::snapshot`] on a
    /// predictor of the same kind and geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when the table count, any table length, or any
    /// counter value does not fit this predictor.
    fn restore(&mut self, state: &PredictorState) -> Result<(), String> {
        if state.tables.is_empty() {
            Ok(())
        } else {
            Err("this predictor kind holds no tables".into())
        }
    }
    /// Flip one low-order counter bit, selected by `selector` (fault
    /// injection). Counters stay in 0..=3, so a corrupted predictor can
    /// mispredict but never crash the model. No-op for stateless kinds.
    fn corrupt(&mut self, _selector: u64) {}
}

/// Validate and copy one snapshot table into a live table.
fn restore_table(dst: &mut [u8], src: &[u8], what: &str) -> Result<(), String> {
    if dst.len() != src.len() {
        return Err(format!("{what} table length {} != expected {}", src.len(), dst.len()));
    }
    if let Some(bad) = src.iter().find(|&&c| c > 3) {
        return Err(format!("{what} table holds counter {bad} outside 0..=3"));
    }
    dst.copy_from_slice(src);
    Ok(())
}

/// Flip bit 0 or 1 of one table entry, keeping the counter in 0..=3.
fn corrupt_table(table: &mut [u8], selector: u64) {
    if table.is_empty() {
        return;
    }
    let i = (selector as usize / 2) % table.len();
    table[i] ^= 1 << (selector & 1);
}

#[inline]
fn ctr_predict(c: u8) -> bool {
    c >= 2
}

#[inline]
fn ctr_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// 2-bit-counter bimodal predictor.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
}

impl Bimodal {
    /// A table of `2^bits` counters, initialized weakly taken.
    pub fn new(bits: u32) -> Self {
        let n = 1usize << bits;
        Bimodal { table: vec![2; n], mask: (n - 1) as u32 }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u32) -> bool {
        ctr_predict(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        ctr_update(&mut self.table[i], taken);
    }

    fn snapshot(&self) -> PredictorState {
        PredictorState { tables: vec![self.table.clone()], history: 0 }
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), String> {
        let [t] = state.tables.as_slice() else {
            return Err(format!("bimodal expects 1 table, got {}", state.tables.len()));
        };
        restore_table(&mut self.table, t, "bimodal")
    }

    fn corrupt(&mut self, selector: u64) {
        corrupt_table(&mut self.table, selector);
    }
}

/// Gshare: global history XORed into the PC index.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u32,
    history: u32,
    history_mask: u32,
}

impl Gshare {
    /// A table of `2^bits` counters with `history_bits` of global history.
    pub fn new(bits: u32, history_bits: u32) -> Self {
        let n = 1usize << bits;
        Gshare {
            table: vec![2; n],
            mask: (n - 1) as u32,
            history: 0,
            history_mask: (1u32 << history_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u32) -> bool {
        ctr_predict(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        ctr_update(&mut self.table[i], taken);
        self.history = ((self.history << 1) | taken as u32) & self.history_mask;
    }

    fn snapshot(&self) -> PredictorState {
        PredictorState { tables: vec![self.table.clone()], history: self.history }
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), String> {
        let [t] = state.tables.as_slice() else {
            return Err(format!("gshare expects 1 table, got {}", state.tables.len()));
        };
        restore_table(&mut self.table, t, "gshare")?;
        self.history = state.history & self.history_mask;
        Ok(())
    }

    fn corrupt(&mut self, selector: u64) {
        corrupt_table(&mut self.table, selector);
    }
}

/// Tournament predictor: a selector table of 2-bit counters chooses between
/// the bimodal and gshare components per branch, as in POWER5's combining
/// scheme.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    selector: Vec<u8>, // 0..=3; >=2 means "use gshare"
    selector_mask: u32,
}

impl Tournament {
    /// Construct with the given component sizes.
    pub fn new(bimodal_bits: u32, gshare_bits: u32, history_bits: u32, selector_bits: u32) -> Self {
        let n = 1usize << selector_bits;
        Tournament {
            bimodal: Bimodal::new(bimodal_bits),
            gshare: Gshare::new(gshare_bits, history_bits),
            selector: vec![2; n],
            selector_mask: (n - 1) as u32,
        }
    }

    #[inline]
    fn sel_index(&self, pc: u32) -> usize {
        ((pc >> 2) & self.selector_mask) as usize
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: u32) -> bool {
        if self.selector[self.sel_index(pc)] >= 2 {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        // Train the selector toward the component that was right.
        if b != g {
            let i = self.sel_index(pc);
            ctr_update(&mut self.selector[i], g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn snapshot(&self) -> PredictorState {
        PredictorState {
            tables: vec![
                self.bimodal.table.clone(),
                self.gshare.table.clone(),
                self.selector.clone(),
            ],
            history: self.gshare.history,
        }
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), String> {
        let [b, g, s] = state.tables.as_slice() else {
            return Err(format!("tournament expects 3 tables, got {}", state.tables.len()));
        };
        restore_table(&mut self.bimodal.table, b, "tournament/bimodal")?;
        restore_table(&mut self.gshare.table, g, "tournament/gshare")?;
        restore_table(&mut self.selector, s, "tournament/selector")?;
        self.gshare.history = state.history & self.gshare.history_mask;
        Ok(())
    }

    fn corrupt(&mut self, selector: u64) {
        // Spread corruption across the three tables.
        match selector % 3 {
            0 => corrupt_table(&mut self.bimodal.table, selector / 3),
            1 => corrupt_table(&mut self.gshare.table, selector / 3),
            _ => corrupt_table(&mut self.selector, selector / 3),
        }
    }
}

/// Static taken (no state).
#[derive(Debug, Clone, Default)]
pub struct StaticTaken;

impl DirectionPredictor for StaticTaken {
    fn predict(&self, _pc: u32) -> bool {
        true
    }
    fn update(&mut self, _pc: u32, _taken: bool) {}
}

/// Instantiate the predictor described by `kind`.
pub fn build(kind: PredictorKind) -> Box<dyn DirectionPredictor> {
    match kind {
        PredictorKind::StaticTaken => Box::new(StaticTaken),
        PredictorKind::Bimodal { bits } => Box::new(Bimodal::new(bits)),
        PredictorKind::Gshare { bits, history_bits } => Box::new(Gshare::new(bits, history_bits)),
        PredictorKind::Tournament { bimodal_bits, gshare_bits, history_bits, selector_bits } => {
            Box::new(Tournament::new(bimodal_bits, gshare_bits, history_bits, selector_bits))
        }
    }
}

/// Enum-dispatched predictor: behaviorally identical to the boxed trait
/// objects from [`build`], but statically dispatched so the timing core's
/// branch-resolution path can inline the counter-table operations instead
/// of paying two indirect calls per conditional branch.
#[derive(Debug, Clone)]
pub enum AnyPredictor {
    /// See [`StaticTaken`].
    StaticTaken(StaticTaken),
    /// See [`Bimodal`].
    Bimodal(Bimodal),
    /// See [`Gshare`].
    Gshare(Gshare),
    /// See [`Tournament`].
    Tournament(Tournament),
}

impl AnyPredictor {
    /// Instantiate the predictor described by `kind`.
    pub fn build(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::StaticTaken => AnyPredictor::StaticTaken(StaticTaken),
            PredictorKind::Bimodal { bits } => AnyPredictor::Bimodal(Bimodal::new(bits)),
            PredictorKind::Gshare { bits, history_bits } => {
                AnyPredictor::Gshare(Gshare::new(bits, history_bits))
            }
            PredictorKind::Tournament {
                bimodal_bits,
                gshare_bits,
                history_bits,
                selector_bits,
            } => AnyPredictor::Tournament(Tournament::new(
                bimodal_bits,
                gshare_bits,
                history_bits,
                selector_bits,
            )),
        }
    }
}

impl DirectionPredictor for AnyPredictor {
    #[inline]
    fn predict(&self, pc: u32) -> bool {
        match self {
            AnyPredictor::StaticTaken(p) => p.predict(pc),
            AnyPredictor::Bimodal(p) => p.predict(pc),
            AnyPredictor::Gshare(p) => p.predict(pc),
            AnyPredictor::Tournament(p) => p.predict(pc),
        }
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        match self {
            AnyPredictor::StaticTaken(p) => p.update(pc, taken),
            AnyPredictor::Bimodal(p) => p.update(pc, taken),
            AnyPredictor::Gshare(p) => p.update(pc, taken),
            AnyPredictor::Tournament(p) => p.update(pc, taken),
        }
    }

    fn snapshot(&self) -> PredictorState {
        match self {
            AnyPredictor::StaticTaken(p) => p.snapshot(),
            AnyPredictor::Bimodal(p) => p.snapshot(),
            AnyPredictor::Gshare(p) => p.snapshot(),
            AnyPredictor::Tournament(p) => p.snapshot(),
        }
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), String> {
        match self {
            AnyPredictor::StaticTaken(p) => p.restore(state),
            AnyPredictor::Bimodal(p) => p.restore(state),
            AnyPredictor::Gshare(p) => p.restore(state),
            AnyPredictor::Tournament(p) => p.restore(state),
        }
    }

    fn corrupt(&mut self, selector: u64) {
        match self {
            AnyPredictor::StaticTaken(p) => p.corrupt(selector),
            AnyPredictor::Bimodal(p) => p.corrupt(selector),
            AnyPredictor::Gshare(p) => p.corrupt(selector),
            AnyPredictor::Tournament(p) => p.corrupt(selector),
        }
    }
}

/// A return-address stack predicting `blr` targets (POWER5's link stack).
/// Pushes on `bl`, pops on `blr`; overflows wrap, underflows mispredict.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u32>,
    top: usize,
    depth: usize,
    capacity: usize,
}

impl ReturnStack {
    /// A stack with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReturnStack { stack: vec![0; capacity.max(1)], top: 0, depth: 0, capacity: capacity.max(1) }
    }

    /// Record a call's return address.
    pub fn push(&mut self, return_addr: u32) {
        self.top = (self.top + 1) % self.capacity;
        self.stack[self.top] = return_addr;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Predict a return target (`None` when empty — predict fall-through).
    pub fn pop(&mut self) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(v)
    }

    /// Export the stack for checkpointing.
    pub fn snapshot(&self) -> RasState {
        RasState { stack: self.stack.clone(), top: self.top, depth: self.depth }
    }

    /// Reinstall a snapshot taken from a stack of the same capacity.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's geometry does not fit.
    pub fn restore(&mut self, state: &RasState) -> Result<(), String> {
        if state.stack.len() != self.capacity {
            return Err(format!(
                "link-stack snapshot has {} entries, machine has {}",
                state.stack.len(),
                self.capacity
            ));
        }
        if state.top >= self.capacity || state.depth > self.capacity {
            return Err("link-stack snapshot top/depth out of range".into());
        }
        self.stack.copy_from_slice(&state.stack);
        self.top = state.top;
        self.depth = state.depth;
        Ok(())
    }
}

/// Serializable [`ReturnStack`] state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RasState {
    /// The circular buffer of return addresses.
    pub stack: Vec<u32>,
    /// Index of the most recent push.
    pub top: usize,
    /// Number of live entries.
    pub depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u32, bool)]) -> f64 {
        let mut correct = 0;
        for &(pc, taken) in stream {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        correct as f64 / stream.len() as f64
    }

    fn loop_stream(iters: usize, body: usize) -> Vec<(u32, bool)> {
        // A loop branch at one PC taken (iters-1)/iters of the time.
        let mut v = Vec::new();
        for _ in 0..iters {
            for i in 0..body {
                v.push((0x100 + 4 * i as u32, false));
            }
            v.push((0x200, true));
        }
        if let Some(last) = v.last_mut() {
            last.1 = false; // loop exit
        }
        v
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(10);
        let acc = accuracy(&mut p, &loop_stream(200, 3));
        assert!(acc > 0.95, "bimodal accuracy {acc}");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // taken, not-taken alternation at one PC: bimodal ~50%, gshare ~100%.
        let stream: Vec<(u32, bool)> = (0..2000).map(|i| (0x400, i % 2 == 0)).collect();
        let mut g = Gshare::new(12, 8);
        let mut b = Bimodal::new(12);
        let acc_g = accuracy(&mut g, &stream);
        let acc_b = accuracy(&mut b, &stream);
        assert!(acc_g > 0.95, "gshare accuracy {acc_g}");
        assert!(acc_b < 0.7, "bimodal should struggle, got {acc_b}");
    }

    #[test]
    fn tournament_at_least_matches_best_component_on_mix() {
        let mut stream = loop_stream(100, 2);
        stream.extend((0..2000).map(|i| (0x400u32, i % 2 == 0)));
        let mut t = Tournament::new(12, 12, 8, 12);
        let acc = accuracy(&mut t, &stream);
        assert!(acc > 0.9, "tournament accuracy {acc}");
    }

    #[test]
    fn random_values_defeat_all_predictors() {
        // The paper's point: value-dependent branches (~50/50 with no
        // pattern) cannot be predicted. Use an LCG for determinism.
        let mut x = 12345u64;
        let stream: Vec<(u32, bool)> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (0x500, (x >> 33) & 1 == 1)
            })
            .collect();
        for kind in [
            PredictorKind::Bimodal { bits: 12 },
            PredictorKind::Gshare { bits: 12, history_bits: 10 },
            PredictorKind::Tournament {
                bimodal_bits: 12,
                gshare_bits: 12,
                history_bits: 10,
                selector_bits: 12,
            },
        ] {
            let mut p = build(kind);
            let acc = accuracy(p.as_mut(), &stream);
            assert!((0.40..0.62).contains(&acc), "{kind:?} accuracy {acc} on random stream");
        }
    }

    #[test]
    fn static_taken_is_static() {
        let mut p = StaticTaken;
        assert!(p.predict(0));
        p.update(0, false);
        assert!(p.predict(0));
    }

    #[test]
    fn snapshot_restore_roundtrips_every_kind() {
        let kinds = [
            PredictorKind::StaticTaken,
            PredictorKind::Bimodal { bits: 6 },
            PredictorKind::Gshare { bits: 6, history_bits: 5 },
            PredictorKind::Tournament {
                bimodal_bits: 6,
                gshare_bits: 6,
                history_bits: 5,
                selector_bits: 6,
            },
        ];
        let mut x = 7u64;
        for kind in kinds {
            let mut trained = build(kind);
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pc = 0x100 + 4 * ((x >> 20) as u32 % 32);
                trained.update(pc, (x >> 40) & 1 == 1);
            }
            let mut copy = build(kind);
            copy.restore(&trained.snapshot()).unwrap();
            for pc in (0x100..0x180).step_by(4) {
                assert_eq!(copy.predict(pc), trained.predict(pc), "{kind:?} diverged at {pc:#x}");
            }
        }
    }

    #[test]
    fn restore_rejects_foreign_snapshots() {
        let trained = build(PredictorKind::Tournament {
            bimodal_bits: 6,
            gshare_bits: 6,
            history_bits: 5,
            selector_bits: 6,
        });
        let mut b = build(PredictorKind::Bimodal { bits: 6 });
        assert!(b.restore(&trained.snapshot()).is_err());
        let mut small = build(PredictorKind::Bimodal { bits: 4 });
        assert!(small.restore(&b.snapshot()).is_err());
        let mut bad = b.snapshot();
        bad.tables[0][0] = 9; // counter out of range
        assert!(b.restore(&bad).is_err());
    }

    #[test]
    fn corruption_keeps_counters_architectural() {
        let mut p = build(PredictorKind::Tournament {
            bimodal_bits: 5,
            gshare_bits: 5,
            history_bits: 4,
            selector_bits: 5,
        });
        for sel in 0..1000u64 {
            p.corrupt(sel.wrapping_mul(0x9E3779B97F4A7C15));
        }
        // Still usable, and every counter still saturates correctly.
        for i in 0..200u32 {
            p.update(0x100 + 4 * (i % 16), i % 3 == 0);
        }
        let s = p.snapshot();
        assert!(s.tables.iter().flatten().all(|&c| c <= 3));
    }

    #[test]
    fn return_stack_predicts_nested_calls() {
        let mut rs = ReturnStack::new(8);
        rs.push(0x104);
        rs.push(0x204);
        rs.push(0x304);
        assert_eq!(rs.pop(), Some(0x304));
        assert_eq!(rs.pop(), Some(0x204));
        assert_eq!(rs.pop(), Some(0x104));
        assert_eq!(rs.pop(), None);
    }

    #[test]
    fn return_stack_overflow_wraps() {
        let mut rs = ReturnStack::new(2);
        rs.push(1);
        rs.push(2);
        rs.push(3); // overwrites the oldest
        assert_eq!(rs.pop(), Some(3));
        assert_eq!(rs.pop(), Some(2));
        // Entry "1" was lost to the wrap.
        assert_eq!(rs.pop(), None);
    }
}
