//! Set-associative caches with LRU replacement, and the POWER5 hierarchy.

use crate::config::CacheConfig;

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate (`0.0` when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    // Index arithmetic, precomputed so the per-access path needs no
    // integer division: line size is always a power of two (shift), and
    // the set count usually is too (mask; the POWER5 L2's 1536 sets fall
    // back to modulo, but L2 is only reached on an L1 miss).
    line_shift: u32,
    set_mask: Option<usize>,
    // tags[set * ways + way]; stamp holds last-use time (LRU = min).
    tags: Vec<u64>,
    valid: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from its geometry. Set counts need not be powers of
    /// two (the POWER5 L2 has 1536 sets); indexing is modulo the set
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (line size not a power of
    /// two, or size not divisible into `ways` × sets of `line` bytes).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0 && cfg.ways <= 255, "ways out of range");
        assert_eq!(cfg.size % (cfg.line * cfg.ways), 0, "size not divisible by way size");
        let sets = cfg.size / (cfg.line * cfg.ways);
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            tags: vec![0; sets * cfg.ways],
            valid: vec![false; sets * cfg.ways],
            stamp: vec![0; sets * cfg.ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u64) {
        let line = (addr as u64) >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => line as usize & mask,
            None => (line as usize) % self.sets,
        };
        (set, line)
    }

    /// Access the line containing `addr`; returns `true` on hit. A miss
    /// fills the line (allocate-on-miss for loads and stores alike).
    pub fn access(&mut self, addr: u32) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        if let Some(hit_way) =
            (0..self.cfg.ways).find(|&w| self.valid[base + w] && self.tags[base + w] == tag)
        {
            self.touch(base, hit_way);
            return true;
        }
        self.stats.misses += 1;
        // Victim: invalid way if any, else true LRU (oldest stamp).
        let victim = (0..self.cfg.ways).find(|&w| !self.valid[base + w]).unwrap_or_else(|| {
            (0..self.cfg.ways).min_by_key(|&w| self.stamp[base + w]).expect("ways > 0")
        });
        self.tags[base + victim] = tag;
        self.valid[base + victim] = true;
        self.touch(base, victim);
        false
    }

    /// Probe without updating state or statistics.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).any(|w| self.valid[base + w] && self.tags[base + w] == tag)
    }

    fn touch(&mut self, base: usize, way: usize) {
        self.tick += 1;
        self.stamp[base + way] = self.tick;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (used when a SMARTS measurement window opens, so
    /// warm-up accesses don't pollute the measured miss rates).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Total way slots (`sets × ways`) — the selector domain for
    /// [`Cache::drop_slot`].
    pub fn num_slots(&self) -> usize {
        self.valid.len()
    }

    /// Invalidate one way slot (fault injection: a dropped line). Returns
    /// whether the slot held a valid line. Timing-only state, so the fault
    /// can cost extra misses but never corrupt architectural results.
    pub fn drop_slot(&mut self, slot: usize) -> bool {
        let slot = slot % self.valid.len();
        let was = self.valid[slot];
        self.valid[slot] = false;
        was
    }

    /// Export tags/valid/LRU state for checkpointing.
    pub fn snapshot(&self) -> CacheState {
        CacheState {
            tags: self.tags.clone(),
            valid: self.valid.clone(),
            stamp: self.stamp.clone(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Reinstall a snapshot taken from a cache of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's slot count does not match.
    pub fn restore(&mut self, state: &CacheState) -> Result<(), String> {
        let n = self.tags.len();
        if state.tags.len() != n || state.valid.len() != n || state.stamp.len() != n {
            return Err(format!(
                "cache snapshot has {} slots, cache has {n}",
                state.tags.len().max(state.valid.len()).max(state.stamp.len())
            ));
        }
        self.tags.copy_from_slice(&state.tags);
        self.valid.copy_from_slice(&state.valid);
        self.stamp.copy_from_slice(&state.stamp);
        self.tick = state.tick;
        self.stats = state.stats;
        Ok(())
    }
}

/// Serializable [`Cache`] state (geometry is carried by the config, not
/// the snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheState {
    /// Line tags per way slot.
    pub tags: Vec<u64>,
    /// Valid bits per way slot.
    pub valid: Vec<bool>,
    /// LRU stamps per way slot.
    pub stamp: Vec<u64>,
    /// LRU clock.
    pub tick: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

/// The L1I/L1D/L2 hierarchy; returns access latencies in cycles.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    memory_latency: u64,
}

impl Hierarchy {
    /// Build the hierarchy from per-level geometry.
    pub fn new(l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig, memory_latency: u64) -> Self {
        Hierarchy { l1i: Cache::new(l1i), l1d: Cache::new(l1d), l2: Cache::new(l2), memory_latency }
    }

    /// Instruction fetch of the line containing `addr`: returns the fetch
    /// latency in cycles.
    pub fn fetch(&mut self, addr: u32) -> u64 {
        if self.l1i.access(addr) {
            self.l1i.config().hit_latency
        } else if self.l2.access(addr) {
            self.l1i.config().hit_latency + self.l2.config().hit_latency
        } else {
            self.l1i.config().hit_latency + self.l2.config().hit_latency + self.memory_latency
        }
    }

    /// Data access at `addr`: returns the load-to-use latency in cycles.
    /// Stores take the same path (allocate on miss) but their latency is
    /// absorbed by the store queue in the core model.
    pub fn data(&mut self, addr: u32) -> u64 {
        if self.l1d.access(addr) {
            self.l1d.config().hit_latency
        } else if self.l2.access(addr) {
            self.l1d.config().hit_latency + self.l2.config().hit_latency
        } else {
            self.l1d.config().hit_latency + self.l2.config().hit_latency + self.memory_latency
        }
    }

    /// Reset all statistics.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig { size: 512, ways: 2, line: 64, hit_latency: 2 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13F)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64 = 256).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn associativity_keeps_conflicting_lines() {
        let mut c = small();
        c.access(0x000);
        c.access(0x100);
        // Both stay resident in a 2-way set.
        assert!(c.access(0x000));
        assert!(c.access(0x100));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small();
        // 16 distinct lines in a 8-line cache, round-robin: ~100% misses.
        for round in 0..4 {
            for i in 0..16u32 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(!hit, "line {i} unexpectedly survived");
                }
            }
        }
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().miss_rate(), 0.25);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn snapshot_restore_preserves_contents_and_lru() {
        let mut c = small();
        for a in [0x000u32, 0x100, 0x040, 0x000, 0x200] {
            c.access(a);
        }
        let snap = c.snapshot();
        let mut d = small();
        d.restore(&snap).unwrap();
        for a in [0x000u32, 0x040, 0x100, 0x200, 0x300] {
            assert_eq!(c.probe(a), d.probe(a), "probe {a:#x} diverged");
        }
        assert_eq!(d.stats(), c.stats());
        // Geometry mismatch is rejected.
        let mut big = Cache::new(CacheConfig { size: 1024, ways: 2, line: 64, hit_latency: 2 });
        assert!(big.restore(&snap).is_err());
    }

    #[test]
    fn drop_slot_invalidates_a_line() {
        let mut c = small();
        c.access(0x000);
        let slot = (0..c.num_slots()).find(|&s| c.drop_slot(s)).expect("one valid line");
        assert!(!c.probe(0x000), "line survived drop of slot {slot}");
        // Dropping an empty slot reports false and stays harmless.
        assert!(!c.drop_slot(slot));
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = Hierarchy::new(
            CacheConfig { size: 512, ways: 2, line: 64, hit_latency: 1 },
            CacheConfig { size: 512, ways: 2, line: 64, hit_latency: 2 },
            CacheConfig { size: 4096, ways: 4, line: 64, hit_latency: 10 },
            100,
        );
        // Cold: L1D miss + L2 miss -> 2 + 10 + 100.
        assert_eq!(h.data(0x40), 112);
        // Warm L1D.
        assert_eq!(h.data(0x40), 2);
        // Evict nothing; a different line cold again, but now L2 also cold.
        assert_eq!(h.data(0x2000), 112);
        // Instruction side has its own L1 but shares the (now warm) L2.
        assert_eq!(h.fetch(0x40), 11);
        assert_eq!(h.fetch(0x40), 1);
    }

    #[test]
    fn l2_catches_l1_victims() {
        let mut h = Hierarchy::new(
            CacheConfig { size: 128, ways: 1, line: 64, hit_latency: 1 },
            CacheConfig { size: 128, ways: 1, line: 64, hit_latency: 2 },
            CacheConfig { size: 4096, ways: 4, line: 64, hit_latency: 10 },
            100,
        );
        h.data(0x000);
        h.data(0x080); // evicts 0x000 from the 2-line L1D (same set)
        h.data(0x000); // L1 miss, L2 hit
        assert_eq!(h.l1d.stats().misses, 3);
        assert_eq!(h.l2.stats().misses, 2);
        assert_eq!(h.data(0x000), 2); // now L1-resident again
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig { size: 384, ways: 2, line: 48, hit_latency: 1 });
    }
}
